#!/usr/bin/env python3
"""Quickstart: simulate one workload on one memory network.

Builds the paper's baseline system (2 TB behind 8 ports, 16 GB DRAM
cubes, chain topology), runs the KMEANS proxy workload, and prints the
headline metrics — then does the same on a tree to show the speedup.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, get_workload, simulate


def main() -> None:
    workload = get_workload("KMEANS")
    requests = 2000

    print("Simulating the paper's baseline chain MN ...")
    chain = simulate(SystemConfig(topology="chain"), workload, requests=requests)

    print("Simulating a ternary-tree MN ...")
    tree = simulate(SystemConfig(topology="tree"), workload, requests=requests)

    for result in (chain, tree):
        breakdown = result.collector.all
        print()
        print(f"configuration   : {result.config_label}")
        print(f"runtime         : {result.runtime_ns / 1000:.2f} us "
              f"for {result.transactions} requests")
        print(f"memory latency  : {breakdown.total_ns:.1f} ns mean "
              f"(to={breakdown.to_memory_ns:.1f}, in={breakdown.in_memory_ns:.1f}, "
              f"from={breakdown.from_memory_ns:.1f})")
        print(f"hops (req/resp) : {result.collector.request_hops.mean:.2f} / "
              f"{result.collector.response_hops.mean:.2f}")
        print(f"row-buffer hits : {result.row_hit_rate * 100:.1f}%")
        print(f"dynamic energy  : {result.energy.total_pj / 1e6:.2f} uJ")

    print()
    speedup = chain.runtime_ps / tree.runtime_ps - 1
    print(f"Tree speedup over chain: {speedup * 100:.1f}% "
          "(the paper's Fig 4 effect)")


if __name__ == "__main__":
    main()
