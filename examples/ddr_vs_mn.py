#!/usr/bin/env python3
"""Why memory networks at all? The DDR capacity/bandwidth wall.

Reproduces the Section 2.1 motivation: on a multi-drop DDR bus, adding
DIMMs for capacity lowers the bus speed, while a memory network scales
capacity by adding cubes at full link speed (at the price of hops,
which the rest of this package is about optimizing).

Usage:  python examples/ddr_vs_mn.py
"""

from repro import SystemConfig, get_workload, simulate
from repro.analysis import render_table
from repro.ddr import DDR4, DdrBusModel
from repro.units import TIB_BYTES


def main() -> None:
    print("DDR4, four channels, growing capacity by adding DIMMs:")
    model = DdrBusModel(DDR4, dimm_capacity_gib=32)
    rows = [
        [
            f"{int(p['dimms_per_channel'])} DPC",
            f"{p['capacity_gib']:.0f} GiB",
            f"{p['bandwidth_gbs']:.1f} GB/s",
            f"{p['gbs_per_pin'] * 1000:.1f} MB/s/pin",
        ]
        for p in model.frontier(channels=4)
    ]
    print(render_table(["config", "capacity", "bandwidth", "per-pin"], rows))

    print()
    print("A memory network instead grows capacity at constant link speed;")
    print("the cost is network latency, which topology choices control:")
    workload = get_workload("MATRIXMUL")
    rows = []
    for capacity_tib, topology in ((1, "chain"), (2, "chain"), (2, "tree")):
        config = SystemConfig(
            topology=topology, total_capacity_bytes=capacity_tib * TIB_BYTES
        )
        result = simulate(config, workload, requests=1500)
        rows.append(
            [
                f"{capacity_tib} TiB {result.config_label}",
                f"{config.cubes_per_port * config.host.num_ports} cubes",
                f"{result.mean_latency_ns:.1f} ns",
                f"{result.runtime_ns / 1000:.2f} us",
            ]
        )
    print(render_table(["MN system", "size", "mean latency", "runtime"], rows))


if __name__ == "__main__":
    main()
