#!/usr/bin/env python3
"""Compare all five MN topologies on a workload of your choice.

Usage:  python examples/topology_shootout.py [WORKLOAD] [REQUESTS]
        python examples/topology_shootout.py BACKPROP 3000

Prints runtime, latency breakdown, link-level hop costs, and energy for
chain, ring, tree, skip-list, and MetaCube — the full topology design
space of the paper.
"""

import sys

from repro import SystemConfig, get_workload, simulate
from repro.analysis import render_table

TOPOLOGIES = ["chain", "ring", "tree", "skiplist", "metacube"]


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "BACKPROP"
    requests = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    workload = get_workload(workload_name)

    results = {}
    for topology in TOPOLOGIES:
        config = SystemConfig(topology=topology)
        results[topology] = simulate(config, workload, requests=requests)

    baseline = results["chain"]
    rows = []
    for topology in TOPOLOGIES:
        result = results[topology]
        breakdown = result.collector.all
        rows.append(
            [
                result.config_label,
                f"{result.runtime_ns / 1000:.2f}",
                f"{(baseline.runtime_ps / result.runtime_ps - 1) * 100:+.1f}%",
                f"{breakdown.total_ns:.1f}",
                f"{result.collector.request_hops.mean:.2f}",
                f"{result.energy.total_pj / 1e6:.2f}",
            ]
        )
    print(
        render_table(
            ["config", "runtime (us)", "speedup", "latency (ns)",
             "mean hops", "energy (uJ)"],
            rows,
            title=f"Topology shootout on {workload.name} "
            f"({requests} requests/port): {workload.description}",
        )
    )


if __name__ == "__main__":
    main()
