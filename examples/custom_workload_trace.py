#!/usr/bin/env python3
"""Bring your own workload: custom specs and trace replay.

Shows the two extension points for user workloads:

1. a custom :class:`WorkloadSpec` (a pointer-chasing proxy with low MLP
   and no locality — the opposite of the paper's GPU suite);
2. capturing its request stream into a :class:`Trace`, saving/loading
   it, and replaying the *identical* stream across two MN designs so
   the comparison is noise-free.

Usage:  python examples/custom_workload_trace.py
"""

import tempfile
from pathlib import Path

from repro import (
    SystemConfig,
    SyntheticWorkload,
    Trace,
    TraceWorkload,
    WorkloadSpec,
)
from repro.system import MemoryNetworkSystem

POINTER_CHASE = WorkloadSpec(
    name="PTRCHASE",
    read_fraction=0.95,
    mean_gap_ns=6.0,
    locality_lines=1.0,  # no spatial locality at all
    mlp=4,  # dependent loads: almost no MLP
    burst_size=1.0,
    description="latency-bound pointer chasing (custom)",
)

REQUESTS = 1500


def run_with_trace(config: SystemConfig, trace: Trace):
    system = MemoryNetworkSystem(
        config,
        POINTER_CHASE,
        requests=REQUESTS,
        workload_iter=TraceWorkload(trace),
    )
    return system.run()


def main() -> None:
    # capture a trace sized for the per-port address space
    probe = MemoryNetworkSystem(SystemConfig(), POINTER_CHASE, requests=1)
    generator = SyntheticWorkload(
        POINTER_CHASE, probe.address_map.total_bytes, seed=2026
    )
    trace = Trace.capture(generator, REQUESTS)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ptrchase.trace"
        trace.save(path)
        print(f"captured {len(trace)} requests "
              f"({trace.write_fraction() * 100:.0f}% writes) -> {path.name}")
        replayed = Trace.load(path)

    chain = run_with_trace(SystemConfig(topology="chain"), replayed)
    metacube = run_with_trace(SystemConfig(topology="metacube"), replayed)

    print()
    for result in (chain, metacube):
        print(f"{result.config_label:>8}: runtime {result.runtime_ns/1000:8.2f} us, "
              f"mean latency {result.mean_latency_ns:6.1f} ns, "
              f"mean hops {result.collector.request_hops.mean:.2f}")
    gain = (chain.runtime_ps / metacube.runtime_ps - 1) * 100
    print()
    print(f"MetaCube gains {gain:.1f}% on a latency-bound pointer chase —")
    print("low-MLP workloads feel every hop, which is exactly why the")
    print("paper attacks MN diameter.")


if __name__ == "__main__":
    main()
