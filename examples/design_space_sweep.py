#!/usr/bin/env python3
"""Design-space exploration with the Sweep utility.

Crosses topology x controller scheduling x SerDes latency for one
workload, prints the frontier, and saves raw results as JSON — the
workflow for exploring beyond the paper's configurations.

Usage:  python examples/design_space_sweep.py [WORKLOAD]
"""

import sys
import tempfile
from pathlib import Path

from repro import SystemConfig, get_workload, simulate
from repro.serialization import save_results
from repro.sweep import Sweep
from repro.units import ns


def main() -> None:
    workload = get_workload(sys.argv[1] if len(sys.argv) > 1 else "MATRIXMUL")
    sweep = (
        Sweep(workload, requests=1200)
        .over("topology", ["chain", "tree", "metacube"])
        .over("cube.scheduling", ["fcfs", "frfcfs"])
        .over("link.serdes_latency_ps", [ns(2), ns(10)])
    )
    rows = sweep.run()
    print(sweep.render(rows))

    best = min(rows, key=lambda row: row["runtime_us"])
    print()
    print(f"Best point: {best['label']} scheduling={best['cube.scheduling']} "
          f"serdes={best['link.serdes_latency_ps'] / 1000:.0f}ns "
          f"-> {best['runtime_us']:.2f} us")

    # persist the winning configuration's full result for later diffing
    config = sweep.config_for(
        {name: best[name] for name, _ in sweep.axes}
    )
    result = simulate(config, workload, requests=1200)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "best.json"
        save_results([result], path)
        print(f"saved {path.stat().st_size} bytes of result JSON")


if __name__ == "__main__":
    main()
