#!/usr/bin/env python3
"""Hybrid-memory design study: how much NVM, and where to put it?

For a chosen workload, sweeps the DRAM:NVM capacity ratio and both NVM
placements (near the host vs at the network edge) on the tree topology,
and reports the performance/energy frontier — the Section 3.3 trade-off
between memory-array latency and network size.

Usage:  python examples/nvm_placement_study.py [WORKLOAD]
"""

import sys

from repro import NVM_FIRST, NVM_LAST, SystemConfig, get_workload, simulate
from repro.analysis import render_table
from repro.errors import ConfigError

FRACTIONS = (1.0, 0.75, 0.5, 0.25, 0.0)


def main() -> None:
    workload = get_workload(sys.argv[1] if len(sys.argv) > 1 else "KMEANS")
    requests = 2000
    baseline = simulate(
        SystemConfig(topology="chain"), workload, requests=requests
    )

    rows = []
    best = None
    for fraction in FRACTIONS:
        placements = (
            [NVM_LAST, NVM_FIRST] if 0 < fraction < 1 else [NVM_LAST]
        )
        for placement in placements:
            config = SystemConfig(
                topology="tree", dram_fraction=fraction, nvm_placement=placement
            )
            try:
                n_dram, n_nvm = config.cube_counts()
            except ConfigError:
                continue  # ratio does not decompose into whole cubes
            result = simulate(config, workload, requests=requests)
            speedup = (baseline.runtime_ps / result.runtime_ps - 1) * 100
            energy_uj = result.energy.total_pj / 1e6
            rows.append(
                [
                    result.config_label,
                    f"{n_dram}+{n_nvm}",
                    f"{speedup:+.1f}%",
                    f"{result.mean_latency_ns:.1f}",
                    f"{result.collector.request_hops.mean:.2f}",
                    f"{energy_uj:.2f}",
                ]
            )
            if best is None or result.runtime_ps < best[1].runtime_ps:
                best = (result.config_label, result)

    print(
        render_table(
            ["config", "cubes (D+N)", "speedup vs 100%-C", "latency (ns)",
             "mean hops", "energy (uJ)"],
            rows,
            title=f"NVM ratio/placement study on {workload.name}",
        )
    )
    print()
    print(f"Best configuration for {workload.name}: {best[0]}")


if __name__ == "__main__":
    main()
