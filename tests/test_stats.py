"""Tests for statistics collectors."""

import math

import pytest

from repro.sim.stats import Histogram, RunningStat, StatsRegistry


class TestRunningStat:
    def test_empty(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.variance == 0.0
        assert stat.min is None and stat.max is None

    def test_single_value(self):
        stat = RunningStat()
        stat.add(5.0)
        assert stat.count == 1
        assert stat.mean == 5.0
        assert stat.variance == 0.0
        assert stat.min == 5.0 and stat.max == 5.0

    def test_mean_and_variance(self):
        stat = RunningStat()
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for value in values:
            stat.add(value)
        assert stat.mean == pytest.approx(5.0)
        expected_var = sum((v - 5.0) ** 2 for v in values) / (len(values) - 1)
        assert stat.variance == pytest.approx(expected_var)
        assert stat.stddev == pytest.approx(math.sqrt(expected_var))

    def test_min_max_total(self):
        stat = RunningStat()
        for value in (3.0, -1.0, 10.0):
            stat.add(value)
        assert stat.min == -1.0
        assert stat.max == 10.0
        assert stat.total == 12.0

    def test_merge_matches_sequential(self):
        a, b, c = RunningStat(), RunningStat(), RunningStat()
        for v in (1.0, 2.0, 3.0):
            a.add(v)
            c.add(v)
        for v in (10.0, 20.0):
            b.add(v)
            c.add(v)
        a.merge(b)
        assert a.count == c.count
        assert a.mean == pytest.approx(c.mean)
        assert a.variance == pytest.approx(c.variance)
        assert a.min == c.min and a.max == c.max

    def test_merge_into_empty(self):
        a, b = RunningStat(), RunningStat()
        b.add(4.0)
        a.merge(b)
        assert a.count == 1 and a.mean == 4.0

    def test_merge_empty_is_noop(self):
        a, b = RunningStat(), RunningStat()
        a.add(4.0)
        a.merge(b)
        assert a.count == 1 and a.mean == 4.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram(bucket_width=10, num_buckets=4)
        for value in (0, 5, 15, 35):
            hist.add(value)
        assert hist.buckets == [2, 1, 0, 1]
        assert hist.overflow == 0

    def test_overflow(self):
        hist = Histogram(bucket_width=1, num_buckets=2)
        hist.add(100)
        assert hist.overflow == 1

    def test_percentile(self):
        hist = Histogram(bucket_width=10, num_buckets=10)
        for value in range(100):
            hist.add(value)
        assert hist.percentile(0.5) == pytest.approx(45.0, abs=10)
        assert hist.percentile(1.0) == pytest.approx(95.0, abs=10)

    def test_percentile_empty(self):
        hist = Histogram(bucket_width=10)
        assert hist.percentile(0.5) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=0)
        with pytest.raises(ValueError):
            Histogram(bucket_width=1, num_buckets=0)
        hist = Histogram(bucket_width=1)
        with pytest.raises(ValueError):
            hist.percentile(0.0)

    def test_negative_values_count_as_underflow(self):
        # int() truncates toward zero, so without the explicit underflow
        # counter every value in (-width, 0) would alias into bucket 0.
        hist = Histogram(bucket_width=10, num_buckets=4)
        hist.add(-0.5)
        hist.add(-25)
        hist.add(3)
        assert hist.underflow == 2
        assert hist.buckets == [1, 0, 0, 0]
        assert hist.count == 3

    def test_percentile_in_underflow_clamps_to_min(self):
        hist = Histogram(bucket_width=10, num_buckets=4)
        hist.add(-7)
        hist.add(-3)
        hist.add(5)
        value, clamped = hist.percentile_detail(0.5)
        assert value == -7.0  # clamped to the observed minimum
        assert clamped is True

    def test_percentile_in_overflow_clamps_to_max(self):
        hist = Histogram(bucket_width=10, num_buckets=2)
        hist.add(5)
        hist.add(500)
        hist.add(900)
        value, clamped = hist.percentile_detail(1.0)
        assert value == 900.0
        assert clamped is True
        # the in-range percentile is untouched by the clamp logic
        value, clamped = hist.percentile_detail(0.3)
        assert value == 5.0
        assert clamped is False

    def test_percentile_detail_in_range_not_clamped(self):
        hist = Histogram(bucket_width=10, num_buckets=10)
        for value in range(100):
            hist.add(value)
        value, clamped = hist.percentile_detail(0.5)
        assert clamped is False
        assert value == pytest.approx(45.0, abs=10)

    def test_merge_matches_sequential(self):
        a = Histogram(bucket_width=10, num_buckets=4)
        b = Histogram(bucket_width=10, num_buckets=4)
        c = Histogram(bucket_width=10, num_buckets=4)
        for value in (-5, 3, 15, 99):
            a.add(value)
            c.add(value)
        for value in (7, 200, -1):
            b.add(value)
            c.add(value)
        a.merge(b)
        assert a.buckets == c.buckets
        assert a.underflow == c.underflow
        assert a.overflow == c.overflow
        assert a.count == c.count
        assert a.stat.mean == pytest.approx(c.stat.mean)
        assert a.stat.min == c.stat.min and a.stat.max == c.stat.max

    def test_merge_shape_mismatch_rejected(self):
        base = Histogram(bucket_width=10, num_buckets=4)
        with pytest.raises(ValueError, match="different shapes"):
            base.merge(Histogram(bucket_width=5, num_buckets=4))
        with pytest.raises(ValueError, match="different shapes"):
            base.merge(Histogram(bucket_width=10, num_buckets=8))


class TestStatsRegistry:
    def test_counters(self):
        reg = StatsRegistry()
        reg.count("hits")
        reg.count("hits", 2)
        assert reg.counter("hits") == 3
        assert reg.counter("absent") == 0

    def test_records(self):
        reg = StatsRegistry()
        reg.record("lat", 10.0)
        reg.record("lat", 20.0)
        assert reg.mean("lat") == pytest.approx(15.0)
        assert reg.mean("absent") == 0.0

    def test_names_and_dict(self):
        reg = StatsRegistry()
        reg.count("a")
        reg.record("b", 1.0)
        assert reg.names() == ["a", "b"]
        flat = reg.as_dict()
        assert flat["a"] == 1
        assert flat["b.mean"] == 1.0
        assert flat["b.count"] == 1

    def test_as_dict_detects_counter_stat_collision(self):
        # A counter literally named "lat.mean" would silently be
        # overwritten by the stat's derived key; as_dict must refuse.
        reg = StatsRegistry()
        reg.count("lat.mean")
        reg.record("lat", 4.0)
        with pytest.raises(ValueError, match="key collision"):
            reg.as_dict()

    def test_as_dict_count_key_collision(self):
        reg = StatsRegistry()
        reg.count("lat.count", 2)
        reg.record("lat", 4.0)
        with pytest.raises(ValueError, match="lat.count"):
            reg.as_dict()
