"""Tests for the arbitration schemes."""

import pytest

from repro.arbitration import (
    AgeArbiter,
    ArbiterContext,
    DistanceArbiter,
    EnhancedDistanceArbiter,
    GlobalWeightedArbiter,
    RoundRobinArbiter,
    make_arbiter_factory,
)
from repro.errors import ConfigError
from repro.net.packet import Packet, PacketKind, Transaction


def response_from(cube, now=0, issue_ps=0):
    txn = Transaction(0, is_write=False, port_id=0, issue_ps=issue_ps)
    packet = Packet(PacketKind.READ_RESP, 0, cube, 0, 128, now, transaction=txn)
    return packet


def request_to(cube, is_write=False):
    kind = PacketKind.WRITE_REQ if is_write else PacketKind.READ_REQ
    return Packet(kind, 0, 0, cube, 128, 0)


def context(distances=None, techs=None, **kwargs):
    return ArbiterContext(
        distance_to_host=distances or {},
        tech_of_node=techs or {},
        **kwargs,
    )


class TestContext:
    def test_origin_node(self):
        ctx = context()
        assert ctx.origin_node(response_from(7)) == 7
        assert ctx.origin_node(request_to(5)) == 5

    def test_origin_distance_and_tech(self):
        ctx = context({3: 4}, {3: "NVM"})
        assert ctx.origin_distance(response_from(3)) == 4
        assert ctx.origin_is_nvm(response_from(3))
        assert not ctx.origin_is_nvm(response_from(1))


class TestRoundRobin:
    def test_rotates_across_inputs(self):
        arbiter = RoundRobinArbiter(context())
        candidates = [(0, response_from(1)), (1, response_from(2)), (2, response_from(3))]
        picks = [candidates[arbiter.pick(0, candidates)][0] for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_missing_inputs(self):
        arbiter = RoundRobinArbiter(context())
        first = arbiter.pick(0, [(0, response_from(1)), (2, response_from(2))])
        assert first == 0
        second = arbiter.pick(0, [(2, response_from(2))])
        assert second == 0  # position in candidate list


class TestDistance:
    def test_far_origin_served_more_often(self):
        ctx = context({1: 1, 9: 9})
        arbiter = DistanceArbiter(ctx)
        candidates = [(0, response_from(1)), (1, response_from(9))]
        wins = {0: 0, 1: 0}
        for _ in range(100):
            winner = candidates[arbiter.pick(0, candidates)][0]
            wins[winner] += 1
        # service should be roughly proportional to weight (2 vs 10)
        assert wins[1] > 3 * wins[0]
        assert wins[0] > 0  # no starvation

    def test_weight_of_uses_distance(self):
        ctx = context({4: 6})
        arbiter = DistanceArbiter(ctx)
        assert arbiter.weight_of(response_from(4)) == 7.0


class TestEnhancedDistance:
    def test_nvm_origin_gets_bonus(self):
        ctx = context({2: 3}, {2: "NVM"}, nvm_bonus_hops=5.0)
        arbiter = EnhancedDistanceArbiter(ctx)
        assert arbiter.weight_of(response_from(2)) == pytest.approx(9.0)

    def test_write_class_deprioritized(self):
        ctx = context({2: 3}, write_weight_factor=0.25)
        arbiter = EnhancedDistanceArbiter(ctx)
        read_weight = arbiter.weight_of(request_to(2))
        write_weight = arbiter.weight_of(request_to(2, is_write=True))
        assert write_weight == pytest.approx(read_weight * 0.25)

    def test_prefers_nvm_response_over_equal_distance_dram(self):
        ctx = context({1: 3, 2: 3}, {1: "DRAM", 2: "NVM"}, nvm_bonus_hops=6.0)
        arbiter = EnhancedDistanceArbiter(ctx)
        candidates = [(0, response_from(1)), (1, response_from(2))]
        wins = {0: 0, 1: 0}
        for _ in range(100):
            wins[candidates[arbiter.pick(0, candidates)][0]] += 1
        assert wins[1] > wins[0]


class TestAge:
    def test_oldest_wins(self):
        arbiter = AgeArbiter(context())
        old = response_from(1, issue_ps=0)
        young = response_from(2, issue_ps=90)
        pick = arbiter.pick(100, [(0, young), (1, old)])
        assert pick == 1

    def test_falls_back_to_create_time(self):
        arbiter = AgeArbiter(context())
        a = Packet(PacketKind.READ_REQ, 0, 0, 1, 8, create_ps=0)
        b = Packet(PacketKind.READ_REQ, 0, 0, 1, 8, create_ps=50)
        assert arbiter.pick(100, [(0, b), (1, a)]) == 1


class TestGlobalWeighted:
    def test_subtree_weight_drives_service(self):
        ctx = context()
        ctx.subtree_weights.update({0: 1, 1: 15})
        arbiter = GlobalWeightedArbiter(ctx)
        candidates = [(0, response_from(1)), (1, response_from(2))]
        wins = {0: 0, 1: 0}
        for _ in range(160):
            wins[candidates[arbiter.pick(0, candidates)][0]] += 1
        assert wins[1] > 8 * wins[0]
        assert wins[0] > 0


class TestFactory:
    def test_creates_fresh_instances(self):
        factory = make_arbiter_factory("round_robin", context())
        assert factory() is not factory()

    def test_all_schemes_constructible(self):
        for scheme in (
            "round_robin",
            "distance",
            "distance_enhanced",
            "age",
            "global_weighted",
        ):
            arbiter = make_arbiter_factory(scheme, context())()
            assert arbiter.pick(0, [(0, response_from(1))]) == 0

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            make_arbiter_factory("coin_flip", context())
