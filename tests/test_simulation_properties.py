"""End-to-end property tests: the simulator's invariants must hold for
arbitrary (small) configurations and workload parameters."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.system import MemoryNetworkSystem
from repro.units import GIB_BYTES
from repro.workloads import WorkloadSpec


@st.composite
def system_configs(draw):
    topology = draw(
        st.sampled_from(["chain", "ring", "tree", "skiplist", "metacube"])
    )
    fraction = draw(st.sampled_from([1.0, 0.5, 0.0]))
    placement = draw(st.sampled_from(["last", "first"]))
    arbiter = draw(
        st.sampled_from(["round_robin", "distance", "distance_enhanced"])
    )
    return SystemConfig(
        topology=topology,
        total_capacity_bytes=1024 * GIB_BYTES,
        dram_fraction=fraction,
        nvm_placement=placement,
        arbiter=arbiter,
    )


@st.composite
def workload_specs(draw):
    return WorkloadSpec(
        name="PROP",
        read_fraction=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
        mean_gap_ns=draw(st.floats(min_value=0.5, max_value=20.0)),
        locality_lines=draw(st.floats(min_value=1.0, max_value=32.0)),
        rmw_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        mlp=draw(st.integers(min_value=1, max_value=48)),
        burst_size=draw(st.floats(min_value=1.0, max_value=32.0)),
    )


@given(system_configs(), workload_specs(), st.integers(min_value=1, max_value=60))
@settings(max_examples=25, deadline=None)
def test_simulation_invariants(config, spec, requests):
    """For any config x workload: conservation + monotone timestamps."""
    system = MemoryNetworkSystem(config, spec, requests=requests)
    captured = []
    original = system._transaction_done

    def capture(engine, txn):
        captured.append(txn)
        original(engine, txn)

    system.port.on_transaction_done = capture
    result = system.run()

    # conservation: every request completed exactly once
    assert result.transactions == requests
    assert len(captured) == requests
    assert system.port.outstanding == 0

    for txn in captured:
        # timestamp monotonicity along the transaction's life
        assert txn.issue_ps <= txn.start_ps
        assert txn.start_ps < txn.inject_ps <= txn.mem_arrive_ps
        assert txn.mem_arrive_ps <= txn.mem_depart_ps
        assert txn.mem_depart_ps < txn.complete_ps
        # every component of the breakdown is non-negative
        assert txn.to_memory_ps >= 0
        assert txn.in_memory_ps >= 0
        assert txn.from_memory_ps >= 0
        # hops: at least one each way, bounded by the network size
        assert 1 <= txn.request_hops <= len(system.cubes) + len(
            system.topology.switch_ids()
        ) + 1
        assert txn.response_hops >= 1

    # memory accesses match transactions
    accesses = sum(
        cube.total_reads() + cube.total_writes() for cube in system.cubes.values()
    )
    assert accesses == requests

    # energy is positive and composed of its parts
    assert result.energy.total_pj > 0
