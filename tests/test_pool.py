"""Unit tests for the recycling packet pool (``repro.net.pool``)."""

from __future__ import annotations

import pytest

from repro.config import PacketConfig
from repro.errors import SimulationError
from repro.net.packet import (
    Packet,
    PacketKind,
    Transaction,
    request_packet,
    response_packet,
)
from repro.net.pool import PacketPool


def make_txn(is_write=False, address=0x400):
    txn = Transaction(address, is_write, port_id=0, issue_ps=0)
    txn.dest_cube = 3
    return txn


def test_acquire_without_freelist_constructs():
    pool = PacketPool()
    packet = pool.request_packet(PacketConfig(), make_txn(), 10)
    assert packet.kind == PacketKind.READ_REQ
    assert not packet.freed
    assert pool.acquired == 1
    assert pool.recycled == 0
    assert pool.live == 1


def test_release_and_recycle_reuses_object():
    pool = PacketPool()
    first = pool.request_packet(PacketConfig(), make_txn(), 0)
    first_pid = first.pid
    pool.release(first)
    assert first.freed
    assert pool.freelist_size == 1
    second = pool.request_packet(PacketConfig(), make_txn(is_write=True), 5)
    assert second is first  # the carcass was recycled in place...
    assert not second.freed
    assert second.pid > first_pid  # ...with a fresh identity
    assert second.kind == PacketKind.WRITE_REQ
    assert pool.recycled == 1
    assert pool.freelist_size == 0


def test_pid_stream_interleaves_with_direct_construction():
    """Recycling must draw pids from the same global counter as plain
    construction — that is what keeps pooling digest-invisible."""
    pool = PacketPool()
    config = PacketConfig()
    pooled = pool.request_packet(config, make_txn(), 0)
    first_pid = pooled.pid  # recycling overwrites it in place below
    direct = Packet(PacketKind.READ_REQ, 0, 0, 1, 128, 0)
    pool.release(pooled)
    recycled = pool.request_packet(config, make_txn(), 0)
    assert first_pid < direct.pid < recycled.pid


def test_double_release_raises():
    pool = PacketPool()
    packet = pool.request_packet(PacketConfig(), make_txn(), 0)
    pool.release(packet)
    with pytest.raises(SimulationError, match="double release"):
        pool.release(packet)


def test_request_matches_module_constructor():
    config = PacketConfig()
    txn = make_txn(is_write=True)
    reference = request_packet(config, txn, 42)
    pooled = PacketPool().request_packet(config, txn, 42)
    for field in ("kind", "address", "src", "dest", "size_bits",
                  "create_ps", "transaction"):
        assert getattr(pooled, field) == getattr(reference, field)


def test_response_matches_module_constructor():
    config = PacketConfig()
    request = request_packet(config, make_txn(), 0)
    reference = response_packet(config, request, 99)
    pooled = PacketPool().response_packet(config, request, 99)
    for field in ("kind", "address", "src", "dest", "size_bits",
                  "create_ps", "transaction"):
        assert getattr(pooled, field) == getattr(reference, field)
    assert pooled.kind == PacketKind.READ_RESP


def test_stats_decode_kind_taxonomy():
    pool = PacketPool()
    config = PacketConfig()
    read = pool.request_packet(config, make_txn(), 0)
    pool.release(read)
    pool.request_packet(config, make_txn(is_write=True), 1)
    stats = pool.stats()
    assert stats["acquired"] == 2
    assert stats["recycled"] == 1
    assert stats["released"] == 1
    assert stats["live"] == 1
    assert stats["by_kind"]["READ_REQ"] == {"acquired": 1, "released": 1}
    assert stats["by_kind"]["WRITE_REQ"] == {"acquired": 1, "released": 0}
