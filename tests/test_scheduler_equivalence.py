"""Scheduler equivalence: the timing wheel must be invisible.

The two-tier timing wheel (``Engine("wheel")``) exists purely for
throughput; the plain binary heap (``Engine("heap")``) is the reference.
Both share the ``(time, seq)`` ordering contract, so every simulation
must produce bit-identical results — same digest, same event count —
regardless of which scheduler dispatched it, across every topology and
with the observability and RAS layers on or off.  The property tests at
the bottom drive the same contract with adversarial schedules: random
delays biased onto the wheel-bucket boundaries, plus re-entrant
scheduling from inside callbacks.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import WHEEL_SHIFT, Engine
from repro.system import MemoryNetworkSystem

from conftest import fast_workload, sim_digest, small_config

TOPOLOGIES = ("chain", "ring", "skiplist", "metacube")


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("obs", [False, True], ids=["obs-off", "obs-on"])
@pytest.mark.parametrize("ras", [False, True], ids=["ras-off", "ras-on"])
def test_wheel_matches_heap(topology, obs, ras):
    config = small_config(topology=topology)
    if obs:
        config = config.with_obs(attribution=True)
    if ras:
        # A noisy plan exercises link replays; the draw is seed-derived,
        # so both schedulers must see identical fault sequences.
        config = config.with_ras(bit_error_rate=1e-6)
    wheel, wheel_events = sim_digest(config, requests=150, scheduler="wheel")
    heap, heap_events = sim_digest(config, requests=150, scheduler="heap")
    assert wheel == heap
    assert wheel_events == heap_events


def test_wheel_matches_heap_across_far_horizon():
    """Events past the near boundary take the far-bucket path; a long
    quiet workload forces refills and must still match the heap."""
    config = small_config()
    workload = fast_workload(mean_gap_ns=40.0, burst_size=1.0)
    wheel, _ = sim_digest(config, workload, 120, scheduler="wheel")
    heap, _ = sim_digest(config, workload, 120, scheduler="heap")
    assert wheel == heap


def test_default_engine_is_wheel():
    system = MemoryNetworkSystem(small_config(), fast_workload(), requests=1)
    assert system.engine.scheduler == "wheel"


# ---------------------------------------------------------------------------
# Property tests: adversarial schedules at the near/far boundary
# ---------------------------------------------------------------------------
WHEEL_PERIOD = 1 << WHEEL_SHIFT

# Delays drawn either uniformly across a few wheel periods, or pinned to
# within a couple of picoseconds of a bucket boundary ``k * 2**12`` —
# exactly where a near/far filing mistake would change pop order.
_delays = st.one_of(
    st.integers(min_value=0, max_value=3 * WHEEL_PERIOD),
    st.builds(
        lambda k, off: max(0, k * WHEEL_PERIOD + off),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=-2, max_value=2),
    ),
)


def _fire_log(scheduler, initial, chained):
    """Run one schedule on ``scheduler`` and log ``(now, tag)`` pops.

    ``chained`` maps fired events to follow-up delays, so callbacks
    schedule new events mid-run — including into already-promoted near
    windows and not-yet-filed far buckets.
    """
    engine = Engine(scheduler)
    log = []
    followups = {}
    for child, (parent, delay) in enumerate(chained):
        followups.setdefault(parent, []).append((child, delay))

    def fire(eng, tag):
        log.append((eng.now, tag))
        if isinstance(tag, int):
            for child, delay in followups.get(tag, ()):
                eng.schedule(delay, fire, ("chained", child))

    for tag, delay in enumerate(initial):
        engine.schedule(delay, fire, tag)
    engine.run()
    assert engine.integrity_errors() == []
    assert engine.pending == 0
    return log


@settings(max_examples=60, deadline=None)
@given(
    initial=st.lists(_delays, min_size=1, max_size=24),
    chained=st.lists(
        st.tuples(st.integers(min_value=0, max_value=23), _delays),
        max_size=24,
    ),
)
def test_wheel_pops_identically_to_heap(initial, chained):
    assert _fire_log("wheel", initial, chained) == _fire_log(
        "heap", initial, chained
    )
