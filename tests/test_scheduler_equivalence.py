"""Scheduler equivalence: the scheduler choice must be invisible.

The two-tier timing wheel (``Engine("wheel")``) and the batched
cohort engine (``Engine("batch")``) exist purely for throughput; the
plain binary heap (``Engine("heap")``) is the reference.  All three
share the ``(time, seq)`` ordering contract, so every simulation must
produce bit-identical results — same digest, same event count —
regardless of which scheduler dispatched it, across every topology and
with the observability and RAS layers on or off.  The property tests at
the bottom drive the same contract with adversarial schedules: random
delays biased onto the wheel-bucket boundaries, re-entrant scheduling
from inside callbacks, and per-link FIFO delivery ordering through
same-timestamp cohorts.
"""

from __future__ import annotations

import importlib.util

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import WHEEL_SHIFT, Engine
from repro.system import MemoryNetworkSystem

from conftest import fast_workload, sim_digest, small_config

TOPOLOGIES = ("chain", "ring", "skiplist", "metacube")

needs_numpy = pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="Engine('batch') requires the numpy extra",
)


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("obs", [False, True], ids=["obs-off", "obs-on"])
@pytest.mark.parametrize("ras", [False, True], ids=["ras-off", "ras-on"])
def test_wheel_matches_heap(topology, obs, ras):
    config = small_config(topology=topology)
    if obs:
        config = config.with_obs(attribution=True)
    if ras:
        # A noisy plan exercises link replays; the draw is seed-derived,
        # so both schedulers must see identical fault sequences.
        config = config.with_ras(bit_error_rate=1e-6)
    wheel, wheel_events = sim_digest(config, requests=150, scheduler="wheel")
    heap, heap_events = sim_digest(config, requests=150, scheduler="heap")
    assert wheel == heap
    assert wheel_events == heap_events


@needs_numpy
@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("obs", [False, True], ids=["obs-off", "obs-on"])
@pytest.mark.parametrize("ras", [False, True], ids=["ras-off", "ras-on"])
def test_batch_matches_heap(topology, obs, ras):
    config = small_config(topology=topology)
    if obs:
        config = config.with_obs(attribution=True)
    if ras:
        config = config.with_ras(bit_error_rate=1e-6)
    batch, batch_events = sim_digest(config, requests=150, scheduler="batch")
    heap, heap_events = sim_digest(config, requests=150, scheduler="heap")
    assert batch == heap
    assert batch_events == heap_events


def test_wheel_matches_heap_across_far_horizon():
    """Events past the near boundary take the far-bucket path; a long
    quiet workload forces refills and must still match the heap."""
    config = small_config()
    workload = fast_workload(mean_gap_ns=40.0, burst_size=1.0)
    wheel, _ = sim_digest(config, workload, 120, scheduler="wheel")
    heap, _ = sim_digest(config, workload, 120, scheduler="heap")
    assert wheel == heap


@needs_numpy
def test_batch_matches_heap_across_far_horizon():
    """The sparse-schedule case exercises one sorted window per handful
    of events, maximizing refill churn in the batch engine."""
    config = small_config()
    workload = fast_workload(mean_gap_ns=40.0, burst_size=1.0)
    batch, _ = sim_digest(config, workload, 120, scheduler="batch")
    heap, _ = sim_digest(config, workload, 120, scheduler="heap")
    assert batch == heap


def test_default_engine_is_wheel(monkeypatch):
    # The *documented* default, independent of any ambient override.
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    system = MemoryNetworkSystem(small_config(), fast_workload(), requests=1)
    assert system.engine.scheduler == "wheel"


# ---------------------------------------------------------------------------
# Property tests: adversarial schedules at the near/far boundary
# ---------------------------------------------------------------------------
WHEEL_PERIOD = 1 << WHEEL_SHIFT

# Delays drawn either uniformly across a few wheel periods, or pinned to
# within a couple of picoseconds of a bucket boundary ``k * 2**12`` —
# exactly where a near/far filing mistake would change pop order.
_delays = st.one_of(
    st.integers(min_value=0, max_value=3 * WHEEL_PERIOD),
    st.builds(
        lambda k, off: max(0, k * WHEEL_PERIOD + off),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=-2, max_value=2),
    ),
)


def _fire_log(scheduler, initial, chained):
    """Run one schedule on ``scheduler`` and log ``(now, tag)`` pops.

    ``chained`` maps fired events to follow-up delays, so callbacks
    schedule new events mid-run — including into already-promoted near
    windows and not-yet-filed far buckets.
    """
    engine = Engine(scheduler)
    log = []
    followups = {}
    for child, (parent, delay) in enumerate(chained):
        followups.setdefault(parent, []).append((child, delay))

    def fire(eng, tag):
        log.append((eng.now, tag))
        if isinstance(tag, int):
            for child, delay in followups.get(tag, ()):
                eng.schedule(delay, fire, ("chained", child))

    for tag, delay in enumerate(initial):
        engine.schedule(delay, fire, tag)
    engine.run()
    assert engine.integrity_errors() == []
    assert engine.pending == 0
    return log


@settings(max_examples=60, deadline=None)
@given(
    initial=st.lists(_delays, min_size=1, max_size=24),
    chained=st.lists(
        st.tuples(st.integers(min_value=0, max_value=23), _delays),
        max_size=24,
    ),
)
def test_wheel_pops_identically_to_heap(initial, chained):
    assert _fire_log("wheel", initial, chained) == _fire_log(
        "heap", initial, chained
    )


@needs_numpy
@settings(max_examples=60, deadline=None)
@given(
    initial=st.lists(_delays, min_size=1, max_size=24),
    chained=st.lists(
        st.tuples(st.integers(min_value=0, max_value=23), _delays),
        max_size=24,
    ),
)
def test_batch_pops_identically_to_heap(initial, chained):
    assert _fire_log("batch", initial, chained) == _fire_log(
        "heap", initial, chained
    )


NUM_LINKS = 4


def _link_traffic(scheduler, sends, latency):
    """Model per-link FIFO wires on one engine; return (sent, arrived).

    Each generated "send" event forwards its message after a fixed
    per-link latency via a re-entrant schedule, so same-timestamp sends
    on one link form a delivery cohort ``latency`` later.  A FIFO wire
    requires per-link arrival order == send order; a cohort drained out
    of ``(time, seq)`` order would reorder it.
    """
    engine = Engine(scheduler)
    sent = {link: [] for link in range(NUM_LINKS)}
    arrived = {link: [] for link in range(NUM_LINKS)}

    def deliver(eng, link, msg):
        arrived[link].append((eng.now, msg))

    def send(eng, link, msg):
        sent[link].append(msg)
        eng.schedule(latency, deliver, link, msg)

    for msg, (link, delay) in enumerate(sends):
        engine.schedule(delay, send, link, msg)
    engine.run()
    assert engine.pending == 0
    return sent, arrived


@needs_numpy
@settings(max_examples=60, deadline=None)
@given(
    sends=st.lists(
        st.tuples(st.integers(min_value=0, max_value=NUM_LINKS - 1), _delays),
        min_size=1,
        max_size=32,
    ),
    latency=st.integers(min_value=0, max_value=2 * WHEEL_PERIOD),
)
def test_cohort_drain_preserves_per_link_fifo(sends, latency):
    """Cohort-phase execution must not reorder any link's FIFO."""
    reference = _link_traffic("heap", sends, latency)
    for scheduler in ("wheel", "batch"):
        sent, arrived = _link_traffic(scheduler, sends, latency)
        for link in range(NUM_LINKS):
            assert [msg for _t, msg in arrived[link]] == sent[link]
        assert (sent, arrived) == reference
