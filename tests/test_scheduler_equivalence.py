"""Scheduler equivalence: the timing wheel must be invisible.

The two-tier timing wheel (``Engine("wheel")``) exists purely for
throughput; the plain binary heap (``Engine("heap")``) is the reference.
Both share the ``(time, seq)`` ordering contract, so every simulation
must produce bit-identical results — same digest, same event count —
regardless of which scheduler dispatched it, across every topology and
with the observability and RAS layers on or off.
"""

from __future__ import annotations

import pytest

from repro.serialization import result_digest
from repro.sim.engine import Engine
from repro.system import MemoryNetworkSystem

from conftest import fast_workload, small_config

TOPOLOGIES = ("chain", "ring", "skiplist", "metacube")


def _digest(config, requests, scheduler):
    system = MemoryNetworkSystem(
        config, fast_workload(), requests=requests, engine=Engine(scheduler)
    )
    result = system.run()
    return result_digest(result), result.events_processed


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("obs", [False, True], ids=["obs-off", "obs-on"])
@pytest.mark.parametrize("ras", [False, True], ids=["ras-off", "ras-on"])
def test_wheel_matches_heap(topology, obs, ras):
    config = small_config(topology=topology)
    if obs:
        config = config.with_obs(attribution=True)
    if ras:
        # A noisy plan exercises link replays; the draw is seed-derived,
        # so both schedulers must see identical fault sequences.
        config = config.with_ras(bit_error_rate=1e-6)
    wheel, wheel_events = _digest(config, 150, "wheel")
    heap, heap_events = _digest(config, 150, "heap")
    assert wheel == heap
    assert wheel_events == heap_events


def test_wheel_matches_heap_across_far_horizon():
    """Events past the near boundary take the far-bucket path; a long
    quiet workload forces refills and must still match the heap."""
    config = small_config()
    workload = fast_workload(mean_gap_ns=40.0, burst_size=1.0)
    results = {}
    for scheduler in ("wheel", "heap"):
        system = MemoryNetworkSystem(
            config, workload, requests=120, engine=Engine(scheduler)
        )
        results[scheduler] = result_digest(system.run())
    assert results["wheel"] == results["heap"]


def test_default_engine_is_wheel():
    system = MemoryNetworkSystem(small_config(), fast_workload(), requests=1)
    assert system.engine.scheduler == "wheel"
