"""Tests for trace capture, persistence, and replay."""

import pytest

from repro.errors import WorkloadError
from repro.units import GIB_BYTES
from repro.workloads import Request, SyntheticWorkload, Trace, TraceWorkload

from conftest import fast_workload


def sample_trace(n=10):
    # Cycle read / write / p2p copy (p2p copies are never writes: the
    # directory treats the copy as a read of the source line).
    return Trace(
        Request(
            address=i * 64,
            is_write=i % 3 == 1,
            gap_ps=i * 10,
            is_p2p=i % 3 == 2,
        )
        for i in range(n)
    )


class TestTrace:
    def test_capture_from_generator(self):
        workload = SyntheticWorkload(fast_workload(), GIB_BYTES, seed=3)
        trace = Trace.capture(workload, 50)
        assert len(trace) == 50

    def test_capture_stops_at_exhaustion(self):
        trace = Trace.capture(iter(sample_trace(5)), 100)
        assert len(trace) == 5

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            Trace.capture(iter([]), -1)

    def test_save_load_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.txt"
        trace.save(path)
        loaded = Trace.load(path)
        assert list(loaded) == list(trace)

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# comment\n\n40 R 100\n")
        trace = Trace.load(path)
        assert len(trace) == 1
        assert trace.requests[0] == Request(0x40, False, 100)

    @pytest.mark.parametrize(
        "line",
        ["garbage", "40 X 100", "zz R 100", "40 R -5", "40 R"],
    )
    def test_load_rejects_malformed(self, tmp_path, line):
        path = tmp_path / "trace.txt"
        path.write_text(line + "\n")
        with pytest.raises(WorkloadError):
            Trace.load(path)

    @pytest.mark.parametrize(
        "line,token",
        [
            # Forms int(x, 16) accepts but Trace.save never writes: a
            # loader that takes them breaks byte-identical round-trips.
            ("0x40 R 100", "0x40"),
            ("+40 R 100", "+40"),
            ("-40 R 100", "-40"),
            ("AB R 100", "AB"),
            ("4_0 R 100", "4_0"),
            # Same for gaps: int() accepts signs/underscores/whitespace.
            ("40 R +100", "+100"),
            ("40 R 1_0", "1_0"),
        ],
    )
    def test_load_rejects_noncanonical_tokens(self, tmp_path, line, token):
        path = tmp_path / "trace.txt"
        path.write_text(line + "\n")
        with pytest.raises(WorkloadError) as excinfo:
            Trace.load(path)
        assert repr(token) in str(excinfo.value)

    def test_p2p_requests_roundtrip(self, tmp_path):
        trace = Trace([
            Request(0x40, False, 10, is_p2p=True),
            Request(0x80, True, 20),
            Request(0xC0, False, 30),
        ])
        path = tmp_path / "trace.txt"
        trace.save(path)
        loaded = Trace.load(path)
        assert [r.is_p2p for r in loaded] == [True, False, False]
        assert list(loaded) == list(trace)

    def test_save_load_save_is_byte_identical(self, tmp_path):
        first = tmp_path / "a.txt"
        second = tmp_path / "b.txt"
        trace = sample_trace(25)
        trace.save(first)
        Trace.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_write_fraction(self):
        trace = Trace([Request(0, True, 0), Request(64, False, 0)])
        assert trace.write_fraction() == 0.5
        assert Trace().write_fraction() == 0.0


class TestTraceWorkload:
    def test_replay_order(self):
        trace = sample_trace(4)
        replay = TraceWorkload(trace, loop=False)
        assert [next(replay) for _ in range(4)] == trace.requests
        with pytest.raises(StopIteration):
            next(replay)

    def test_looping_replay(self):
        trace = sample_trace(3)
        replay = TraceWorkload(trace, loop=True)
        out = [next(replay) for _ in range(7)]
        assert out[:3] == out[3:6]

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            TraceWorkload(Trace())

    def test_replay_through_simulation(self):
        from repro.system import MemoryNetworkSystem
        from conftest import small_config

        workload = SyntheticWorkload(
            fast_workload(), 64 * GIB_BYTES, seed=9
        )
        trace = Trace.capture(workload, 100)
        system = MemoryNetworkSystem(
            small_config(),
            fast_workload(),
            requests=100,
            workload_iter=TraceWorkload(trace),
        )
        result = system.run()
        assert result.transactions == 100
