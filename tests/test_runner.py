"""Tests for the runner subsystem: job digests, caching, parallelism.

The load-bearing property is determinism: the same job must produce a
bit-identical ``SimResult`` whether it runs serially in-process, comes
out of the in-memory cache, round-trips through the disk cache, or runs
in a worker process.  Equality is asserted on
:func:`repro.serialization.result_digest`.
"""

import dataclasses
import json

import pytest

from repro.config import SystemConfig
from repro.experiments.base import ExperimentOutput
from repro.net.routing import cached_bfs_paths, clear_route_cache
from repro.runner import (
    ParallelRunner,
    ResultCache,
    SimJob,
    canonical_tree,
    execute_job,
    using_runner,
)
from repro.serialization import (
    result_digest,
    result_from_state,
    result_to_state,
)
from repro.sweep import Sweep
from repro.system import simulate

from conftest import fast_workload, small_config


def job(**overrides) -> SimJob:
    requests = overrides.pop("requests", 60)
    return SimJob(
        config=small_config(**overrides),
        workload=fast_workload(),
        requests=requests,
    )


class TestSimJobDigest:
    def test_equal_jobs_equal_digests(self):
        assert job().digest() == job().digest()

    def test_construction_order_irrelevant(self):
        forward = small_config().with_(topology="tree").with_(arbiter="distance")
        backward = small_config().with_(arbiter="distance").with_(topology="tree")
        a = SimJob(forward, fast_workload(), 60)
        b = SimJob(backward, fast_workload(), 60)
        assert a.digest() == b.digest()

    def test_top_level_field_changes_digest(self):
        assert job().digest() != job(topology="tree").digest()

    def test_nested_field_changes_digest(self):
        base = small_config()
        tweaked = base.with_(
            link=dataclasses.replace(base.link, serdes_latency_ps=0)
        )
        assert (
            SimJob(base, fast_workload(), 60).digest()
            != SimJob(tweaked, fast_workload(), 60).digest()
        )

    def test_every_config_field_invalidates(self):
        # a job digest must cover the whole config tree: flipping any
        # scalar top-level field must produce a new cache key
        base = job().digest()
        for field in dataclasses.fields(SystemConfig):
            value = getattr(small_config(), field.name)
            if isinstance(value, bool):
                changed = not value
            elif isinstance(value, int):
                changed = value + 1
            elif isinstance(value, float):
                changed = value / 2 + 0.01
            elif isinstance(value, str):
                changed = value + "_x"
            else:
                continue  # sub-configs covered by the nested test
            assert job(**{field.name: changed}).digest() != base, field.name

    def test_requests_and_workload_change_digest(self):
        assert job().digest() != job(requests=61).digest()
        other = SimJob(
            small_config(), fast_workload(read_fraction=0.5), 60
        )
        assert job().digest() != other.digest()

    def test_canonical_tree_is_json_stable(self):
        tree = canonical_tree(small_config())
        assert json.dumps(tree, sort_keys=True) == json.dumps(
            canonical_tree(small_config()), sort_keys=True
        )


class TestResultStateRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        return execute_job(job())

    def test_round_trip_preserves_digest(self, result):
        restored = result_from_state(
            json.loads(json.dumps(result_to_state(result)))
        )
        assert result_digest(restored) == result_digest(result)

    def test_round_trip_preserves_metrics(self, result):
        restored = result_from_state(result_to_state(result))
        assert restored.runtime_ps == result.runtime_ps
        assert restored.mean_latency_ns == result.mean_latency_ns
        assert restored.row_hit_rate == result.row_hit_rate
        assert restored.energy.total_pj == result.energy.total_pj
        assert restored.collector.count == result.collector.count

    def test_version_mismatch_rejected(self, result):
        state = result_to_state(result)
        state["version"] = -1
        with pytest.raises(ValueError):
            result_from_state(state)


class TestResultCache:
    def test_memory_hit(self):
        cache = ResultCache()
        result = execute_job(job())
        cache.put("abc", result)
        assert cache.get("abc") is result
        assert cache.memory_hits == 1

    def test_disk_round_trip_identical_digest(self, tmp_path):
        result = execute_job(job())
        writer = ResultCache(tmp_path)
        writer.put("d" * 64, result)
        reader = ResultCache(tmp_path)  # fresh memory layer
        loaded = reader.get("d" * 64)
        assert loaded is not None
        assert reader.disk_hits == 1
        assert result_digest(loaded) == result_digest(result)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("e" * 64, execute_job(job()))
        path = cache._path("e" * 64)
        path.write_text("{not json")
        fresh = ResultCache(tmp_path)
        assert fresh.get("e" * 64) is None
        assert not path.exists()  # corrupt file removed

    def test_miss_counted(self):
        cache = ResultCache()
        assert cache.get("nope") is None
        assert cache.misses == 1


class TestParallelRunner:
    def test_dedupes_identical_jobs(self):
        runner = ParallelRunner(jobs=1)
        results = runner.run([job(), job(), job()])
        assert runner.simulations_run == 1
        assert results[0] is results[1] is results[2]

    def test_results_in_input_order(self):
        chain, tree = job(), job(topology="tree")
        runner = ParallelRunner(jobs=1)
        results = runner.run([tree, chain, tree])
        assert results[0].config_label == "100%-T"
        assert results[1].config_label == "100%-C"
        assert results[2] is results[0]

    def test_cache_hit_skips_simulation(self):
        runner = ParallelRunner(jobs=1)
        runner.run([job()])
        runner.run([job()])
        assert runner.simulations_run == 1

    def test_pool_matches_serial_bitwise(self):
        # the acceptance property: worker processes reproduce the serial
        # result exactly (per-job seeds derive from the config)
        jobs = [job(), job(topology="tree"), job(arbiter="distance")]
        serial = ParallelRunner(jobs=1).run(jobs)
        parallel = ParallelRunner(jobs=2).run(jobs)
        for s, p in zip(serial, parallel):
            assert result_digest(s) == result_digest(p)

    def test_disk_cache_matches_live_run_bitwise(self, tmp_path):
        first = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        live = first.run_one(job())
        second = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        cached = second.run_one(job())
        assert second.simulations_run == 0
        assert result_digest(cached) == result_digest(live)

    def test_simulate_uses_ambient_runner(self):
        with using_runner(ParallelRunner(jobs=1)) as runner:
            a = simulate(small_config(), fast_workload(), requests=60)
            b = simulate(small_config(), fast_workload(), requests=60)
            assert a is b
            assert runner.simulations_run == 1


class TestSweepThroughRunner:
    def test_parallel_serial_rows_identical(self):
        def rows(jobs):
            with using_runner(ParallelRunner(jobs=jobs)):
                return (
                    Sweep(fast_workload(), requests=60, base_config=small_config())
                    .over("topology", ["chain", "tree"])
                    .run()
                )

        assert rows(1) == rows(2)

    def test_error_rows_have_no_nan_rendering(self):
        sweep = Sweep(
            fast_workload(), requests=50, base_config=small_config()
        ).over("dram_fraction", [1.0, 0.37])
        rows = sweep.run(skip_invalid=False)
        assert len(rows) == 2
        assert "error" in rows[1]
        text = sweep.render(rows)
        assert "nan" not in text
        assert "error" in text

    def test_identical_points_simulated_once(self):
        with using_runner(ParallelRunner(jobs=1)) as runner:
            (
                Sweep(fast_workload(), requests=50, base_config=small_config())
                .over("topology", ["chain", "chain"])
                .run()
            )
            assert runner.simulations_run == 1


class TestExperimentDeterminism:
    def test_experiment_series_identical_serial_cached_parallel(self):
        from repro.experiments import get_experiment

        run = get_experiment("fig04")
        kwargs = dict(
            requests=60,
            workloads=[fast_workload()],
            base_config=small_config(),
        )
        with using_runner(ParallelRunner(jobs=1)):
            serial = run(**kwargs)
            cached = run(**kwargs)  # second pass: pure cache hits
        with using_runner(ParallelRunner(jobs=2)):
            parallel = run(**kwargs)
        assert serial.data == cached.data == parallel.data
        assert serial.text == cached.text == parallel.text


class TestCsvColumnOrder:
    def test_numeric_labels_sorted_numerically(self, tmp_path):
        output = ExperimentOutput(
            experiment_id="t",
            title="t",
            text="t",
            data={"grid": {"row": {2: 1.0, 10: 2.0, 16: 3.0}}},
        )
        path = tmp_path / "out.csv"
        output.save_csv(path)
        header = path.read_text().splitlines()[0].split(",")
        assert header[1:] == ["2", "10", "16"]

    def test_string_labels_sorted_lexically(self, tmp_path):
        output = ExperimentOutput(
            experiment_id="t",
            title="t",
            text="t",
            data={"grid": {"row": {"b": 1.0, "a": 2.0}}},
        )
        path = tmp_path / "out.csv"
        output.save_csv(path)
        header = path.read_text().splitlines()[0].split(",")
        assert header[1:] == ["a", "b"]


class TestRouteCache:
    def test_same_adjacency_shares_tree(self):
        clear_route_cache()
        adjacency = {0: [1], 1: [0, 2], 2: [1]}
        first = cached_bfs_paths(adjacency, 0)
        second = cached_bfs_paths(dict(adjacency), 0)
        assert first is second
        assert first[2] == (0, 1, 2)

    def test_different_source_distinct(self):
        clear_route_cache()
        adjacency = {0: [1], 1: [0, 2], 2: [1]}
        assert cached_bfs_paths(adjacency, 0) is not cached_bfs_paths(
            adjacency, 2
        )

    def test_repeated_system_builds_hit_cache(self):
        from repro.net import routing
        from repro.system import MemoryNetworkSystem

        clear_route_cache()
        MemoryNetworkSystem(small_config(), fast_workload(), requests=1)
        size = len(routing._BFS_CACHE)
        assert size > 0
        MemoryNetworkSystem(small_config(), fast_workload(), requests=1)
        assert len(routing._BFS_CACHE) == size  # no recompute, no growth


class TestCli:
    def test_jobs_and_cache_flags(self, tmp_path, capsys):
        from repro.experiments.__main__ import main
        from repro.runner import reset_runner

        argv = [
            "fig04",
            "--requests",
            "40",
            "--workloads",
            "KMEANS",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path),
        ]
        try:
            assert main(argv) == 0
            first = capsys.readouterr().out
            assert "simulations run" in first
            # back-to-back second invocation: everything from disk
            assert main(argv) == 0
            second = capsys.readouterr().out
            assert "0 simulations run" in second
        finally:
            reset_runner()

    def test_invalid_experiment_still_errors(self):
        from repro.errors import ConfigError as CE
        from repro.experiments.__main__ import main
        from repro.runner import reset_runner

        try:
            with pytest.raises(CE):
                main(["fig99"])
        finally:
            reset_runner()
