"""Tests for seeded random streams."""

from repro.sim.random import RandomStream, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")


def test_derive_seed_sensitive_to_labels():
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(42, "a", "b") != derive_seed(42, "ab")


def test_derive_seed_sensitive_to_root():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_streams_reproducible():
    a = RandomStream(7, "x")
    b = RandomStream(7, "x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_independent():
    a = RandomStream(7, "x")
    b = RandomStream(7, "y")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_randint_in_range():
    stream = RandomStream(1, "t")
    for _ in range(100):
        assert 3 <= stream.randint(3, 9) <= 9


def test_randrange_in_range():
    stream = RandomStream(1, "t")
    for _ in range(100):
        assert 0 <= stream.randrange(5) < 5


def test_expovariate_mean():
    stream = RandomStream(1, "exp")
    samples = [stream.expovariate(100.0) for _ in range(20_000)]
    assert 95 < sum(samples) / len(samples) < 105


def test_expovariate_nonpositive_mean():
    stream = RandomStream(1, "exp")
    assert stream.expovariate(0.0) == 0.0


def test_geometric_run_mean():
    stream = RandomStream(1, "geo")
    samples = [stream.geometric_run(8.0) for _ in range(20_000)]
    mean = sum(samples) / len(samples)
    assert 7.5 < mean < 8.5
    assert min(samples) >= 1


def test_geometric_run_degenerate():
    stream = RandomStream(1, "geo")
    assert stream.geometric_run(1.0) == 1
    assert stream.geometric_run(0.5) == 1


def test_spawn_creates_namespaced_child():
    parent = RandomStream(9, "p")
    child1 = parent.spawn("c")
    child2 = parent.spawn("c")
    assert child1.seed == child2.seed
    assert child1.seed != parent.seed
