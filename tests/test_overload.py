"""Overload robustness tests: open-loop arrivals, deadlines with retry,
admission control, their invariants, and digest transparency."""

from __future__ import annotations

import importlib.util
from dataclasses import replace

import pytest

from repro.config import OverloadConfig, SystemConfig
from repro.errors import ConfigError, WorkloadError
from repro.runner.job import SimJob, canonical_tree
from repro.serialization import result_digest, result_from_state, result_to_state
from repro.units import ns
from repro.workloads.base import VALID_ARRIVALS

from conftest import fast_workload, run_sim, run_system, sim_digest, small_config

HAVE_NUMPY = importlib.util.find_spec("numpy") is not None


def overload_config(**overrides) -> SystemConfig:
    """Skip-list system with deadlines, bounded retry and shedding."""
    defaults = dict(
        deadline_ps=ns(150),
        max_retries=2,
        retry_backoff_ps=ns(50),
        shed_high=96,
        shed_low=48,
    )
    defaults.update(overrides)
    return small_config(topology="skiplist").with_overload(**defaults)


def open_workload(**overrides):
    """Bursty open-loop arrivals at twice the closed-loop rate."""
    defaults = dict(arrival="onoff", mean_gap_ns=1.0, on_fraction=0.5, on_burst=16.0)
    defaults.update(overrides)
    return fast_workload(**defaults)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
class TestArrivalValidation:
    def test_valid_arrivals(self):
        assert VALID_ARRIVALS == ("closed", "poisson", "onoff")
        for arrival in VALID_ARRIVALS:
            fast_workload(arrival=arrival).validate()

    def test_unknown_arrival_rejected(self):
        with pytest.raises(WorkloadError, match="arrival"):
            fast_workload(arrival="openloop").validate()

    def test_on_fraction_range(self):
        with pytest.raises(WorkloadError, match="on_fraction"):
            fast_workload(arrival="onoff", on_fraction=0.0).validate()
        with pytest.raises(WorkloadError, match="on_fraction"):
            fast_workload(arrival="onoff", on_fraction=1.5).validate()

    def test_on_burst_minimum(self):
        with pytest.raises(WorkloadError, match="on_burst"):
            fast_workload(arrival="onoff", on_burst=0.5).validate()

    def test_is_open_loop(self):
        assert not fast_workload().is_open_loop
        assert fast_workload(arrival="poisson").is_open_loop
        assert fast_workload(arrival="onoff").is_open_loop


class TestOverloadConfigValidation:
    def test_default_is_off(self):
        plan = OverloadConfig()
        assert not plan.enabled
        assert not plan.deadlines_enabled
        assert not plan.shedding_enabled
        plan.validate()

    def test_negative_fields_rejected(self):
        for field_name in ("deadline_ps", "max_retries", "retry_backoff_ps",
                           "shed_high", "shed_low"):
            with pytest.raises(ConfigError, match=field_name):
                replace(OverloadConfig(), **{field_name: -1}).validate()

    def test_watermark_ordering(self):
        with pytest.raises(ConfigError, match="shed_low"):
            OverloadConfig(shed_high=10, shed_low=20).validate()

    def test_retries_require_deadline(self):
        with pytest.raises(ConfigError, match="max_retries"):
            OverloadConfig(max_retries=3).validate()

    def test_with_overload_helper(self):
        config = small_config().with_overload(deadline_ps=ns(500), shed_high=8)
        assert config.overload.deadline_ps == ns(500)
        assert config.overload.enabled
        config.validate()
        # ... and the original default stays untouched / disabled.
        assert not small_config().overload.enabled


# ---------------------------------------------------------------------------
# Digest transparency: overload-off configs digest exactly as before
# ---------------------------------------------------------------------------
class TestDigestTransparency:
    def test_default_overload_absent_from_canonical_tree(self):
        tree = canonical_tree(small_config())
        assert "overload" not in tree
        tree = canonical_tree(fast_workload())
        assert "arrival" not in tree
        assert "on_fraction" not in tree
        assert "on_burst" not in tree

    def test_enabled_overload_enters_the_digest(self):
        base = SimJob(config=small_config(), workload=fast_workload(),
                      requests=50)
        loaded = SimJob(config=overload_config(), workload=fast_workload(),
                        requests=50)
        open_wl = SimJob(config=small_config(), workload=open_workload(),
                         requests=50)
        assert base.digest() != loaded.digest()
        assert base.digest() != open_wl.digest()
        tree = canonical_tree(overload_config())
        assert tree["overload"]["deadline_ps"] == ns(150)

    def test_explicit_defaults_digest_like_omitted(self):
        explicit = replace(small_config(), overload=OverloadConfig())
        assert (
            SimJob(config=explicit, workload=fast_workload(), requests=50).digest()
            == SimJob(config=small_config(), workload=fast_workload(),
                      requests=50).digest()
        )


# ---------------------------------------------------------------------------
# Behaviour under overload
# ---------------------------------------------------------------------------
class TestOverloadBehaviour:
    REQUESTS = 150

    def run_overloaded(self, config=None, workload=None, **kwargs):
        return run_system(
            config if config is not None else overload_config(),
            workload if workload is not None else open_workload(),
            requests=self.REQUESTS,
            audit=True,
            **kwargs,
        )

    def test_conservation_and_dispositions(self):
        system, result = self.run_overloaded()
        extra = result.extra
        generated = extra["overload.generated"]
        assert generated == self.REQUESTS
        assert (
            extra["overload.completed"]
            + extra["overload.timed_out"]
            + extra["overload.shed"]
            + result.requests_failed
            == generated
        )
        # The tight deadline and the bursty open loop exercise every
        # disposition in this regime.
        assert extra["overload.timed_out"] > 0
        assert extra["overload.shed"] > 0
        assert extra["overload.retries"] > 0
        assert extra["overload.retries"] <= extra["overload.timeouts"]

    def test_backlog_bounded_by_watermark(self):
        system, result = self.run_overloaded()
        assert result.extra["overload.peak_backlog"] <= 96
        assert system.port.peak_backlog == result.extra["overload.peak_backlog"]

    def test_no_shedding_backlog_grows_past_watermark(self):
        _, result = self.run_overloaded(
            config=overload_config(shed_high=0, shed_low=0)
        )
        assert result.extra["overload.shed"] == 0
        assert result.extra["overload.peak_backlog"] > 96

    def test_open_loop_without_deadlines_completes_everything(self):
        _, result = self.run_overloaded(config=small_config(topology="skiplist"))
        extra = result.extra
        assert extra["overload.completed"] == extra["overload.generated"]
        assert extra["overload.timed_out"] == 0
        assert extra["overload.shed"] == 0

    def test_closed_loop_reports_no_overload_extras(self):
        result = run_sim(requests=self.REQUESTS, audit=True)
        assert not any(key.startswith("overload.") for key in result.extra)

    def test_result_properties(self):
        _, result = self.run_overloaded()
        assert result.requests_timed_out > 0
        assert result.requests_shed > 0
        assert 0.0 < result.deadline_miss_rate < 1.0
        assert result.goodput_rps > 0.0

    def test_overload_extras_roundtrip(self):
        _, result = self.run_overloaded()
        restored = result_from_state(result_to_state(result))
        assert restored.requests_timed_out == result.requests_timed_out
        assert restored.requests_shed == result.requests_shed
        assert result_digest(restored) == result_digest(result)

    def test_deterministic_reruns(self):
        first = self.run_overloaded()[1]
        second = self.run_overloaded()[1]
        assert result_digest(first) == result_digest(second)


class TestEngineEquivalence:
    def test_overload_digest_identical_across_engines(self):
        config = overload_config().with_obs(attribution=True)
        workload = open_workload()
        schedulers = ["heap", "wheel"] + (["batch"] if HAVE_NUMPY else [])
        digests = {
            scheduler: sim_digest(
                config, workload, requests=150, scheduler=scheduler, audit=True
            )
            for scheduler in schedulers
        }
        assert len(set(digests.values())) == 1, digests


class TestAttributionTiling:
    def test_timeout_and_retry_segments_tile_exactly(self):
        _, result = run_system(
            overload_config().with_obs(attribution=True),
            open_workload(),
            requests=150,
            audit=True,
        )
        segments = result.collector.segments
        assert any(label.startswith("host.timeout.") for label in segments)
        assert any(label.startswith("host.retry.") for label in segments)
        # Overload dead time is attributed, never leaked: the residual
        # pseudo-segment stays identically zero across every retry.
        unattributed = segments.get("unattributed")
        assert unattributed is None or unattributed.stat.total == 0
