"""Metamorphic tests: known input transformations, predictable outputs.

Rather than pinning absolute numbers, these tests apply a relation the
simulator must preserve — double the work, zero out the faults — and
check the output moves (or does not move) accordingly.  They catch the
class of bug where every individual component is plausible but the
system-level behaviour drifts.
"""

from __future__ import annotations

import pytest

from repro.serialization import result_digest

from conftest import fast_workload, run_sim, small_config


def _uncontended():
    """A chain workload with no queuing pressure: one request in flight,
    long gaps, so per-request latency is intensity-independent."""
    config = small_config(topology="chain")
    workload = fast_workload(mean_gap_ns=30.0, burst_size=1.0, mlp=1)
    return config, workload


class TestRequestScaling:
    def test_doubling_requests_keeps_mean_latency(self):
        """At fixed intensity the per-request mean is a property of the
        *system*, not the run length; doubling total_requests may only
        move it by warmup noise (measured spread is ~2%)."""
        config, workload = _uncontended()
        half = run_sim(config, workload, 300)
        full = run_sim(config, workload, 600)
        assert full.mean_latency_ns == pytest.approx(
            half.mean_latency_ns, rel=0.10
        )

    def test_doubling_requests_doubles_runtime(self):
        config, workload = _uncontended()
        half = run_sim(config, workload, 300)
        full = run_sim(config, workload, 600)
        assert full.runtime_ps == pytest.approx(2 * half.runtime_ps, rel=0.15)
        assert full.events_processed > half.events_processed


class TestFaultPlanIdentity:
    def test_zero_ber_plan_is_digest_identical_to_faults_off(self):
        """A plan that cannot fire (BER 0, nothing else) is *disabled*:
        no injector attaches and the run is bit-identical."""
        workload = fast_workload()
        plain = run_sim(small_config(), workload, 150)
        zeroed = run_sim(
            small_config().with_ras(bit_error_rate=0.0), workload, 150
        )
        assert result_digest(plain) == result_digest(zeroed)

    def test_inert_enabled_plan_changes_nothing_but_bookkeeping(self):
        """A zero-*rate* per-link override still counts as enabled (the
        injector attaches and reports its counters), so the digest gains
        RAS keys — but the simulation itself must be untouched."""
        workload = fast_workload()
        plain = run_sim(small_config(topology="ring"), workload, 150)
        inert = run_sim(
            small_config(topology="ring").with_ras(
                link_error_rates=((1, 2, 0.0),)
            ),
            workload,
            150,
        )
        assert inert.extra.get("ras.crc_errors", 0) == 0
        assert inert.extra["ras.replays"] == 0
        assert inert.runtime_ps == plain.runtime_ps
        assert inert.events_processed == plain.events_processed
        assert inert.mean_latency_ns == plain.mean_latency_ns
        assert inert.transactions == plain.transactions
