"""Tests for the quadrant memory controller."""

import pytest

from repro.arbitration import ArbiterContext, RoundRobinArbiter
from repro.config import PacketConfig, dram_tech, nvm_tech
from repro.host.address_map import Location
from repro.memory.controller import QuadrantController
from repro.memory.timing import TimingModel
from repro.net.buffers import InputQueue
from repro.net.packet import Packet, PacketKind, Transaction
from repro.net.router import LOCAL, LocalOutput, Router
from repro.sim.engine import Engine
from repro.units import ns


def make_request(bank=0, row=0, is_write=False, address=0):
    txn = Transaction(address, is_write, port_id=0, issue_ps=0)
    txn.location = Location(cube_index=0, quadrant=0, bank=bank, row=row, offset=0)
    txn.dest_cube = 1
    kind = PacketKind.WRITE_REQ if is_write else PacketKind.READ_REQ
    packet = Packet(kind, address, 0, 1, 128, 0, transaction=txn)
    packet.route = [0, 1]
    packet.hop_index = 1
    return packet


class Harness:
    def __init__(self, tech=None, num_banks=4, queue_depth=8, scheduling="fcfs",
                 inject_capacity=8):
        self.engine = Engine()
        self.router = Router(1, "cube", lambda: RoundRobinArbiter(ArbiterContext()))
        self.inject = InputQueue("inject", inject_capacity)
        self.router.add_input(self.inject)
        self.sunk = []
        # a local output that immediately drains responses
        self.router.add_output(
            LOCAL, LocalOutput(lambda p: True, lambda e, p, i: self.sunk.append(p))
        )
        self.routed = []
        self.controller = QuadrantController(
            name="q0",
            timing=TimingModel(tech or dram_tech()),
            num_banks=num_banks,
            queue_depth=queue_depth,
            inject_queue=self.inject,
            router=self.router,
            route_response=self._route,
            packet_config=PacketConfig(),
            scheduling=scheduling,
        )

    def _route(self, response):
        response.route = [1]  # terminate at this node (drains to sink)
        response.hop_index = 0
        self.routed.append(response)

    def send(self, packet):
        self.controller.reserve()
        self.controller.receive(self.engine, packet)

    def run(self):
        self.engine.run()


class TestBasicService:
    def test_read_produces_response(self):
        h = Harness()
        h.send(make_request())
        h.run()
        assert len(h.sunk) == 1
        assert h.sunk[0].kind == PacketKind.READ_RESP
        assert h.controller.reads == 1

    def test_write_produces_ack(self):
        h = Harness()
        h.send(make_request(is_write=True))
        h.run()
        assert h.sunk[0].kind == PacketKind.WRITE_ACK
        assert h.controller.writes == 1

    def test_timestamps_recorded(self):
        h = Harness()
        packet = make_request()
        # Served request packets are recycled through the controller's
        # PacketPool, so hold the transaction, not the packet.
        txn = packet.transaction
        h.send(packet)
        h.run()
        assert txn.mem_depart_ps == dram_tech().trcd_ps + dram_tech().tcl_ps
        assert txn.dest_tech == "DRAM"
        assert txn.row_hit is False

    def test_row_hit_faster_second_access(self):
        h = Harness()
        first, second = make_request(row=3), make_request(row=3)
        txn1, txn2 = first.transaction, second.transaction
        h.send(first)
        h.send(second)
        h.run()
        t1 = txn1.mem_depart_ps
        t2 = txn2.mem_depart_ps
        assert txn2.row_hit
        assert t2 - t1 == dram_tech().tcl_ps

    def test_bank_parallelism_with_frfcfs(self):
        h = Harness(scheduling="frfcfs")
        a, b = make_request(bank=0), make_request(bank=1)
        txn_a, txn_b = a.transaction, b.transaction
        h.send(a)
        h.send(b)
        h.run()
        # both banks were accessed concurrently: same completion time
        assert txn_a.mem_depart_ps == txn_b.mem_depart_ps


class TestScheduling:
    def test_fcfs_head_of_line_blocks(self):
        nvm = nvm_tech()
        h = Harness(tech=nvm, scheduling="fcfs")
        write = make_request(bank=0, row=1, is_write=True)
        blocked_miss = make_request(bank=0, row=2)
        other_bank = make_request(bank=1, row=1)
        other_txn = other_bank.transaction
        h.send(write)
        h.send(blocked_miss)
        h.send(other_bank)
        h.run()
        # under strict FCFS the other-bank request waits behind the
        # blocked miss (which waits out tWR)
        assert other_txn.mem_depart_ps > ns(320)

    def test_frfcfs_bypasses_blocked_head(self):
        nvm = nvm_tech()
        h = Harness(tech=nvm, scheduling="frfcfs")
        write = make_request(bank=0, row=1, is_write=True)
        blocked_miss = make_request(bank=0, row=2)
        other_bank = make_request(bank=1, row=1)
        other_txn = other_bank.transaction
        h.send(write)
        h.send(blocked_miss)
        h.send(other_bank)
        h.run()
        assert other_txn.mem_depart_ps < ns(320)

    def test_invalid_scheduling_rejected(self):
        with pytest.raises(ValueError):
            Harness(scheduling="random")


class TestBackpressure:
    def test_can_accept_tracks_queue_and_reservations(self):
        h = Harness(queue_depth=2)
        assert h.controller.can_accept()
        h.controller.reserve()
        h.controller.reserve()
        assert not h.controller.can_accept()

    def test_responses_wait_for_inject_space(self):
        h = Harness(inject_capacity=1)
        # block the inject queue with a packet whose output never accepts
        h.router.add_output(99, LocalOutput(lambda p: False, lambda e, p, i: None))
        blocker = make_request()
        blocker.route = [1, 99]
        blocker.hop_index = 0  # at node 1, bound for the refusing output

        h.inject.push(blocker)  # occupies the single slot
        h.send(make_request(row=5))
        h.engine.run(until=ns(1000))
        assert h.controller.pending_responses == 1
        # draining the queue lets the response through
        h.inject.pop()
        h.controller._inject_drained(h.engine)
        h.engine.run()
        assert h.controller.pending_responses == 0


class TestRefresh:
    def test_refresh_scheduled_for_dram(self):
        h = Harness()
        h.controller.start_refresh(h.engine)
        h.engine.run(until=dram_tech().refresh_interval_ps * 2)
        assert h.controller.refreshes > 0

    def test_no_refresh_for_nvm(self):
        h = Harness(tech=nvm_tech())
        h.controller.start_refresh(h.engine)
        h.engine.run(until=ns(100_000))
        assert h.controller.refreshes == 0
