"""Tests for the extra access-pattern generators."""

import pytest

from repro.errors import WorkloadError
from repro.system import MemoryNetworkSystem
from repro.units import GIB_BYTES
from repro.workloads.patterns import (
    StreamWorkload,
    StridedWorkload,
    TiledWorkload,
    UniformRandomWorkload,
)

from conftest import fast_workload, small_config

FOOTPRINT = GIB_BYTES


def take(workload, n=1000):
    return [next(workload) for _ in range(n)]


class TestStream:
    def test_sequential_addresses(self):
        requests = take(StreamWorkload(FOOTPRINT, 1000.0, 0.5, seed=1), 100)
        deltas = {
            b.address - a.address for a, b in zip(requests, requests[1:])
        }
        assert deltas == {64}

    def test_wraps_at_footprint(self):
        workload = StreamWorkload(256, 1000.0, 0.5, seed=1)
        requests = take(workload, 10)
        assert max(r.address for r in requests) < 256

    def test_read_fraction(self):
        requests = take(StreamWorkload(FOOTPRINT, 1000.0, 0.8, seed=1), 20_000)
        writes = sum(r.is_write for r in requests) / len(requests)
        assert writes == pytest.approx(0.2, abs=0.02)


class TestStrided:
    def test_stride_respected(self):
        workload = StridedWorkload(8, FOOTPRINT, 1000.0, 1.0, seed=1)
        requests = take(workload, 50)
        deltas = [b.address - a.address for a, b in zip(requests, requests[1:])]
        assert all(d == 8 * 64 for d in deltas[:40] if d > 0)

    def test_invalid_stride(self):
        with pytest.raises(WorkloadError):
            StridedWorkload(0, FOOTPRINT, 1000.0, 1.0, seed=1)


class TestTiled:
    def test_dense_within_tile(self):
        workload = TiledWorkload(16, FOOTPRINT, 1000.0, 1.0, seed=1)
        requests = take(workload, 16)
        base = requests[0].address
        assert [r.address - base for r in requests] == [i * 64 for i in range(16)]

    def test_tiles_are_tile_aligned(self):
        workload = TiledWorkload(16, FOOTPRINT, 1000.0, 1.0, seed=1)
        requests = take(workload, 160)
        firsts = requests[::16]
        assert all(r.address % (16 * 64) == 0 for r in firsts)

    def test_invalid_tile(self):
        with pytest.raises(WorkloadError):
            TiledWorkload(0, FOOTPRINT, 1000.0, 1.0, seed=1)


class TestUniformRandom:
    def test_addresses_spread(self):
        workload = UniformRandomWorkload(FOOTPRINT, 1000.0, 1.0, seed=1)
        requests = take(workload, 2000)
        unique = {r.address for r in requests}
        assert len(unique) > 1900  # collisions rare in a 1 GiB footprint

    def test_bounds(self):
        workload = UniformRandomWorkload(64 * 16, 1000.0, 1.0, seed=1)
        for request in take(workload, 200):
            assert 0 <= request.address < 64 * 16


class TestValidation:
    def test_footprint_too_small(self):
        with pytest.raises(WorkloadError):
            StreamWorkload(32, 1000.0, 0.5, seed=1)

    def test_bad_read_fraction(self):
        with pytest.raises(WorkloadError):
            StreamWorkload(FOOTPRINT, 1000.0, 1.5, seed=1)

    def test_negative_gap(self):
        with pytest.raises(WorkloadError):
            StreamWorkload(FOOTPRINT, -1.0, 0.5, seed=1)


class TestPatternsThroughSimulator:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda size: StreamWorkload(size, 2000.0, 0.7, seed=3),
            lambda size: StridedWorkload(16, size, 2000.0, 0.7, seed=3),
            lambda size: TiledWorkload(32, size, 2000.0, 0.7, seed=3),
            lambda size: UniformRandomWorkload(size, 2000.0, 0.7, seed=3),
        ],
    )
    def test_patterns_drive_full_simulations(self, factory):
        config = small_config()
        probe = MemoryNetworkSystem(config, fast_workload(), requests=1)
        workload_iter = factory(probe.address_map.total_bytes)
        system = MemoryNetworkSystem(
            config, fast_workload(), requests=150, workload_iter=workload_iter
        )
        result = system.run()
        assert result.transactions == 150

    def test_stream_has_best_row_hit_rate(self):
        config = small_config()
        probe = MemoryNetworkSystem(config, fast_workload(), requests=1)
        size = probe.address_map.total_bytes

        def run(workload_iter):
            system = MemoryNetworkSystem(
                config, fast_workload(), requests=400, workload_iter=workload_iter
            )
            return system.run().row_hit_rate

        stream = run(StreamWorkload(size, 2000.0, 1.0, seed=3))
        random_ = run(UniformRandomWorkload(size, 2000.0, 1.0, seed=3))
        assert stream > random_
