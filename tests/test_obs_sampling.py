"""Sampled and masked observability (repro.obs narrowing features).

Attribution sampling records exact segments for a deterministic 1-in-N
subset of transactions; label masks restrict recording to taxonomy
prefixes while still *counting* the spans they drop.  Trace sampling
rings every Nth event while the whole-run aggregates stay exact.  None
of the three may perturb the simulated schedule: a sampled/masked run
must be bit-identical to an observability-off run once the (smaller)
observability payload itself is set aside.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.config import ConfigError, ObsConfig, SystemConfig
from repro.obs import TraceRecorder, UNATTRIBUTED
from repro.obs.attribution import (
    MaskedSegments,
    SegmentMask,
    segment_code,
)
from repro.serialization import result_to_state

from conftest import fast_workload, run_system, small_config


def _digest_without_obs(result) -> str:
    """Result digest with the observability payload stripped.

    Sampling and masking legitimately shrink ``collector.segments`` and
    add ``obs.*`` accounting keys to ``extra``; everything else —
    runtime, latencies, energy, event counts — must stay bit-identical
    to an observability-off run.
    """
    state = result_to_state(result)
    state["collector"]["segments"] = {}
    state["extra"] = {
        key: value
        for key, value in state["extra"].items()
        if not key.startswith("obs.")
    }
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------
class TestConfig:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(attribution_sample=0),
            dict(trace_sample=0),
            dict(attribution_labels=()),
            dict(attribution_labels=("mem", "")),
            # Trailing dot can never match at a dot boundary; silently
            # recording nothing would be a footgun.
            dict(attribution_labels=("mem.",)),
        ],
    )
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigError):
            SystemConfig(obs=ObsConfig(attribution=True, **bad)).validate()

    def test_non_default_sampling_enters_job_digest(self):
        from repro.runner import SimJob

        def job(**obs):
            return SimJob(
                config=small_config().with_obs(attribution=True, **obs),
                workload=fast_workload(),
                requests=5,
            )

        base = job().digest()
        assert job(attribution_sample=8).digest() != base
        assert job(attribution_labels=("mem",)).digest() != base
        assert job(trace_sample=4).digest() != base
        # Explicit defaults are digest-transparent: cached pre-feature
        # results stay addressable.
        assert (
            job(
                attribution_sample=1, attribution_labels=None, trace_sample=1
            ).digest()
            == base
        )


# ---------------------------------------------------------------------------
# SegmentMask / MaskedSegments units
# ---------------------------------------------------------------------------
class TestMaskUnits:
    def test_prefix_semantics(self):
        mask = SegmentMask(("mem.xfer", "resp"))
        assert mask.allows("mem.xfer")
        assert mask.allows("mem.xfer.queue.n3")
        assert mask.allows("resp.wire.4->5")
        assert not mask.allows("mem.xfernot")
        assert not mask.allows("mem.array.c0")
        assert not mask.allows("req.port")

    def test_interned_codes_match_their_labels(self):
        mask = SegmentMask(("req",))
        code_in = segment_code("req.port")
        code_out = segment_code("resp.port")
        assert mask.allows(code_in)
        assert not mask.allows(code_out)
        # memoized decisions stay stable
        assert mask.allows(code_in) and not mask.allows(code_out)

    def test_masked_segments_counts_suppressed(self):
        seg = MaskedSegments(SegmentMask(("mem",)))
        seg.append(("mem.array.c0", 100, 160))
        seg.append(("req.port", 0, 25))
        seg.append(("resp.port", 500, 575))
        assert list(seg) == [("mem.array.c0", 100, 160)]
        assert seg.suppressed_ps == 25 + 75
        # list semantics used by the overload cancel path keep working
        seg.append(("mem.queue.c0", 160, 170))
        del seg[1:]
        assert list(seg) == [("mem.array.c0", 100, 160)]


# ---------------------------------------------------------------------------
# Attribution sampling: exact counts, unchanged schedule
# ---------------------------------------------------------------------------
class TestAttributionSampling:
    def test_sampled_run_is_schedule_identical_to_obs_off(self):
        _, plain = run_system(small_config(), requests=200)
        _, sampled = run_system(
            small_config().with_obs(attribution=True, attribution_sample=8),
            requests=200,
        )
        assert sampled.runtime_ps == plain.runtime_ps
        assert sampled.events_processed == plain.events_processed
        assert _digest_without_obs(sampled) == _digest_without_obs(plain)

    def test_sampled_population_is_exact_and_counted(self):
        config = small_config().with_obs(attribution=True, attribution_sample=8)
        system, result = run_system(config, requests=200)
        sampled = system.port.attribution_sampled
        assert result.extra["obs.attribution_sample"] == 8.0
        assert result.extra["obs.attribution_sampled"] == float(sampled)
        # Stride sampling over N generated requests keeps the population
        # within one of N/8, and every sampled transaction tiles exactly.
        generated = system.port.generated
        assert abs(sampled - generated / 8) <= 1
        segments = result.collector.segments
        assert segments["req.port"].count == sampled
        assert segments[UNATTRIBUTED].count == sampled
        assert segments[UNATTRIBUTED].stat.total == 0

    def test_sampling_is_reproducible(self):
        config = small_config().with_obs(attribution=True, attribution_sample=4)
        _, first = run_system(config, requests=150)
        _, second = run_system(config, requests=150)
        assert first.extra == second.extra
        assert (
            first.collector.segments["req.port"].count
            == second.collector.segments["req.port"].count
        )

    def test_full_rate_run_has_no_sampling_keys(self):
        _, result = run_system(
            small_config().with_obs(attribution=True), requests=100
        )
        assert "obs.attribution_sample" not in result.extra
        assert result.collector.segments["req.port"].count == result.transactions


# ---------------------------------------------------------------------------
# Label masks: tiling and suppressed accounting
# ---------------------------------------------------------------------------
class TestLabelMasks:
    def test_masked_run_records_only_enabled_labels(self):
        config = small_config().with_obs(
            attribution=True, attribution_labels=("mem",)
        )
        _, result = run_system(config, requests=200)
        labels = set(result.collector.segments)
        assert labels, "mask must not drop everything"
        for label in labels - {UNATTRIBUTED}:
            assert label.startswith("mem."), label
        # suppressed spans are counted, so the residual still means
        # "instrumentation gap" and stays zero on a healthy run
        residual = result.collector.segments[UNATTRIBUTED]
        assert residual.stat.total == 0
        assert residual.stat.max == 0

    def test_masked_histograms_match_full_attribution(self):
        full_cfg = small_config().with_obs(attribution=True)
        masked_cfg = small_config().with_obs(
            attribution=True, attribution_labels=("mem",)
        )
        _, full = run_system(full_cfg, requests=200)
        _, masked = run_system(masked_cfg, requests=200)
        mem_labels = {
            label for label in full.collector.segments if label.startswith("mem.")
        }
        assert set(masked.collector.segments) == mem_labels | {UNATTRIBUTED}
        for label in mem_labels:
            kept = masked.collector.segments[label]
            reference = full.collector.segments[label]
            assert kept.count == reference.count, label
            assert kept.stat.total == reference.stat.total, label
        assert _digest_without_obs(masked) == _digest_without_obs(full)

    def test_mask_composes_with_sampling(self):
        config = small_config().with_obs(
            attribution=True,
            attribution_sample=4,
            attribution_labels=("req", "resp"),
        )
        system, result = run_system(config, requests=200)
        segments = result.collector.segments
        sampled = system.port.attribution_sampled
        assert segments["req.port"].count == sampled
        assert segments[UNATTRIBUTED].stat.total == 0
        for label in segments:
            assert label == UNATTRIBUTED or label.split(".", 1)[0] in (
                "req",
                "resp",
            )


# ---------------------------------------------------------------------------
# Trace sampling: exact aggregates over a sampled ring
# ---------------------------------------------------------------------------
class TestTraceSampling:
    def test_recorder_validates_sample(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=4, sample=0)

    def test_recorder_strides_ring_but_counts_all(self):
        recorder = TraceRecorder(capacity=16, sample=4, sample_phase=1)
        for i in range(10):
            recorder.queue_depth("q", i, i)
        assert recorder.emitted == 10
        assert recorder.stored == 3  # emission indices 1, 5, 9
        assert recorder.sampled_out == 7
        assert recorder.retained == 3
        assert recorder.dropped == 7
        assert [event[0] for event in recorder.events()] == [1, 5, 9]
        # aggregates keep covering every event, sampled out or not
        assert recorder.queue_peak["q"] == 9
        summary = recorder.summary(runtime_ps=100)
        assert summary["trace_sample"] == 4
        assert summary["events_sampled_out"] == 7
        assert summary["events_emitted"] == 10

    def test_recorder_unsampled_semantics_unchanged(self):
        recorder = TraceRecorder(capacity=4)
        for i in range(10):
            recorder.queue_depth("q", i, i)
        assert recorder.emitted == 10
        assert recorder.stored == 10
        assert recorder.sampled_out == 0
        assert recorder.dropped == 6  # ring eviction only
        assert recorder.evicted == 6

    def test_system_trace_sampling_keeps_aggregates_exact(self):
        full_cfg = small_config().with_obs(trace=True)
        sampled_cfg = small_config().with_obs(trace=True, trace_sample=4)
        full_sys, full = run_system(full_cfg, requests=120)
        sampled_sys, sampled = run_system(sampled_cfg, requests=120)
        assert sampled.runtime_ps == full.runtime_ps
        assert _digest_without_obs(sampled) == _digest_without_obs(full)
        # every event is still counted and aggregated ...
        assert sampled_sys.tracer.emitted == full_sys.tracer.emitted
        assert sampled_sys.tracer.link_bits == full_sys.tracer.link_bits
        assert sampled_sys.tracer.link_busy_ps == full_sys.tracer.link_busy_ps
        assert sampled_sys.tracer.queue_peak == full_sys.tracer.queue_peak
        # ... but only ~1/4 of them occupy ring slots
        assert sampled_sys.tracer.stored < full_sys.tracer.stored
        assert (
            abs(sampled_sys.tracer.stored - full_sys.tracer.emitted / 4)
            <= full_sys.tracer.emitted / 8
        )
        phase = sampled_sys.tracer.sample_phase
        assert 0 <= phase < 4

    def test_trace_sampling_phase_is_seeded(self):
        config = small_config(seed=7).with_obs(trace=True, trace_sample=64)
        system_a, _ = run_system(config, requests=30)
        system_b, _ = run_system(config, requests=30)
        assert system_a.tracer.sample_phase == system_b.tracer.sample_phase
