"""Tests for BFS paths and route tables."""

import pytest

from repro.errors import RoutingError
from repro.net.routing import RouteClass, RouteTable, bfs_paths


class TestBfsPaths:
    def test_line_graph(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1]}
        paths = bfs_paths(adjacency, 0)
        assert paths[2] == (0, 1, 2)

    def test_tie_break_prefers_lower_ids(self):
        # two equal-length routes to 3: via 1 or via 2
        adjacency = {0: [1, 2], 1: [0, 3], 2: [0, 3], 3: [1, 2]}
        paths = bfs_paths(adjacency, 0)
        assert paths[3] == (0, 1, 3)

    def test_unreachable_nodes_missing(self):
        adjacency = {0: [1], 1: [0], 2: []}
        paths = bfs_paths(adjacency, 0)
        assert 2 not in paths

    def test_source_path(self):
        assert bfs_paths({0: []}, 0)[0] == (0,)


def ring_adjacency(n):
    """host 0 attached to cube 1; cubes 1..n in a loop."""
    adjacency = {0: [1], 1: [0, 2, n]}
    for cube in range(2, n + 1):
        adjacency.setdefault(cube, [])
        adjacency[cube] = sorted(
            {cube - 1 if cube - 1 >= 1 else n, cube + 1 if cube + 1 <= n else 1}
        )
    adjacency[1] = sorted({0, 2, n})
    return adjacency


class TestRouteTable:
    def make_table(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
        return RouteTable(
            {RouteClass.READ: adjacency, RouteClass.WRITE: adjacency},
            host_id=0,
            cube_ids=[1, 2, 3],
        )

    def test_routes_to_and_from(self):
        table = self.make_table()
        assert table.route_to_cube(3, RouteClass.READ) == (0, 1, 2, 3)
        assert table.route_to_host(3, RouteClass.READ) == (3, 2, 1, 0)

    def test_distances(self):
        table = self.make_table()
        assert table.distance(1) == 1
        assert table.distance(3) == 3
        assert table.max_distance() == 3
        assert table.mean_distance() == pytest.approx(2.0)

    def test_unknown_cube(self):
        table = self.make_table()
        with pytest.raises(RoutingError):
            table.route_to_cube(9, RouteClass.READ)

    def test_unreachable_cube_rejected_at_build(self):
        adjacency = {0: [1], 1: [0], 2: []}
        with pytest.raises(RoutingError):
            RouteTable({RouteClass.READ: adjacency}, 0, [1, 2])

    def test_class_fallback(self):
        adjacency = {0: [1], 1: [0]}
        table = RouteTable({RouteClass.READ: adjacency}, 0, [1])
        # WRITE class not defined: falls back to READ routes
        assert table.route_to_cube(1, RouteClass.WRITE) == (0, 1)

    def test_differentiated_classes(self):
        read_adj = {0: [1, 2], 1: [0, 2], 2: [0, 1]}
        write_adj = {0: [1], 1: [0, 2], 2: [1]}  # no shortcut for writes
        table = RouteTable(
            {RouteClass.READ: read_adj, RouteClass.WRITE: write_adj}, 0, [1, 2]
        )
        assert table.route_to_cube(2, RouteClass.READ) == (0, 2)
        assert table.route_to_cube(2, RouteClass.WRITE) == (0, 1, 2)
