"""Tests for NVM-L / NVM-F placement and the topology factory."""

import pytest

from repro.config import NVM_FIRST, NVM_LAST, SystemConfig
from repro.errors import TopologyError
from repro.topology import (
    assign_technologies,
    build_chain,
    build_ring,
    build_topology,
    build_tree,
)
from repro.topology.placement import position_distances
from repro.units import TIB_BYTES


class TestAssignTechnologies:
    def test_chain_nvm_last(self):
        techs = assign_technologies(build_chain, num_dram=4, num_nvm=2, placement=NVM_LAST)
        assert techs == ["DRAM"] * 4 + ["NVM"] * 2

    def test_chain_nvm_first(self):
        techs = assign_technologies(build_chain, 4, 2, NVM_FIRST)
        assert techs == ["NVM"] * 2 + ["DRAM"] * 4

    def test_ring_nvm_last_is_far_side(self):
        techs = assign_technologies(build_ring, 4, 2, NVM_LAST)
        topo = build_ring(techs)
        d = position_distances(topo)
        nvm_distances = [d[i] for i, t in enumerate(techs) if t == "NVM"]
        dram_distances = [d[i] for i, t in enumerate(techs) if t == "DRAM"]
        assert min(nvm_distances) >= max(dram_distances) - 1

    def test_tree_nvm_last_is_deepest(self):
        techs = assign_technologies(build_tree, 8, 2, NVM_LAST)
        topo = build_tree(techs)
        d = position_distances(topo)
        nvm_depths = [d[i] for i, t in enumerate(techs) if t == "NVM"]
        assert min(nvm_depths) == max(d)

    def test_tree_nvm_first_is_shallowest(self):
        techs = assign_technologies(build_tree, 8, 2, NVM_FIRST)
        assert techs[0] == "NVM"  # the root position

    def test_all_one_tech(self):
        assert assign_technologies(build_chain, 3, 0, NVM_LAST) == ["DRAM"] * 3
        assert assign_technologies(build_chain, 0, 3, NVM_LAST) == ["NVM"] * 3

    def test_bad_placement(self):
        with pytest.raises(TopologyError):
            assign_technologies(build_chain, 2, 2, "weird")

    def test_empty(self):
        with pytest.raises(TopologyError):
            assign_technologies(build_chain, 0, 0, NVM_LAST)


class TestFactory:
    def small(self, **kw):
        return SystemConfig(total_capacity_bytes=TIB_BYTES, **kw)

    @pytest.mark.parametrize(
        "topology", ["chain", "ring", "tree", "skiplist", "metacube"]
    )
    def test_builds_every_topology(self, topology):
        topo = build_topology(self.small(topology=topology))
        assert len(topo.cube_ids()) == 8

    def test_mixed_factory_counts(self):
        topo = build_topology(self.small(topology="tree", dram_fraction=0.5))
        techs = [topo.tech_of(c) for c in topo.cube_ids()]
        assert techs.count("DRAM") == 4
        assert techs.count("NVM") == 1

    def test_all_nvm_factory(self):
        topo = build_topology(self.small(topology="chain", dram_fraction=0.0))
        assert len(topo.cube_ids()) == 2

    def test_metacube_mixed(self):
        config = SystemConfig(topology="metacube", dram_fraction=0.5)
        topo = build_topology(config)
        techs = [topo.tech_of(c) for c in topo.cube_ids()]
        assert techs.count("DRAM") == 8 and techs.count("NVM") == 2
