"""Tests for chain/ring/tree topologies and the base graph."""

import pytest

from repro.errors import TopologyError
from repro.net.routing import RouteClass, bfs_paths
from repro.topology import build_chain, build_ring, build_tree
from repro.topology.base import HOST_ID, NodeKind, Topology
from repro.topology.placement import position_distances
from repro.topology.tree import tree_parent


def distances(topo):
    return position_distances(topo)


class TestBaseGraph:
    def test_duplicate_node_rejected(self):
        topo = Topology("t")
        topo.add_node(0, NodeKind.HOST)
        with pytest.raises(TopologyError):
            topo.add_node(0, NodeKind.CUBE)

    def test_self_loop_rejected(self):
        topo = Topology("t")
        topo.add_node(0, NodeKind.HOST)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 0)

    def test_duplicate_edge_rejected(self):
        topo = Topology("t")
        topo.add_node(0, NodeKind.HOST)
        topo.add_node(1, NodeKind.CUBE, tech="DRAM")
        topo.add_edge(0, 1)
        with pytest.raises(TopologyError):
            topo.add_edge(1, 0)

    def test_edge_needs_existing_nodes(self):
        topo = Topology("t")
        topo.add_node(0, NodeKind.HOST)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 5)

    def test_validate_requires_connectivity(self):
        topo = Topology("t")
        topo.add_node(0, NodeKind.HOST)
        topo.add_node(1, NodeKind.CUBE, tech="DRAM")
        topo.add_node(2, NodeKind.CUBE, tech="DRAM")
        topo.add_edge(0, 1)
        with pytest.raises(TopologyError, match="unreachable"):
            topo.validate()

    def test_validate_enforces_port_budget(self):
        topo = Topology("t")
        topo.add_node(0, NodeKind.HOST)
        center = 1
        topo.add_node(center, NodeKind.CUBE, tech="DRAM")
        topo.add_edge(0, center)
        for leaf in range(2, 7):
            topo.add_node(leaf, NodeKind.CUBE, tech="DRAM")
            topo.add_edge(center, leaf)
        with pytest.raises(TopologyError, match="ports"):
            topo.validate(max_cube_ports=4)


class TestChain:
    def test_structure(self):
        topo = build_chain(["DRAM"] * 4)
        assert topo.cube_ids() == [1, 2, 3, 4]
        assert len(topo.edges) == 4
        topo.validate()

    def test_distances_linear(self):
        topo = build_chain(["DRAM"] * 6)
        assert distances(topo) == [1, 2, 3, 4, 5, 6]

    def test_single_cube(self):
        topo = build_chain(["DRAM"])
        topo.validate()
        assert distances(topo) == [1]

    def test_tech_assignment(self):
        topo = build_chain(["DRAM", "NVM", "DRAM"])
        assert topo.tech_of(2) == "NVM"

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            build_chain([])


class TestRing:
    def test_structure(self):
        topo = build_ring(["DRAM"] * 6)
        topo.validate()
        # chain edges + host link + closing edge
        assert len(topo.edges) == 7

    def test_distances_wrap(self):
        topo = build_ring(["DRAM"] * 6)
        assert distances(topo) == [1, 2, 3, 4, 3, 2]

    def test_host_has_single_link(self):
        topo = build_ring(["DRAM"] * 8)
        assert topo.degree(HOST_ID) == 1

    def test_small_rings(self):
        for n in (1, 2, 3):
            topo = build_ring(["DRAM"] * n)
            topo.validate()

    def test_mean_distance_roughly_half_of_chain(self):
        n = 16
        chain_mean = sum(distances(build_chain(["DRAM"] * n))) / n
        ring_mean = sum(distances(build_ring(["DRAM"] * n))) / n
        assert ring_mean < 0.65 * chain_mean


class TestTree:
    def test_parent_function(self):
        assert tree_parent(1) == 0
        assert tree_parent(3) == 0
        assert tree_parent(4) == 1
        assert tree_parent(12) == 3
        with pytest.raises(ValueError):
            tree_parent(0)

    def test_structure_16(self):
        topo = build_tree(["DRAM"] * 16)
        topo.validate()
        d = distances(topo)
        assert d[0] == 1
        assert max(d) == 4  # logarithmic depth
        assert d.count(2) == 3
        assert d.count(3) == 9

    def test_port_budget_respected(self):
        for n in (1, 2, 5, 10, 16, 32):
            topo = build_tree(["DRAM"] * n)
            topo.validate(max_cube_ports=4)

    def test_mean_distance_beats_ring(self):
        n = 16
        tree_mean = sum(distances(build_tree(["DRAM"] * n))) / n
        ring_mean = sum(distances(build_ring(["DRAM"] * n))) / n
        assert tree_mean < ring_mean

    def test_custom_arity(self):
        topo = build_tree(["DRAM"] * 7, arity=2)
        d = distances(topo)
        assert d == [1, 2, 2, 3, 3, 3, 3]

    def test_bad_arity(self):
        with pytest.raises(ValueError):
            build_tree(["DRAM"] * 3, arity=0)
