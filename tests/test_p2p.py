"""End-to-end tests for the peer-to-peer copy traffic class.

A ``p2p_fraction`` of the workload becomes cube-to-cube DMA copies
(NOM-style): a small ``P2P_REQ`` to the source cube, a data-bearing
``P2P_XFER`` relayed cube-to-cube, and a small ``P2P_ACK`` back to the
host.  These tests pin down the relay protocol, destination patterns,
engine equivalence, attribution tiling, RAS interaction, and the
auditor's p2p invariants.
"""

import pytest

from repro.config import P2P_PROMOTE, VALID_P2P_PATTERNS
from repro.errors import ConfigError, WorkloadError
from repro.net.packet import Packet, PacketKind
from repro.obs import UNATTRIBUTED, phase_of, three_way_ns
from repro.serialization import result_digest, result_from_state, result_to_state
from repro.sim.engine import Engine

from conftest import fast_workload, run_system, small_config


def p2p_workload(fraction=0.2, **overrides):
    return fast_workload(p2p_fraction=fraction, **overrides)


def p2p_config(**overrides):
    defaults = dict(topology="chain", dram_fraction=0.5, p2p_pattern=P2P_PROMOTE)
    defaults.update(overrides)
    return small_config(**defaults)


# ---------------------------------------------------------------------------
# Knob validation and digest plumbing
# ---------------------------------------------------------------------------
class TestKnobs:
    @pytest.mark.parametrize("fraction", [-0.1, 1.5])
    def test_fraction_out_of_range_rejected(self, fraction):
        with pytest.raises(WorkloadError):
            p2p_workload(fraction).validate()

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigError):
            small_config(p2p_pattern="broadcast").validate()

    @pytest.mark.parametrize("pattern", VALID_P2P_PATTERNS)
    def test_valid_patterns_accepted(self, pattern):
        small_config(p2p_pattern=pattern).validate()

    def test_p2p_knobs_change_job_digest(self):
        from repro.runner import SimJob

        plain = SimJob(config=small_config(), workload=fast_workload(), requests=5)
        fractioned = SimJob(
            config=small_config(), workload=p2p_workload(), requests=5
        )
        patterned = SimJob(
            config=small_config(p2p_pattern=P2P_PROMOTE),
            workload=fast_workload(),
            requests=5,
        )
        assert len({plain.digest(), fractioned.digest(), patterned.digest()}) == 3

    def test_zero_fraction_is_the_baseline(self):
        """p2p_fraction=0 must not perturb the RNG draw sequence."""
        _, base = run_system(small_config(), fast_workload(), requests=150)
        _, zero = run_system(small_config(), p2p_workload(0.0), requests=150)
        assert result_digest(base) == result_digest(zero)


# ---------------------------------------------------------------------------
# The relay protocol
# ---------------------------------------------------------------------------
class TestRelay:
    def test_kind_relay_chain(self):
        assert PacketKind.P2P_REQ.response_kind() is PacketKind.P2P_XFER
        assert PacketKind.P2P_XFER.response_kind() is PacketKind.P2P_ACK

    def test_copies_complete_and_conserve(self):
        _, result = run_system(p2p_config(), p2p_workload(), requests=300)
        generated = result.extra["p2p.generated"]
        assert generated > 0
        assert result.extra["p2p.completed"] + result.extra["p2p.failed"] == generated
        assert result.extra["p2p.failed"] == 0
        assert result.collector.p2p > 0
        assert result.collector.count == (
            result.collector.reads + result.collector.writes + result.collector.p2p
        )

    def test_transfers_take_hops(self):
        _, result = run_system(p2p_config(), p2p_workload(), requests=300)
        assert result.collector.xfer_hops.count == result.collector.p2p
        assert result.collector.xfer_hops.mean >= 1.0

    def test_audited_p2p_run_passes(self):
        _, result = run_system(
            p2p_config(), p2p_workload(), requests=300, audit=True
        )
        assert result.extra["p2p.completed"] > 0

    @pytest.mark.parametrize("topology", ["chain", "ring", "skiplist", "metacube"])
    def test_every_topology_carries_copies(self, topology):
        _, result = run_system(
            p2p_config(topology=topology), p2p_workload(), requests=200, audit=True
        )
        assert result.extra["p2p.completed"] > 0
        assert result.extra["p2p.failed"] == 0

    def test_patterns_pick_different_destinations(self):
        digests = {
            pattern: result_digest(
                run_system(
                    p2p_config(topology="ring", p2p_pattern=pattern),
                    p2p_workload(),
                    requests=200,
                )[1]
            )
            for pattern in VALID_P2P_PATTERNS
        }
        # On a mixed-tier ring all three patterns reach distinct cubes.
        assert len(set(digests.values())) == len(VALID_P2P_PATTERNS)

    def test_promote_falls_back_to_neighbor_when_single_tech(self):
        # With one technology there is no opposite tier to promote to.
        neighbor = run_system(
            small_config(p2p_pattern="neighbor"), p2p_workload(), requests=200
        )[1]
        promote = run_system(
            small_config(p2p_pattern=P2P_PROMOTE), p2p_workload(), requests=200
        )[1]
        assert result_digest(neighbor) == result_digest(promote)


# ---------------------------------------------------------------------------
# Engine equivalence
# ---------------------------------------------------------------------------
class TestEngineEquivalence:
    def test_three_engines_agree_on_p2p(self):
        config = p2p_config().with_obs(attribution=True)
        digests = set()
        for scheduler in ("heap", "wheel", "batch"):
            _, result = run_system(
                config,
                p2p_workload(),
                requests=250,
                engine=Engine(scheduler),
                audit=True,
            )
            digests.add(result_digest(result))
        assert len(digests) == 1


# ---------------------------------------------------------------------------
# Attribution
# ---------------------------------------------------------------------------
class TestP2pAttribution:
    def _observed(self, requests=300):
        _, result = run_system(
            p2p_config().with_obs(attribution=True), p2p_workload(), requests=requests
        )
        return result

    def test_xfer_segments_present_and_mem_phase(self):
        result = self._observed()
        xfer_labels = [
            label for label in result.collector.segments if ".xfer." in label
        ]
        assert xfer_labels
        assert all(label.startswith("mem.xfer.") for label in xfer_labels)
        assert all(phase_of(label) == "mem" for label in xfer_labels)

    def test_segments_tile_exactly(self):
        result = self._observed()
        residual = result.collector.segments[UNATTRIBUTED]
        assert residual.stat.total == 0
        assert residual.stat.max == 0

    def test_three_way_split_matches_timestamps(self):
        result = self._observed()
        breakdown = result.collector.all
        split = three_way_ns(result.collector.segments, result.transactions)
        assert split["to_memory"] == pytest.approx(breakdown.to_memory_ns, abs=1e-6)
        assert split["in_memory"] == pytest.approx(breakdown.in_memory_ns, abs=1e-6)
        assert split["from_memory"] == pytest.approx(
            breakdown.from_memory_ns, abs=1e-6
        )

    def test_round_trip_preserves_p2p_aggregates(self):
        result = self._observed(requests=200)
        clone = result_from_state(result_to_state(result))
        assert result_digest(clone) == result_digest(result)
        assert clone.collector.p2p == result.collector.p2p
        assert clone.collector.xfer_hops.mean == result.collector.xfer_hops.mean


# ---------------------------------------------------------------------------
# RAS interaction
# ---------------------------------------------------------------------------
class TestP2pRas:
    def test_crc_replays_do_not_lose_copies(self):
        _, result = run_system(
            p2p_config(topology="ring").with_ras(bit_error_rate=1e-6),
            p2p_workload(),
            requests=250,
            audit=True,
        )
        assert result.extra["p2p.completed"] == result.extra["p2p.generated"]
        assert result.extra["p2p.failed"] == 0

    def test_ring_reroutes_copies_around_link_failure(self):
        _, result = run_system(
            p2p_config(topology="ring").with_ras(
                link_failures=((2, 3, 400_000),)
            ),
            p2p_workload(),
            requests=250,
            audit=True,
        )
        assert result.availability == 1.0
        assert result.extra["p2p.failed"] == 0

    def test_chain_cut_fails_copies_cleanly(self):
        # The 50% chain has 5 cubes (nodes 1..5); cut mid-spine.
        _, result = run_system(
            p2p_config().with_ras(link_failures=((3, 4, 300_000),)),
            p2p_workload(),
            requests=250,
            audit=True,
        )
        assert result.extra["p2p.failed"] > 0
        assert result.extra["p2p.completed"] + result.extra["p2p.failed"] == (
            result.extra["p2p.generated"]
        )


# ---------------------------------------------------------------------------
# The p2p audit invariants
# ---------------------------------------------------------------------------
class TestP2pInvariants:
    def test_leaked_transfer_to_host_caught(self):
        system, _ = run_system(p2p_config(), p2p_workload(), requests=60, audit=True)
        host_id = system.route_table.host_id
        link, _kind = system._links[0]
        stray = Packet(
            kind=PacketKind.P2P_XFER,
            address=0x40,
            src=1,
            dest=host_id,
            size_bits=512,
            create_ps=0,
        )
        stray.route = [1, host_id]
        link.dst_queue.push(stray, system.engine.now)
        names = {v[0] for v in system.auditor.collect("final")}
        assert "p2p.leak" in names

    def test_dropped_copy_counter_caught(self):
        system, _ = run_system(p2p_config(), p2p_workload(), requests=60, audit=True)
        assert system.port.generated_p2p > 0
        system.port.completed_p2p -= 1
        names = {v[0] for v in system.auditor.collect("final")}
        assert "p2p.conservation" in names
