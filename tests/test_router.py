"""Tests for the router: arbitration loop, priorities, local delivery."""

import pytest

from repro.arbitration import ArbiterContext, RoundRobinArbiter
from repro.config import LinkConfig
from repro.errors import SimulationError
from repro.net.buffers import InputQueue
from repro.net.link import Link
from repro.net.packet import Packet, PacketKind
from repro.net.router import LOCAL, LinkOutput, LocalOutput, Router
from repro.sim.engine import Engine


def rr_factory():
    return RoundRobinArbiter(ArbiterContext())


def make_packet(kind, route, size_bits=128):
    packet = Packet(kind, 0x0, route[0], route[-1], size_bits, 0)
    packet.route = list(route)
    return packet


def make_router(name="r", node_id=0):
    return Router(node_id, name, rr_factory)


class TestLocalDelivery:
    def test_packet_at_destination_goes_local(self):
        engine = Engine()
        router = make_router()
        delivered = []
        router.add_output(
            LOCAL,
            LocalOutput(lambda p: True, lambda eng, p, i: delivered.append(p)),
        )
        queue = InputQueue("in", 4)
        router.add_input(queue)
        packet = make_packet(PacketKind.READ_REQ, [0])
        queue.push(packet)
        router.packet_arrived(engine, queue)
        assert delivered == [packet]

    def test_local_backpressure_holds_packet(self):
        engine = Engine()
        router = make_router()
        space = [False]
        delivered = []
        router.add_output(
            LOCAL,
            LocalOutput(lambda p: space[0], lambda eng, p, i: delivered.append(p)),
        )
        queue = InputQueue("in", 4)
        router.add_input(queue)
        queue.push(make_packet(PacketKind.READ_REQ, [0]))
        router.packet_arrived(engine, queue)
        assert delivered == []
        space[0] = True
        router.kick(engine)
        assert len(delivered) == 1


class TestForwarding:
    def wire(self, capacity=4):
        engine = Engine()
        router = make_router()
        downstream = InputQueue("down", capacity)
        link = Link("L", LinkConfig(input_buffer_packets=capacity), downstream)
        router.add_output(1, LinkOutput(link))
        link.on_idle = lambda eng: router.output_ready(eng, 1)
        queue = InputQueue("in", 8)
        router.add_input(queue)
        return engine, router, queue, link, downstream

    def test_forwards_packet_over_link(self):
        engine, router, queue, link, downstream = self.wire()
        queue.push(make_packet(PacketKind.READ_REQ, [0, 1]))
        router.packet_arrived(engine, queue)
        engine.run()
        assert len(downstream) == 1

    def test_serializes_back_to_back_packets(self):
        engine, router, queue, link, downstream = self.wire()
        for _ in range(3):
            queue.push(make_packet(PacketKind.READ_REQ, [0, 1], size_bits=640))
            router.packet_arrived(engine, queue)  # once per push, like Link
        engine.run()
        assert len(downstream) == 3
        # three serializations of 2667 ps each, plus final serdes 2 ns
        assert engine.now == 3 * 2667 + 2000

    def test_blocks_when_downstream_full_and_resumes_on_credit(self):
        engine, router, queue, link, downstream = self.wire(capacity=1)
        queue.push(make_packet(PacketKind.READ_REQ, [0, 1]))
        router.packet_arrived(engine, queue)
        queue.push(make_packet(PacketKind.READ_REQ, [0, 1]))
        router.packet_arrived(engine, queue)
        engine.run()
        assert len(downstream) == 1
        assert len(queue) == 1  # second packet blocked on credit
        downstream.pop()
        link.return_credit(engine)
        engine.run()
        assert len(downstream) == 1  # second packet arrived

    def test_unknown_output_raises(self):
        engine, router, queue, link, _ = self.wire()
        queue.push(make_packet(PacketKind.READ_REQ, [0, 9]))
        with pytest.raises(SimulationError):
            router.packet_arrived(engine, queue)


class TestResponsePriority:
    def test_response_wins_over_request(self):
        engine = Engine()
        router = make_router()
        downstream = InputQueue("down", 8)
        link = Link("L", LinkConfig(input_buffer_packets=8), downstream)
        router.add_output(1, LinkOutput(link))
        request_q = InputQueue("req", 4)
        response_q = InputQueue("resp", 4)
        router.add_input(request_q)
        router.add_input(response_q)
        request_q.push(make_packet(PacketKind.READ_REQ, [0, 1]))
        response_q.push(make_packet(PacketKind.READ_RESP, [0, 1]))
        router.kick(engine)
        engine.run()
        assert downstream.pop().kind == PacketKind.READ_RESP

    def test_priority_can_be_disabled(self):
        engine = Engine()
        router = Router(0, "r", rr_factory, response_priority=False)
        downstream = InputQueue("down", 8)
        link = Link("L", LinkConfig(input_buffer_packets=8), downstream)
        router.add_output(1, LinkOutput(link))
        request_q = InputQueue("req", 4)
        response_q = InputQueue("resp", 4)
        router.add_input(request_q)
        router.add_input(response_q)
        request_q.push(make_packet(PacketKind.READ_REQ, [0, 1]))
        response_q.push(make_packet(PacketKind.READ_RESP, [0, 1]))
        router.kick(engine)
        engine.run()
        # round-robin from pointer 0 picks the request queue first
        assert downstream.pop().kind == PacketKind.READ_REQ


class TestResponsePeek:
    def test_has_response_head(self):
        router = make_router()
        queue = InputQueue("in", 4)
        router.add_input(queue)
        assert not router.has_response_head(1)
        queue.push(make_packet(PacketKind.READ_RESP, [0, 1]))
        assert router.has_response_head(1)
        assert not router.has_response_head(2)


class TestConstruction:
    def test_duplicate_output_rejected(self):
        router = make_router()
        router.add_output(1, LocalOutput(lambda p: True, lambda e, p, i: None))
        with pytest.raises(SimulationError):
            router.add_output(1, LocalOutput(lambda p: True, lambda e, p, i: None))

    def test_input_indices_stable(self):
        router = make_router()
        assert router.add_input(InputQueue("a", 1)) == 0
        assert router.add_input(InputQueue("b", 1)) == 1
