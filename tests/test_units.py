"""Tests for unit conversions."""

import pytest

from repro import units


def test_ns_conversion():
    assert units.ns(1) == 1_000
    assert units.ns(2.5) == 2_500
    assert units.ns(0) == 0


def test_us_conversion():
    assert units.us(1) == 1_000_000


def test_to_ns_roundtrip():
    assert units.to_ns(units.ns(3.25)) == pytest.approx(3.25)


def test_time_constants_consistent():
    assert units.NS == 1000 * units.PS
    assert units.US == 1000 * units.NS
    assert units.MS == 1000 * units.US


def test_capacity_helpers():
    assert units.gib(1) == 2**30
    assert units.tib(1) == 2**40
    assert units.gib(16) * 64 == units.tib(1)


def test_gbps_to_bits_per_ps():
    # 1000 Gbps = 1 bit per ps
    assert units.gbps_to_bits_per_ps(1000) == pytest.approx(1.0)


def test_serialization_time_16_lanes_15gbps():
    # 16 lanes x 15 Gbps = 240 Gbps = 0.24 bits/ps; an 80 B packet
    # (640 bits) takes ceil(640 / 0.24) = 2667 ps.
    assert units.serialization_ps(640, 16, 15.0) == 2667


def test_serialization_rounds_up():
    # 1 bit over 0.24 bits/ps -> 4.1666 -> 5 ps
    assert units.serialization_ps(1, 16, 15.0) == 5


def test_serialization_exact_division_not_rounded():
    # 24 bits at 0.24 bits/ps = exactly 100 ps
    assert units.serialization_ps(24, 16, 15.0) == 100


def test_serialization_scales_linearly_with_size():
    small = units.serialization_ps(128, 16, 15.0)
    large = units.serialization_ps(640, 16, 15.0)
    assert 4.9 < large / small < 5.1


def test_data_sizes():
    assert units.BYTE == 8
    assert units.KB == 1024 * units.BYTE
