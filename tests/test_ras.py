"""RAS tests: fault-plan validation, retry determinism, graceful
degradation under scheduled failures, and runner hardening."""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings

import pytest

from repro.errors import ConfigError, RunnerError
from repro.ras import FaultPlan
from repro.runner import JobFailure, ParallelRunner, SimJob
from repro.runner.cache import ResultCache
from repro.runner.pool import default_jobs, execute_job as _real_execute_job
from repro.serialization import result_digest
from repro.sweep import Sweep
from repro.system import MemoryNetworkSystem
from repro.units import GIB_BYTES

from conftest import fast_workload, run_sim, run_system, small_config


# ---------------------------------------------------------------------------
# Fault-plan and config validation
# ---------------------------------------------------------------------------
class TestFaultPlanValidation:
    def test_default_plan_is_off(self):
        plan = FaultPlan()
        assert not plan.enabled
        assert not plan.has_permanent_failures
        plan.validate()

    @pytest.mark.parametrize("ber", [-0.1, 1.0, 2.0])
    def test_bad_bit_error_rate(self, ber):
        with pytest.raises(ConfigError, match="bit_error_rate"):
            FaultPlan(bit_error_rate=ber).validate()

    def test_negative_retry_penalty(self):
        with pytest.raises(ConfigError, match="retry_penalty"):
            FaultPlan(retry_penalty_ps=-1).validate()

    def test_zero_max_replays(self):
        with pytest.raises(ConfigError, match="max_replays"):
            FaultPlan(max_replays=0).validate()

    def test_link_rate_self_loop(self):
        with pytest.raises(ConfigError, match="self-loop"):
            FaultPlan(link_error_rates=((2, 2, 1e-6),)).validate()

    def test_link_rate_duplicate_undirected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            FaultPlan(
                link_error_rates=((1, 2, 1e-6), (2, 1, 1e-7))
            ).validate()

    def test_link_failure_bad_time(self):
        with pytest.raises(ConfigError, match="time"):
            FaultPlan(link_failures=((1, 2, -5),)).validate()
        with pytest.raises(ConfigError, match="time"):
            FaultPlan(link_failures=((1, 2, 1.5),)).validate()

    def test_duplicate_link_failure(self):
        with pytest.raises(ConfigError, match="duplicate"):
            FaultPlan(link_failures=((1, 2, 10), (2, 1, 20))).validate()

    def test_cube_failure_bad_id(self):
        with pytest.raises(ConfigError, match="cube"):
            FaultPlan(cube_failures=((0, 10),)).validate()

    def test_config_rejects_out_of_range_failure(self):
        with pytest.raises(ConfigError, match="out of range"):
            small_config().with_ras(link_failures=((1, 99, 100),)).validate()
        with pytest.raises(ConfigError, match="cubes"):
            small_config().with_ras(cube_failures=((99, 100),)).validate()

    def test_failed_links_self_loop(self):
        with pytest.raises(ConfigError, match="self-loop"):
            small_config(failed_links=((3, 3),)).validate()

    def test_failed_links_duplicate(self):
        with pytest.raises(ConfigError, match="duplicate"):
            small_config(
                topology="ring", failed_links=((2, 3), (3, 2))
            ).validate()

    def test_failed_links_out_of_range(self):
        with pytest.raises(ConfigError, match="out of range"):
            small_config(failed_links=((1, 42),)).validate()

    def test_failed_links_non_int(self):
        with pytest.raises(ConfigError, match="node"):
            small_config(failed_links=(("1", 2),)).validate()


# ---------------------------------------------------------------------------
# Transient errors: retry determinism and accounting
# ---------------------------------------------------------------------------
class TestTransientErrors:
    def test_replays_reconcile_with_crc_errors(self):
        config = small_config(topology="ring").with_ras(bit_error_rate=1e-5)
        result = run_sim(config, fast_workload(), 200)
        assert result.extra["ras.crc_errors"] > 0
        assert result.extra["ras.replays"] == result.extra["ras.crc_errors"]
        assert result.availability == 1.0

    def test_retry_costs_runtime(self):
        workload = fast_workload()
        healthy = run_sim(small_config(topology="ring"), workload, 200)
        noisy = run_sim(
            small_config(topology="ring").with_ras(bit_error_rate=1e-5),
            workload,
            200,
        )
        assert noisy.runtime_ps > healthy.runtime_ps

    def test_same_seed_same_digest(self):
        config = small_config(topology="ring").with_ras(bit_error_rate=1e-6)
        workload = fast_workload()
        first = run_sim(config, workload, 150)
        second = run_sim(config, workload, 150)
        assert result_digest(first) == result_digest(second)
        healthy = run_sim(small_config(topology="ring"), workload, 150)
        assert result_digest(first) != result_digest(healthy)

    def test_serial_and_parallel_bit_identical(self):
        workload = fast_workload()
        jobs = [
            SimJob(
                config=small_config(
                    topology="ring", seed=seed
                ).with_ras(bit_error_rate=1e-6),
                workload=workload,
                requests=120,
            )
            for seed in (1, 2)
        ]
        serial = ParallelRunner(jobs=1, cache=ResultCache()).run(jobs)
        parallel = ParallelRunner(jobs=2, cache=ResultCache()).run(jobs)
        for left, right in zip(serial, parallel):
            assert result_digest(left) == result_digest(right)

    def test_ras_off_is_bit_identical(self):
        # An explicit all-zero plan must not perturb the simulation.
        workload = fast_workload()
        plain = run_sim(small_config(), workload, 150)
        zeroed = run_sim(small_config().with_ras(bit_error_rate=0.0), workload, 150)
        assert result_digest(plain) == result_digest(zeroed)
        assert plain.requests_failed == 0
        assert plain.availability == 1.0


# ---------------------------------------------------------------------------
# Scheduled permanent failures: reroute or degrade, never crash
# ---------------------------------------------------------------------------
class TestPermanentFailures:
    REQUESTS = 250

    def _mid_run_failure(self, config, edge, workload):
        healthy = run_sim(config, workload, self.REQUESTS)
        when = max(healthy.runtime_ps // 2, 1)
        return healthy, config.with_ras(link_failures=((edge[0], edge[1], when),))

    def test_ring_reroutes_at_full_availability(self):
        workload = fast_workload()
        config = small_config(topology="ring")
        healthy_distance = MemoryNetworkSystem(
            config, workload, requests=1
        ).route_table.mean_distance()
        _, broken_config = self._mid_run_failure(config, (1, 2), workload)
        system, result = run_system(
            broken_config, workload, requests=self.REQUESTS
        )
        assert result.requests_failed == 0
        assert result.availability == 1.0
        assert result.collector.count == self.REQUESTS
        assert result.extra["ras.link_failures"] == 1
        # The live reroute left the system on longer (but live) routes.
        assert system.route_table.mean_distance() > healthy_distance

    def test_chain_degrades_to_counted_errors(self):
        workload = fast_workload()
        config = small_config(topology="chain")
        _, broken_config = self._mid_run_failure(config, (2, 3), workload)
        result = run_sim(broken_config, workload, self.REQUESTS)
        assert result.requests_failed > 0
        assert 0.0 < result.availability < 1.0
        assert (
            result.requests_served + result.requests_failed == self.REQUESTS
        )

    def test_skiplist_chain_cut_fails_write_class(self):
        workload = fast_workload()
        config = small_config(
            topology="skiplist", total_capacity_bytes=2048 * GIB_BYTES
        )
        _, broken_config = self._mid_run_failure(config, (2, 3), workload)
        result = run_sim(broken_config, workload, self.REQUESTS)
        # Reads reroute over skip links; writes past the cut are pinned
        # to the central chain and fail.
        assert result.requests_failed > 0
        assert 0.0 < result.availability < 1.0

    def test_cube_failure_kills_incident_links(self):
        workload = fast_workload()
        config = small_config(topology="ring")
        healthy = run_sim(config, workload, self.REQUESTS)
        when = max(healthy.runtime_ps // 2, 1)
        result = run_sim(
            config.with_ras(cube_failures=((3, when),)),
            workload,
            self.REQUESTS,
        )
        assert result.extra["ras.link_failures"] == 2  # both ring edges of cube 3
        assert result.requests_failed > 0  # the dead cube's own requests
        assert 0.0 < result.availability < 1.0

    def test_failure_results_are_deterministic(self):
        workload = fast_workload()
        config = small_config(topology="chain").with_ras(
            link_failures=((2, 3, 500_000),)
        )
        first = run_sim(config, workload, self.REQUESTS)
        second = run_sim(config, workload, self.REQUESTS)
        assert result_digest(first) == result_digest(second)

    def test_availability_survives_state_roundtrip(self):
        from repro.serialization import result_from_state, result_to_state

        workload = fast_workload()
        config = small_config(topology="chain").with_ras(
            link_failures=((2, 3, 500_000),)
        )
        result = run_sim(config, workload, self.REQUESTS)
        restored = result_from_state(result_to_state(result))
        assert restored.requests_failed == result.requests_failed
        assert restored.availability == pytest.approx(result.availability)


# ---------------------------------------------------------------------------
# Runner hardening
# ---------------------------------------------------------------------------
def _good_job(seed=1, requests=60):
    return SimJob(
        config=small_config(topology="ring", seed=seed),
        workload=fast_workload(),
        requests=requests,
    )


def _bad_job(requests=60):
    # Valid config (endpoints in range) whose topology build raises in
    # the worker: a chain cannot tolerate a removed edge.
    return SimJob(
        config=small_config(topology="chain", failed_links=((2, 3),)),
        workload=fast_workload(),
        requests=requests,
    )


def _crashing_execute(job):  # pragma: no cover - runs in a worker
    os._exit(17)


#: Seed marking the job that hangs its worker (see ``_hanging_execute``).
_HANG_SEED = 777


def _hanging_execute(job):  # pragma: no cover - runs in a worker
    if job.config.seed == _HANG_SEED:
        time.sleep(60)
    return _real_execute_job(job)


class TestRunnerHardening:
    def test_collect_returns_structured_failures(self):
        runner = ParallelRunner(jobs=1, cache=ResultCache())
        out = runner.run([_good_job(), _bad_job()], on_error="collect")
        assert result_digest(out[0])  # a real SimResult
        failure = out[1]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "exception"
        assert "TopologyError" in failure.error
        assert failure.digest == _bad_job().digest()

    def test_raise_mode_carries_digest_and_label(self):
        runner = ParallelRunner(jobs=1, cache=ResultCache())
        bad = _bad_job()
        with pytest.raises(RunnerError) as excinfo:
            runner.run([_good_job(), bad])
        assert bad.digest()[:12] in str(excinfo.value)
        assert bad.label() in str(excinfo.value)
        # The batch still executed: the good job was checkpointed.
        assert runner.cache.get(_good_job().digest()) is not None

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1).run([], on_error="ignore")

    def test_checkpoint_resume_reruns_only_failures(self):
        cache = ResultCache()
        batch = [_good_job(seed=1), _bad_job(), _good_job(seed=2)]
        first = ParallelRunner(jobs=1, cache=cache)
        first.run(batch, on_error="collect")
        assert first.simulations_run == 2
        resumed = ParallelRunner(jobs=1, cache=cache)
        out = resumed.run(batch, on_error="collect")
        # The successes came back from the cache (no new simulations);
        # only the failure — never cached — was attempted again.
        assert resumed.simulations_run == 0
        assert isinstance(out[1], JobFailure)
        assert result_digest(out[0]) and result_digest(out[2])

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="hang injection needs fork inheritance",
    )
    def test_watchdog_kill_then_resume_matches_uninterrupted(self, monkeypatch):
        """A sweep killed mid-flight resumes from its checkpoints.

        The watchdog tears down a sweep whose third job hangs; the two
        completed jobs are already checkpointed.  Rerunning the same
        batch against the same cache executes *only* the killed job, and
        the final results are bit-identical to an uninterrupted run.
        """
        import repro.runner.pool as pool_module

        batch = [
            _good_job(seed=1),
            _good_job(seed=2),
            _good_job(seed=_HANG_SEED),
        ]
        cache = ResultCache()
        killed = ParallelRunner(jobs=2, cache=cache, job_timeout_s=1.5)
        with monkeypatch.context() as patched:
            patched.setattr(pool_module, "execute_job", _hanging_execute)
            out = killed.run(batch, on_error="collect")
        assert killed.simulations_run == 2
        failure = out[2]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "timeout"
        # The failure reports how much of the batch a rerun will skip.
        assert failure.checkpointed == 2
        assert "2 job(s) from the batch are checkpointed" in str(failure.to_error())

        resumed = ParallelRunner(jobs=1, cache=cache)
        resumed_out = resumed.run(batch)
        assert resumed.simulations_run == 1  # only the killed job re-ran

        uninterrupted = ParallelRunner(jobs=1, cache=ResultCache()).run(batch)
        assert [result_digest(r) for r in resumed_out] == [
            result_digest(r) for r in uninterrupted
        ]

    def test_watchdog_times_out_hung_jobs(self):
        runner = ParallelRunner(
            jobs=2, cache=ResultCache(), job_timeout_s=0.001
        )
        out = runner.run(
            [_good_job(seed=1, requests=2000), _good_job(seed=2, requests=2000)],
            on_error="collect",
        )
        kinds = {f.kind for f in out if isinstance(f, JobFailure)}
        assert kinds == {"timeout"}

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker-crash injection needs fork inheritance",
    )
    def test_broken_pool_retries_then_fails_structured(self, monkeypatch):
        import repro.runner.pool as pool_module

        monkeypatch.setattr(pool_module, "execute_job", _crashing_execute)
        runner = ParallelRunner(jobs=2, cache=ResultCache())
        out = runner.run(
            [_good_job(seed=1), _good_job(seed=2)], on_error="collect"
        )
        for failure in out:
            assert isinstance(failure, JobFailure)
            assert failure.kind == "pool"
            assert failure.attempts == 2  # one retry after the respawn

    def test_bad_jobs_env_warns_once(self, monkeypatch):
        import repro.runner.pool as pool_module

        monkeypatch.setenv("REPRO_JOBS", "many")
        monkeypatch.setattr(pool_module, "_warned_bad_jobs_env", False)
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
            assert default_jobs() == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_jobs() == 1  # silent the second time

    def test_sweep_records_sim_failure_as_error_row(self):
        rows = (
            Sweep(
                fast_workload(),
                requests=50,
                base_config=small_config(failed_links=((2, 3),)),
            )
            .over("topology", ["chain", "ring"])
            .run()
        )
        by_topology = {row["topology"]: row for row in rows}
        assert by_topology["chain"]["error"].startswith("exception:")
        assert by_topology["ring"]["runtime_us"] > 0
