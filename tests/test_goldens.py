"""Replay the golden regression corpus at tier-1 scale.

Every matrix case re-simulates (with invariant audits on) and must
reproduce its checked-in digest bit for bit.  The experiment corpus is
spot-checked here — the full sweep runs in CI and via
``tools/regen_goldens.py --check`` — but its *coverage* is enforced:
registering a new experiment without regenerating the corpus fails.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check.goldens import (
    compute_experiments,
    diff_goldens,
    fleet_cases,
    matrix_cases,
    run_fleet_case,
    run_matrix_case,
)
from repro.experiments.registry import experiment_ids

GOLDENS = Path(__file__).parent / "goldens"

_CASES = matrix_cases()
_FLEET_CASES = fleet_cases()

#: Cheap, structurally diverse spot-checks of the experiment corpus.
SPOT_EXPERIMENTS = ["fig04", "fig10", "analysis_parking_lot"]


def _load(name: str) -> dict:
    return json.loads((GOLDENS / f"{name}.json").read_text())


class TestMatrixGoldens:
    @pytest.mark.parametrize(
        "name,config,workload", _CASES, ids=[name for name, _, _ in _CASES]
    )
    def test_case_reproduces_golden(self, name, config, workload):
        recorded = _load("matrix")
        assert name in recorded, (
            f"matrix case {name!r} has no golden; run "
            "`python tools/regen_goldens.py --only matrix`"
        )
        entry = run_matrix_case(config, audit=True, workload=workload)
        report = diff_goldens({name: recorded[name]}, {name: entry})
        assert not report, "\n".join(report)

    def test_no_orphan_goldens(self):
        live = {name for name, _, _ in _CASES}
        live |= {name for name, _ in _FLEET_CASES}
        assert set(_load("matrix")) == live


class TestFleetGoldens:
    @pytest.mark.parametrize(
        "name,fleet", _FLEET_CASES, ids=[name for name, _ in _FLEET_CASES]
    )
    def test_fleet_case_reproduces_golden(self, name, fleet):
        recorded = _load("matrix")
        assert name in recorded, (
            f"fleet case {name!r} has no golden; run "
            "`python tools/regen_goldens.py --only matrix`"
        )
        entry = run_fleet_case(fleet, audit=True)
        report = diff_goldens({name: recorded[name]}, {name: entry})
        assert not report, "\n".join(report)


class TestExperimentGoldens:
    def test_corpus_covers_registry(self):
        assert sorted(_load("experiments")) == sorted(experiment_ids())

    def test_spot_checks_reproduce(self):
        recorded = _load("experiments")
        current = compute_experiments(only=SPOT_EXPERIMENTS)
        assert sorted(current) == sorted(SPOT_EXPERIMENTS)
        subset = {name: recorded[name] for name in SPOT_EXPERIMENTS}
        report = diff_goldens(subset, current)
        assert not report, "\n".join(report)
