"""Tests for the MetaCube topology (Section 4.3 / Fig 9)."""

import pytest

from repro.config import NVM_FIRST, NVM_LAST
from repro.errors import TopologyError
from repro.net.routing import RouteClass, bfs_paths
from repro.topology import build_metacube
from repro.topology.base import HOST_ID, LinkKind, NodeKind
from repro.topology.metacube import package_order_techs, plan_packages
from repro.topology.placement import position_distances


class TestPackagePlanning:
    def test_all_dram_16(self):
        assert plan_packages(16, 0, NVM_LAST) == [("DRAM", 4)] * 4

    def test_mixed_nvm_last(self):
        packages = plan_packages(8, 2, NVM_LAST)
        assert packages == [("DRAM", 4), ("DRAM", 4), ("NVM", 2)]

    def test_mixed_nvm_first(self):
        packages = plan_packages(8, 2, NVM_FIRST)
        assert packages[0] == ("NVM", 2)

    def test_remainder_package(self):
        packages = plan_packages(6, 0, NVM_LAST)
        assert packages == [("DRAM", 4), ("DRAM", 2)]

    def test_invalid(self):
        with pytest.raises(TopologyError):
            plan_packages(0, 0, NVM_LAST)
        with pytest.raises(TopologyError):
            plan_packages(4, 0, "middle")

    def test_package_order_techs(self):
        techs = package_order_techs(8, 2, NVM_LAST)
        assert techs == ["DRAM"] * 8 + ["NVM"] * 2


class TestMetacubeTopology:
    def test_all_dram_structure(self):
        topo = build_metacube(16, 0)
        topo.validate()
        assert len(topo.cube_ids()) == 16
        assert len(topo.switch_ids()) == 4
        interposer = [e for e in topo.edges if e.link_kind == LinkKind.INTERPOSER]
        assert len(interposer) == 16  # each cube hangs off its interface chip

    def test_cubes_have_single_interposer_link(self):
        topo = build_metacube(16, 0)
        for cube in topo.cube_ids():
            assert topo.degree(cube) == 1
            assert topo.external_degree(cube) == 0

    def test_worst_case_distance_small(self):
        topo = build_metacube(16, 0)
        worst = max(position_distances(topo))
        # package tree depth 2 + interposer hop
        assert worst <= 3

    def test_singleton_nvm_package_is_plain_cube(self):
        topo = build_metacube(4, 1)
        topo.validate()
        nvm_cubes = [c for c in topo.cube_ids() if topo.tech_of(c) == "NVM"]
        assert len(nvm_cubes) == 1
        # the lone NVM cube attaches via an external link, not an interposer
        assert topo.external_degree(nvm_cubes[0]) >= 1

    def test_nvm_last_orders_cube_ids(self):
        topo = build_metacube(8, 2, placement=NVM_LAST)
        techs = [topo.tech_of(c) for c in topo.cube_ids()]
        assert techs == ["DRAM"] * 8 + ["NVM"] * 2

    def test_nvm_first_orders_cube_ids(self):
        topo = build_metacube(8, 2, placement=NVM_FIRST)
        techs = [topo.tech_of(c) for c in topo.cube_ids()]
        assert techs == ["NVM"] * 2 + ["DRAM"] * 8

    def test_switch_nodes_have_packages(self):
        topo = build_metacube(16, 0)
        for switch in topo.switch_ids():
            assert topo.nodes[switch].kind == NodeKind.SWITCH
            assert topo.nodes[switch].package is not None

    def test_four_port_scale(self):
        # 32 cubes (4-port system) still validates and stays shallow
        topo = build_metacube(32, 0)
        topo.validate()
        assert max(position_distances(topo)) <= 4

    def test_mean_distance_beats_tree(self):
        from repro.topology import build_tree

        mc = build_metacube(16, 0)
        tree = build_tree(["DRAM"] * 16)
        mc_mean = sum(position_distances(mc)) / 16
        tree_mean = sum(position_distances(tree)) / 16
        assert mc_mean < tree_mean
