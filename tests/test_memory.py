"""Tests for banks, timing models, and technology behaviour."""

import pytest

from repro.config import dram_tech, nvm_tech
from repro.memory.bank import Bank
from repro.memory.timing import TimingModel
from repro.units import ns


class TestBank:
    def test_initially_closed_and_free(self):
        bank = Bank()
        assert bank.open_row is None
        assert not bank.any_row_open
        assert bank.ready_for(0, 5)

    def test_note_access_opens_row(self):
        bank = Bank()
        bank.note_access(7, hit=False)
        assert bank.open_row == 7
        assert bank.would_hit(7)
        assert not bank.would_hit(8)

    def test_lru_eviction_with_multiple_buffers(self):
        bank = Bank(num_row_buffers=2)
        bank.note_access(1, hit=False)
        bank.note_access(2, hit=False)
        bank.note_access(1, hit=True)  # refresh 1's recency
        bank.note_access(3, hit=False)  # evicts 2
        assert bank.would_hit(1)
        assert bank.would_hit(3)
        assert not bank.would_hit(2)

    def test_hit_counter(self):
        bank = Bank()
        bank.note_access(1, hit=False)
        bank.note_access(1, hit=True)
        assert bank.accesses == 2
        assert bank.row_hits == 1

    def test_refresh_closes_rows_and_occupies(self):
        bank = Bank(num_row_buffers=2)
        bank.note_access(1, hit=False)
        bank.refresh(100, 350)
        assert not bank.any_row_open
        assert bank.array_busy_until == 450
        assert not bank.ready_for(200, 1)

    def test_earliest_start_hit_ignores_array(self):
        bank = Bank()
        bank.note_access(5, hit=False)
        bank.push_array_busy(1_000_000)
        bank.push_buffer_busy(100)
        assert bank.earliest_start(0, 5) == 100  # hit waits only for buffer
        assert bank.earliest_start(0, 6) == 1_000_000  # miss waits for array

    def test_invalid_buffer_count(self):
        with pytest.raises(ValueError):
            Bank(num_row_buffers=0)


class TestDramTiming:
    def setup_method(self):
        self.tech = dram_tech()
        self.model = TimingModel(self.tech)

    def test_closed_bank_access(self):
        bank = Bank()
        plan = self.model.plan(bank, 0, row=3, is_write=False)
        assert plan.start_ps == 0
        assert plan.data_ready_ps == self.tech.trcd_ps + self.tech.tcl_ps
        assert not plan.row_hit

    def test_row_hit_costs_tcl(self):
        bank = Bank()
        first = self.model.plan(bank, 0, 3, False)
        self.model.apply(bank, first, 3)
        hit = self.model.plan(bank, first.data_ready_ps, 3, False)
        assert hit.row_hit
        assert hit.data_ready_ps - hit.start_ps == self.tech.tcl_ps

    def test_row_conflict_pays_precharge(self):
        bank = Bank()
        first = self.model.plan(bank, 0, 3, False)
        self.model.apply(bank, first, 3)
        # wait until tRAS satisfied so only the conflict cost shows
        later = max(first.array_free_ps, first.data_ready_ps)
        miss = self.model.plan(bank, later, 9, False)
        assert not miss.row_hit
        assert miss.data_ready_ps - miss.start_ps == (
            self.tech.trp_ps + self.tech.trcd_ps + self.tech.tcl_ps
        )

    def test_tras_keeps_array_busy(self):
        bank = Bank()
        plan = self.model.plan(bank, 0, 3, False)
        assert plan.array_free_ps >= self.tech.tras_ps

    def test_write_recovery_extends_array(self):
        bank = Bank()
        plan = self.model.plan(bank, 0, 3, is_write=True)
        assert plan.array_free_ps >= plan.data_ready_ps + self.tech.twr_ps


class TestNvmTiming:
    def setup_method(self):
        self.tech = nvm_tech()
        self.model = TimingModel(self.tech)

    def test_read_miss_slower_than_dram(self):
        dram_model = TimingModel(dram_tech())
        nvm_plan = self.model.plan(Bank(), 0, 1, False)
        dram_plan = dram_model.plan(Bank(), 0, 1, False)
        assert nvm_plan.data_ready_ps > dram_plan.data_ready_ps

    def test_write_occupies_array_for_twr(self):
        bank = Bank(num_row_buffers=self.tech.row_buffers)
        plan = self.model.plan(bank, 0, 1, is_write=True)
        self.model.apply(bank, plan, 1)
        assert bank.array_busy_until >= plan.data_ready_ps + ns(320)

    def test_hit_read_bypasses_write_recovery(self):
        """The decoupled row buffer: hits proceed during tWR (Section 2.4)."""
        bank = Bank(num_row_buffers=self.tech.row_buffers)
        write = self.model.plan(bank, 0, 1, is_write=True)
        self.model.apply(bank, write, 1)
        read = self.model.plan(bank, write.data_ready_ps, 1, is_write=False)
        assert read.row_hit
        assert read.start_ps == write.data_ready_ps  # no tWR wait

    def test_miss_read_waits_for_write_recovery(self):
        bank = Bank(num_row_buffers=1)
        write = self.model.plan(bank, 0, 1, is_write=True)
        self.model.apply(bank, write, 1)
        miss = self.model.plan(bank, write.data_ready_ps, 2, is_write=False)
        assert miss.start_ps >= write.data_ready_ps + ns(320)

    def test_no_refresh(self):
        assert not self.tech.needs_refresh

    def test_multiple_row_buffers_configured(self):
        assert self.tech.row_buffers == 4
