"""Tests for the repro.check invariant-audit subsystem.

Positive direction: healthy and degraded runs pass every audit, and an
audited run is bit-identical to an unaudited one (audits verify, they
never perturb).  Negative direction: three injected defects — a stolen
credit, a leaked packet, a stale timing-wheel entry — must each be
caught by its named invariant, with reproduction context attached.
"""

from __future__ import annotations

import pytest

from repro.check import (
    InvariantViolation,
    audits,
    audits_enabled,
    set_audits,
)
from repro.serialization import result_digest
from repro.sim.engine import WHEEL_SHIFT, Engine
from repro.system import MemoryNetworkSystem

from conftest import fast_workload, run_sim, run_system, small_config


def _audited_system(config=None, requests=120):
    return MemoryNetworkSystem(
        config if config is not None else small_config(),
        fast_workload(),
        requests=requests,
        audit=True,
    )


# ---------------------------------------------------------------------------
# Enablement plumbing
# ---------------------------------------------------------------------------
class TestEnablement:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        system, _ = run_system(requests=20)
        assert system.auditor is None

    def test_explicit_param(self):
        system, _ = run_system(requests=20, audit=True)
        assert system.auditor is not None
        assert system.auditor.audits_run >= 1  # at least the final audit

    def test_ambient_flag_and_restore(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert not audits_enabled()
        previous = set_audits(True)
        try:
            assert previous is False
            assert audits_enabled()
            system, _ = run_system(requests=20)
            assert system.auditor is not None
        finally:
            set_audits(previous)
        assert not audits_enabled()

    def test_context_manager(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        with audits():
            system, _ = run_system(requests=20)
            assert system.auditor is not None
        assert not audits_enabled()

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert audits_enabled()
        system, _ = run_system(requests=20)
        assert system.auditor is not None
        monkeypatch.setenv("REPRO_AUDIT", "0")
        assert not audits_enabled()

    def test_explicit_off_overrides_ambient(self):
        with audits():
            system, _ = run_system(requests=20, audit=False)
            assert system.auditor is None


# ---------------------------------------------------------------------------
# Audits verify, never perturb
# ---------------------------------------------------------------------------
class TestDigestIdentity:
    @pytest.mark.parametrize("topology", ["chain", "ring", "skiplist"])
    def test_audited_run_is_bit_identical(self, topology):
        config = small_config(topology=topology).with_obs(attribution=True)
        plain = run_sim(config, requests=100, audit=False)
        audited = run_sim(config, requests=100, audit=True)
        assert result_digest(plain) == result_digest(audited)

    def test_audited_degraded_run_is_bit_identical(self):
        config = small_config(topology="chain").with_ras(
            link_failures=((2, 3, 300_000),)
        )
        plain = run_sim(config, requests=100, audit=False)
        audited = run_sim(config, requests=100, audit=True)
        assert result_digest(plain) == result_digest(audited)
        assert audited.requests_failed > 0  # the degraded path was taken


# ---------------------------------------------------------------------------
# Healthy and degraded runs pass every audit point
# ---------------------------------------------------------------------------
class TestHealthyAudits:
    def test_metacube_with_obs_and_ras_noise(self):
        config = (
            small_config(topology="metacube")
            .with_obs(attribution=True)
            .with_ras(bit_error_rate=1e-6)
        )
        system = _audited_system(config, requests=150)
        system.run()  # no InvariantViolation
        assert system.auditor.audits_run >= 1

    def test_quiesce_audits_on_permanent_failure(self):
        config = small_config(topology="ring").with_ras(
            link_failures=((1, 2, 300_000),)
        )
        system = _audited_system(config, requests=150)
        result = system.run()
        # ras-quiesce + final: the reroute path was audited mid-run.
        assert system.auditor.audits_run >= 2
        assert result.requests_failed == 0

    def test_degraded_final_audit_tolerates_failed_strands(self):
        # A cut chain fails the far cubes; the relaxed final audit must
        # accept stranded *failed* work but still run to completion.
        config = small_config(topology="chain").with_ras(
            link_failures=((2, 3, 300_000),)
        )
        system = _audited_system(config, requests=150)
        result = system.run()
        assert result.requests_failed > 0
        assert system.auditor.audits_run >= 2


# ---------------------------------------------------------------------------
# Injected defects: each caught by its named invariant
# ---------------------------------------------------------------------------
class TestInjectedDefects:
    def _credited_link(self, system):
        for link, _kind in system._links:
            if link.credits is not None and link.credits > 0:
                return link
        raise AssertionError("no credited link in the system")

    def test_dropped_credit_caught(self):
        system = _audited_system()

        def steal(engine):
            link = self._credited_link(system)
            link._credits -= 1

        system.engine.schedule(400_000, steal)
        with pytest.raises(InvariantViolation) as excinfo:
            system.run()
        assert "credit.conservation" in excinfo.value.invariants()

    def test_leaked_packet_caught(self):
        system = _audited_system()

        def leak(engine):
            for link, _kind in system._links:
                queue = link.dst_queue
                if len(queue):
                    # Bypass pop(): no counter bump, no credit return.
                    items = queue._items
                    if hasattr(items, "popleft"):
                        items.popleft()
                        queue._entry_times.popleft()
                    else:
                        # native C queue: _items is a plain list and the
                        # entry-time view realigns itself
                        del items[0]
                    return
            engine.schedule(10_000, leak)

        system.engine.schedule(400_000, leak)
        with pytest.raises(InvariantViolation) as excinfo:
            system.run()
        assert "queue.accounting" in excinfo.value.invariants()

    def test_stale_wheel_entry_caught(self):
        # White-box: reaches into the timing wheel's far map, so pin
        # the wheel scheduler regardless of any ambient REPRO_ENGINE.
        system = MemoryNetworkSystem(
            small_config(),
            fast_workload(),
            requests=40,
            audit=True,
            engine=Engine("wheel"),
        )
        system.run()
        engine = system.engine
        # File a far-bucket entry without registering its bucket index
        # (or the pending count): the classic stale-wheel-entry bug.
        index = (engine.now >> WHEEL_SHIFT) + 1000
        engine._far[index] = [
            (index << WHEEL_SHIFT, engine._seq, lambda eng: None, ())
        ]
        names = {v[0] for v in system.auditor.collect("final")}
        assert names == {"engine.integrity"}

    def test_violation_carries_reproduction_context(self):
        system = _audited_system()
        system.engine.schedule(
            400_000, lambda eng: self._steal_one(system)
        )
        with pytest.raises(InvariantViolation) as excinfo:
            system.run()
        violation = excinfo.value
        assert violation.context["workload"] == "TEST"
        assert violation.context["seed"] == system.config.seed
        assert violation.context["requests"] == system.requests
        assert violation.context["scheduler"] == system.engine.scheduler
        assert violation.context["point"] in ("final", "stall")
        # Each violation is a (invariant, component, detail) triple and
        # all of it lands in the printable message.
        invariant, component, detail = violation.violations[0]
        assert invariant in str(violation)
        assert component in str(violation)
        assert detail in str(violation)

    def _steal_one(self, system):
        self._credited_link(system)._credits -= 1
