"""Tests for the shared ``REPRO_*`` environment-variable parsing."""

import warnings

import pytest

import repro.runner.pool as pool_mod
from repro import check
from repro.env import env_flag, reset_warnings
from repro.runner.pool import default_jobs

VAR = "REPRO_TEST_FLAG"


@pytest.fixture(autouse=True)
def _fresh_warnings():
    reset_warnings()
    yield
    reset_warnings()


class TestEnvFlag:
    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on", "TRUE", " On "])
    def test_true_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(VAR, raw)
        assert env_flag(VAR) is True

    @pytest.mark.parametrize("raw", ["0", "false", "no", "off", "FALSE", " Off "])
    def test_false_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(VAR, raw)
        assert env_flag(VAR, default=True) is False

    @pytest.mark.parametrize("default", [False, True])
    def test_unset_and_empty_yield_default(self, monkeypatch, default):
        monkeypatch.delenv(VAR, raising=False)
        assert env_flag(VAR, default=default) is default
        monkeypatch.setenv(VAR, "   ")
        assert env_flag(VAR, default=default) is default

    def test_unrecognized_warns_once_and_yields_default(self, monkeypatch):
        monkeypatch.setenv(VAR, "maybe")
        with pytest.warns(RuntimeWarning, match="maybe"):
            assert env_flag(VAR, default=True) is True
        # Second read of the same variable stays quiet.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_flag(VAR) is False

    def test_warn_once_is_per_variable(self, monkeypatch):
        monkeypatch.setenv(VAR, "bogus")
        monkeypatch.setenv(VAR + "_2", "bogus")
        with pytest.warns(RuntimeWarning):
            env_flag(VAR)
        with pytest.warns(RuntimeWarning):
            env_flag(VAR + "_2")


class TestAuditsEnabledFlag:
    """REPRO_AUDIT=false used to *enable* audits (any non-"0" string did)."""

    @pytest.mark.parametrize("raw", ["false", "off", "no", "0"])
    def test_false_spellings_disable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_AUDIT", raw)
        assert check.audits_enabled() is False

    @pytest.mark.parametrize("raw", ["1", "yes", "on"])
    def test_true_spellings_enable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_AUDIT", raw)
        assert check.audits_enabled() is True

    def test_ambient_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "false")
        with check.audits():
            assert check.audits_enabled() is True
        assert check.audits_enabled() is False


class TestDefaultJobs:
    @pytest.fixture(autouse=True)
    def _fresh_jobs_warning(self):
        pool_mod._warned_bad_jobs_env = False
        yield
        pool_mod._warned_bad_jobs_env = False

    def test_valid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4

    def test_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1

    @pytest.mark.parametrize("raw", ["0", "-3"])
    def test_non_positive_warns_and_runs_serial(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert default_jobs() == 1

    def test_unparseable_warns_and_runs_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="unparseable"):
            assert default_jobs() == 1

    def test_warns_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.warns(RuntimeWarning):
            default_jobs()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_jobs() == 1
