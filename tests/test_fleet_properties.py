"""Property-based tests (hypothesis) on the fleet aggregation layer.

Three families, matching the fleet determinism contract:

* fold-order invariance — folding the same histograms through any
  partition of :class:`TailAccumulator`\\ s, merged in any order,
  yields bit-identical state;
* percentile sanity — percentiles are monotone in the requested
  fraction, and adding load at/above the current tail never lowers it;
* conservation — counters and shard apportionment are exactly
  conserved across arbitrary fleet shapes and partitions.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetConfig, Tenant
from repro.sim.stats import CounterBag, Histogram, TailAccumulator

from conftest import fast_workload, small_config

#: Latency-like samples: non-negative, integer-valued (picoseconds),
#: spanning underflow-free and overflow territory for a small histogram.
samples = st.lists(
    st.integers(min_value=0, max_value=5_000), min_size=1, max_size=120
)


def _histogram(values, bucket_width=100.0, num_buckets=16) -> Histogram:
    hist = Histogram(bucket_width=bucket_width, num_buckets=num_buckets)
    for value in values:
        hist.add(float(value))
    return hist


# --- fold-order invariance -------------------------------------------------
@given(samples, st.data())
@settings(max_examples=60, deadline=None)
def test_tail_accumulator_fold_order_invariance(values, data):
    """Any shard partition, folded/merged in any order, is bit-identical."""
    # Random partition of the samples into "shards".
    cuts = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(values)),
            max_size=5,
        )
    )
    bounds = sorted(set(cuts) | {0, len(values)})
    shards = [
        values[lo:hi] for lo, hi in zip(bounds, bounds[1:])
    ]
    hists = [_histogram(shard) for shard in shards]

    # Reference: one accumulator folding shard histograms left to right.
    reference = TailAccumulator()
    for hist in hists:
        reference.fold(hist)

    # Permuted: fold in shuffled order, through a random two-level tree.
    order = data.draw(st.permutations(range(len(hists))))
    left, right = TailAccumulator(), TailAccumulator()
    for position, index in enumerate(order):
        (left if position % 2 else right).fold(hists[index])
    merged = TailAccumulator()
    merged.merge(left)
    merged.merge(right)

    assert merged.state() == reference.state()
    assert merged.percentile(0.99) == reference.percentile(0.99)


@given(samples)
@settings(max_examples=60, deadline=None)
def test_tail_accumulator_matches_single_histogram(values):
    """Folding one histogram reproduces its own percentile read-out."""
    hist = _histogram(values)
    acc = TailAccumulator()
    acc.fold(hist)
    for fraction in (0.5, 0.95, 0.99):
        assert acc.percentile(fraction) == hist.percentile(fraction)
    assert acc.count == hist.count
    # Exact mean (total / count), not Welford's incremental mean — the
    # two can differ in the last ulp, which is exactly why the
    # accumulator carries the exact integer-valued total instead.
    assert acc.mean == hist.stat.total / hist.count


# --- percentile monotonicity -----------------------------------------------
@given(samples)
@settings(max_examples=60, deadline=None)
def test_percentiles_monotone_in_fraction(values):
    acc = TailAccumulator()
    acc.fold(_histogram(values))
    p50, p95, p99 = (
        acc.percentile(0.50), acc.percentile(0.95), acc.percentile(0.99)
    )
    assert p50 <= p95 <= p99


@given(samples, st.lists(st.integers(min_value=0, max_value=400), min_size=1,
                         max_size=40))
@settings(max_examples=60, deadline=None)
def test_added_load_at_the_tail_never_lowers_p99(values, extra_offsets):
    """Folding extra samples at/above the current maximum cannot lower
    any percentile — more load only pushes the tenant's tail up."""
    acc = TailAccumulator()
    acc.fold(_histogram(values))
    before = {f: acc.percentile(f) for f in (0.5, 0.95, 0.99)}
    peak = max(values)
    acc.fold(_histogram([peak + offset for offset in extra_offsets]))
    for fraction, value in before.items():
        assert acc.percentile(fraction) >= value


# --- conservation ----------------------------------------------------------
@given(
    st.lists(
        st.dictionaries(
            st.sampled_from(["reads", "writes", "p2p", "served", "failed"]),
            st.integers(min_value=0, max_value=10_000),
            max_size=5,
        ),
        max_size=12,
    ),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_counter_bag_conservation_over_partitions(dicts, data):
    """Sum(partition sums) == total sum, for any partition and order."""
    total = CounterBag()
    for mapping in dicts:
        total.fold_dict(mapping)

    order = data.draw(st.permutations(range(len(dicts))))
    left, right = CounterBag(), CounterBag()
    for position, index in enumerate(order):
        (left if position % 3 == 0 else right).fold_dict(dicts[index])
    merged = CounterBag()
    merged.merge(right)
    merged.merge(left)
    assert merged.as_dict() == total.as_dict()


@given(
    st.integers(min_value=1, max_value=96),
    st.lists(
        st.floats(min_value=0.05, max_value=20.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=60, deadline=None)
def test_apportionment_conserves_shards_for_any_fleet_shape(num_shards, weights):
    """Every shard gets exactly one tenant; counts honour the quotas."""
    tenants = tuple(
        Tenant(f"t{i}", weight=weight) for i, weight in enumerate(weights)
    )
    fleet = FleetConfig(
        shards=(small_config(),) * num_shards,
        workload=fast_workload(),
        tenants=tenants,
        requests_per_shard=10,
    )
    assignment = fleet.shard_tenants()
    assert len(assignment) == num_shards

    counts = {tenant.name: 0 for tenant in tenants}
    for tenant in assignment:
        counts[tenant.name] += 1
    assert sum(counts.values()) == num_shards

    # Largest-remainder bound: each count is within one of its quota.
    total_weight = sum(weights)
    for tenant in tenants:
        quota = tenant.weight / total_weight * num_shards
        assert quota - 1 < counts[tenant.name] < quota + 1

    # Contiguity: tenants occupy runs in registry order.
    names = [tenant.name for tenant in assignment]
    compacted = [names[0]] + [
        name for prev, name in zip(names, names[1:]) if name != prev
    ]
    assert compacted == [
        tenant.name for tenant in tenants if counts[tenant.name]
    ]
