"""Tests for links, shared channels, credits, and buffers."""

import pytest

from repro.config import LinkConfig
from repro.errors import SimulationError
from repro.net.buffers import InputQueue
from repro.net.link import Link, SharedChannel
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine


def make_packet(kind=PacketKind.READ_REQ, size_bits=128, route=(0, 1)):
    packet = Packet(kind, 0x0, route[0], route[-1], size_bits, 0)
    packet.route = list(route)
    return packet


def make_link(capacity=2, serdes_ps=2000, channel=None):
    queue = InputQueue("q", capacity)
    link = Link(
        "L",
        LinkConfig(serdes_latency_ps=serdes_ps, input_buffer_packets=capacity),
        queue,
        channel=channel,
    )
    return link, queue


class TestInputQueue:
    def test_fifo_order(self):
        queue = InputQueue("q", 4)
        a, b = make_packet(), make_packet()
        queue.push(a)
        queue.push(b)
        assert queue.head() is a
        assert queue.pop() is a
        assert queue.pop() is b

    def test_capacity_enforced(self):
        queue = InputQueue("q", 1)
        queue.push(make_packet())
        assert not queue.has_space()
        with pytest.raises(SimulationError):
            queue.push(make_packet())

    def test_infinite_queue(self):
        queue = InputQueue("q", None)
        for _ in range(100):
            queue.push(make_packet())
        assert queue.has_space()

    def test_empty_access_raises(self):
        queue = InputQueue("q", 1)
        with pytest.raises(SimulationError):
            queue.head()
        with pytest.raises(SimulationError):
            queue.pop()

    def test_peak_occupancy(self):
        queue = InputQueue("q", 4)
        queue.push(make_packet())
        queue.push(make_packet())
        queue.pop()
        assert queue.peak_occupancy == 2


class TestLinkTiming:
    def test_delivery_time_is_serialization_plus_serdes(self):
        engine = Engine()
        link, queue = make_link()
        packet = make_packet(size_bits=640)  # 2667 ps at 16x15Gbps
        arrivals = []
        link.on_delivery = lambda eng, q: arrivals.append(eng.now)
        link.send(engine, packet)
        engine.run()
        assert arrivals == [2667 + 2000]
        assert len(queue) == 1
        assert packet.hops_traversed == 1

    def test_link_busy_during_serialization(self):
        engine = Engine()
        link, _ = make_link()
        link.send(engine, make_packet(size_bits=640))
        assert not link.is_free(engine.now)
        with pytest.raises(SimulationError):
            link.send(engine, make_packet())

    def test_link_frees_after_serialization(self):
        engine = Engine()
        link, _ = make_link(capacity=4)
        link.send(engine, make_packet(size_bits=640))
        engine.run(until=2667)
        assert link.is_free(engine.now)

    def test_stats_accumulate(self):
        engine = Engine()
        link, _ = make_link(capacity=4)
        link.send(engine, make_packet(size_bits=640))
        engine.run()
        assert link.packets_carried == 1
        assert link.bits_carried == 640
        assert link.busy_ps == 2667


class TestCredits:
    def test_credit_consumed_on_send(self):
        engine = Engine()
        link, _ = make_link(capacity=2)
        assert link.credits == 2
        link.send(engine, make_packet())
        assert link.credits == 1

    def test_no_credit_blocks_send(self):
        engine = Engine()
        link, queue = make_link(capacity=1)
        link.send(engine, make_packet())
        engine.run()
        assert not link.has_credit()
        with pytest.raises(SimulationError):
            link.send(engine, make_packet())

    def test_return_credit_restores(self):
        engine = Engine()
        link, queue = make_link(capacity=1)
        link.send(engine, make_packet())
        engine.run()
        queue.pop()
        link.return_credit(engine)
        assert link.has_credit()

    def test_can_send_combines_busy_and_credit(self):
        engine = Engine()
        link, _ = make_link(capacity=2)
        assert link.can_send(0)
        link.send(engine, make_packet(size_bits=640))
        assert not link.can_send(engine.now)


class TestSharedChannel:
    def test_two_halves_share_serializer(self):
        engine = Engine()
        channel = SharedChannel("ab")
        link_ab, _ = make_link(channel=channel)
        link_ba, _ = make_link(channel=channel)
        link_ab.send(engine, make_packet(size_bits=640))
        assert not link_ba.is_free(engine.now)
        with pytest.raises(SimulationError):
            link_ba.send(engine, make_packet())

    def test_response_direction_granted_first(self):
        engine = Engine()
        channel = SharedChannel("ab")
        link_ab, _ = make_link(channel=channel)
        link_ba, _ = make_link(channel=channel)
        grants = []
        link_ab.on_idle = lambda eng: grants.append("requests")
        link_ba.on_idle = lambda eng: grants.append("responses")
        link_ab.sender_has_response_head = lambda: False
        link_ba.sender_has_response_head = lambda: True
        # occupy the channel, register both directions as blocked, then
        # let the idle transition re-arbitrate
        link_ab.send(engine, make_packet(size_bits=640))
        channel.wake_when_idle(engine, link_ab)
        channel.wake_when_idle(engine, link_ba)
        engine.run()
        assert grants[0] == "responses"

    def test_waiters_polled_in_registration_order(self):
        engine = Engine()
        channel = SharedChannel("ab")
        link_ab, _ = make_link(channel=channel)
        link_ba, _ = make_link(channel=channel)
        polled = []
        link_ab.on_idle = lambda eng: polled.append("ab")
        link_ba.on_idle = lambda eng: polled.append("ba")
        link_ab.send(engine, make_packet(size_bits=640))
        channel.wake_when_idle(engine, link_ba)
        channel.wake_when_idle(engine, link_ab)
        engine.run()
        # no responses pending: registration order decides, and both
        # waiters get polled by the single idle event
        assert polled == ["ba", "ab"]

    def test_uncontended_channel_schedules_no_idle_events(self):
        engine = Engine()
        channel = SharedChannel("ab")
        link_ab, _ = make_link(capacity=4, channel=channel)
        link_ab.send(engine, make_packet(size_bits=640))
        engine.run()
        # delivery is the only event: no waiters -> no idle/poll events
        assert engine.events_processed == 1

    def test_wake_registration_is_idempotent(self):
        engine = Engine()
        channel = SharedChannel("ab")
        link_ab, _ = make_link(channel=channel)
        link_ba, _ = make_link(channel=channel)
        polled = []
        link_ba.on_idle = lambda eng: polled.append("ba")
        link_ab.send(engine, make_packet(size_bits=640))
        channel.wake_when_idle(engine, link_ba)
        channel.wake_when_idle(engine, link_ba)
        engine.run()
        assert polled == ["ba"]

    def test_full_duplex_links_do_not_interfere(self):
        engine = Engine()
        link_a, _ = make_link()
        link_b, _ = make_link()
        link_a.send(engine, make_packet(size_bits=640))
        link_b.send(engine, make_packet(size_bits=640))  # independent channel
        engine.run()
        assert link_a.packets_carried == link_b.packets_carried == 1


class TestQueueWaitTracking:
    def test_wait_accumulates_between_push_and_pop(self):
        queue = InputQueue("q", 4)
        queue.push(make_packet(), now_ps=100)
        queue.push(make_packet(), now_ps=150)
        queue.pop(now_ps=300)
        queue.pop(now_ps=400)
        assert queue.total_wait_ps == (300 - 100) + (400 - 150)
        assert queue.popped == 2
        assert queue.mean_wait_ps == 225.0

    def test_untimed_operations_ignored(self):
        queue = InputQueue("q", 4)
        queue.push(make_packet())
        queue.pop()
        assert queue.popped == 0
        assert queue.mean_wait_ps == 0.0
