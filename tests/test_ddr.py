"""Tests for the DDR bus model (Table 1)."""

import pytest

from repro.ddr import DDR3, DDR4, DdrBusModel
from repro.ddr.bus import table1_rows
from repro.errors import ConfigError


class TestTable1:
    def test_exact_paper_values(self):
        assert table1_rows() == [(1, 1333, 2133), (2, 1066, 2133), (3, 800, 1866)]

    def test_ddr3_speed_drops_with_loading(self):
        speeds = [DDR3.max_speed_mhz(dpc) for dpc in (1, 2, 3)]
        assert speeds == sorted(speeds, reverse=True)

    def test_ddr4_flat_until_third_dimm(self):
        assert DDR4.max_speed_mhz(1) == DDR4.max_speed_mhz(2)
        assert DDR4.max_speed_mhz(3) < DDR4.max_speed_mhz(2)

    def test_unsupported_dpc(self):
        with pytest.raises(ConfigError):
            DDR3.max_speed_mhz(4)
        with pytest.raises(ConfigError):
            DDR3.max_speed_mhz(0)


class TestBusModel:
    def test_bandwidth_formula(self):
        model = DdrBusModel(DDR4)
        # 2133 MHz x 2 transfers x 8 bytes = 34.1 GB/s
        assert model.channel_bandwidth_gbs(1) == pytest.approx(34.1, abs=0.1)

    def test_capacity_bandwidth_tradeoff(self):
        model = DdrBusModel(DDR3)
        frontier = model.frontier(channels=4)
        capacities = [p["capacity_gib"] for p in frontier]
        bandwidths = [p["bandwidth_gbs"] for p in frontier]
        assert capacities == sorted(capacities)
        assert bandwidths == sorted(bandwidths, reverse=True)

    def test_pin_cost_fixed_per_channel(self):
        model = DdrBusModel(DDR4)
        assert model.system(4, 1)["pins"] == 4 * 288

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            DdrBusModel(DDR4, dimm_capacity_gib=0)
        with pytest.raises(ConfigError):
            DdrBusModel(DDR4).system(0, 1)

    def test_mn_link_beats_ddr_per_pin(self):
        """The Section 2.2 argument: HMC-style links win on GB/s/pin."""
        ddr = DdrBusModel(DDR4).system(1, 1)
        # one 16-lane 15 Gbps link pair at ~66 pins: 2x30 GB/s aggregate
        mn_gbs_per_pin = (2 * 16 * 15 / 8) / 66
        assert mn_gbs_per_pin > ddr["gbs_per_pin"]
