"""Property-based tests (hypothesis) on core data structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.address_map import AddressMap, smooth_weighted_order
from repro.net.routing import RouteClass, RouteTable, bfs_paths
from repro.runner import ParallelRunner, SimJob
from repro.runner.cache import ResultCache
from repro.serialization import result_digest
from repro.sim.engine import Engine
from repro.sim.random import derive_seed
from repro.sim.stats import Histogram
from repro.topology import (
    build_chain,
    build_metacube,
    build_ring,
    build_skiplist,
    build_tree,
)
from repro.topology.base import HOST_ID
from repro.topology.skiplist import plan_skip_links
from repro.units import GIB_BYTES

from conftest import fast_workload, small_config

BUILDERS = {
    "chain": build_chain,
    "ring": build_ring,
    "tree": build_tree,
    "skiplist": build_skiplist,
}


# --- engine ----------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
def test_engine_processes_events_in_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda eng: fired.append(eng.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# --- seeds -------------------------------------------------------------------
@given(st.integers(), st.text(max_size=20), st.text(max_size=20))
def test_seed_derivation_deterministic_and_labelled(root, a, b):
    assert derive_seed(root, a) == derive_seed(root, a)
    if a != b:
        assert derive_seed(root, a) != derive_seed(root, b)


# --- smooth weighted round robin ------------------------------------------
@given(st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=8))
def test_wrr_pattern_counts_match_weights(weights):
    pattern = smooth_weighted_order(weights)
    assert len(pattern) == sum(weights)
    for index, weight in enumerate(weights):
        assert pattern.count(index) == weight


# --- address map ------------------------------------------------------------
@st.composite
def capacity_lists(draw):
    n_dram = draw(st.integers(min_value=0, max_value=6))
    n_nvm = draw(st.integers(min_value=0 if n_dram else 1, max_value=3))
    return [16 * GIB_BYTES] * n_dram + [64 * GIB_BYTES] * n_nvm


@given(capacity_lists(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_address_map_decode_in_bounds(capacities, block):
    amap = AddressMap(capacities, 256, 2048, 256, 4)
    address = (block * 4421 * 256) % amap.total_bytes
    loc = amap.decode(address)
    assert 0 <= loc.cube_index < len(capacities)
    assert 0 <= loc.quadrant < 4
    assert 0 <= loc.bank < 64
    assert loc.row >= 0
    assert 0 <= loc.offset < 256


@given(capacity_lists())
@settings(max_examples=30)
def test_address_map_share_proportional_to_capacity(capacities):
    amap = AddressMap(capacities, 256, 2048, 256, 4)
    total = sum(capacities)
    for index, capacity in enumerate(capacities):
        assert abs(amap.cube_share(index) - capacity / total) < 1e-9


@given(capacity_lists())
@settings(max_examples=20)
def test_address_map_no_two_blocks_share_storage(capacities):
    """Distinct interleave blocks map to distinct (cube, quadrant, bank,
    row, column-slot) storage — decode is injective over blocks."""
    amap = AddressMap(capacities, 256, 2048, 16, 4)
    seen = {}
    for block in range(min(amap.pattern_len * 4, 256)):
        loc = amap.decode(block * 256)
        # reconstruct the cube-local block id from the decode
        blocks_per_row = 2048 // 256
        key = (loc.cube_index, loc.quadrant, loc.bank, loc.row, block)
        # two different blocks must never produce identical full keys
        storage = (loc.cube_index, loc.quadrant, loc.bank, loc.row)
        seen.setdefault(storage, set())
        assert block not in seen[storage]
        seen[storage].add(block)
        assert len(seen[storage]) <= blocks_per_row


# --- topologies ---------------------------------------------------------------
@given(
    st.sampled_from(sorted(BUILDERS)),
    st.integers(min_value=1, max_value=40),
)
@settings(max_examples=80)
def test_every_topology_validates_and_routes(kind, count):
    topo = BUILDERS[kind](["DRAM"] * count)
    topo.validate()
    table = RouteTable(topo.adjacency_by_class(), HOST_ID, topo.cube_ids())
    for cube in topo.cube_ids():
        for cls in (RouteClass.READ, RouteClass.WRITE):
            route = table.route_to_cube(cube, cls)
            assert route[0] == HOST_ID and route[-1] == cube
            assert len(set(route)) == len(route)  # no loops
            back = table.route_to_host(cube, cls)
            assert back == tuple(reversed(route))


@given(
    st.integers(min_value=0, max_value=24),
    st.integers(min_value=0, max_value=8),
)
@settings(max_examples=60)
def test_metacube_validates_for_any_mix(n_dram, n_nvm):
    if n_dram + n_nvm == 0:
        return
    topo = build_metacube(n_dram, n_nvm)
    topo.validate()
    techs = [topo.tech_of(c) for c in topo.cube_ids()]
    assert techs.count("DRAM") == n_dram
    assert techs.count("NVM") == n_nvm


@given(st.integers(min_value=1, max_value=128))
@settings(max_examples=60)
def test_skiplist_port_budget_invariant(count):
    skips = plan_skip_links(count)
    ports = {i: 0 for i in range(count)}
    for position in range(count):
        ports[position] += 1  # uplink (host or previous cube)
        if position < count - 1:
            ports[position] += 1
    for a, b in skips:
        assert a < b
        ports[a] += 1
        ports[b] += 1
    assert all(p <= 4 for p in ports.values())


@given(st.integers(min_value=2, max_value=64))
@settings(max_examples=40)
def test_skiplist_reads_never_slower_than_chain(count):
    topo = build_skiplist(["DRAM"] * count)
    paths = bfs_paths(topo.adjacency(RouteClass.READ), HOST_ID)
    for position, cube in enumerate(topo.cube_ids()):
        chain_distance = position + 1
        assert len(paths[cube]) - 1 <= chain_distance


# --- histograms --------------------------------------------------------------
_HIST_WIDTH = 50.0
_HIST_BUCKETS = 16

_samples = st.lists(
    st.floats(
        min_value=-500.0,
        max_value=5_000.0,
        allow_nan=False,
        allow_infinity=False,
    ),
    max_size=50,
)


def _hist(samples):
    hist = Histogram(_HIST_WIDTH, _HIST_BUCKETS)
    for sample in samples:
        hist.add(sample)
    return hist


def _hist_key(hist):
    """The exact (non-Welford) state of a histogram."""
    return (tuple(hist.buckets), hist.underflow, hist.overflow, hist.count)


def _assert_hist_equal(left, right):
    assert _hist_key(left) == _hist_key(right)
    assert left.stat.min == right.stat.min
    assert left.stat.max == right.stat.max
    # Welford merges are exact in exact arithmetic; allow float noise.
    assert left.stat.total == pytest.approx(right.stat.total)
    assert left.stat.mean == pytest.approx(right.stat.mean)
    assert left.stat.variance == pytest.approx(right.stat.variance, abs=1e-6)


@given(a=_samples, b=_samples)
@settings(max_examples=60)
def test_histogram_merge_commutes(a, b):
    ab = _hist(a)
    ab.merge(_hist(b))
    ba = _hist(b)
    ba.merge(_hist(a))
    _assert_hist_equal(ab, ba)


@given(a=_samples, b=_samples, c=_samples)
@settings(max_examples=60)
def test_histogram_merge_associates(a, b, c):
    left = _hist(a)
    bc = _hist(b)
    bc.merge(_hist(c))
    left.merge(bc)
    right = _hist(a)
    right.merge(_hist(b))
    right.merge(_hist(c))
    _assert_hist_equal(left, right)
    # and both equal the histogram of the concatenated stream, exactly
    # on the bucket state
    assert _hist_key(left) == _hist_key(_hist(a + b + c))


@given(
    samples=_samples.filter(bool),
    lo=st.floats(min_value=0.01, max_value=1.0),
    hi=st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=80)
def test_histogram_percentiles_monotonic(samples, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    hist = _hist(samples)
    assert hist.percentile(lo) <= hist.percentile(hi)


@given(samples=_samples)
@settings(max_examples=60)
def test_histogram_binning_partitions_samples(samples):
    hist = _hist(samples)
    negatives = sum(1 for s in samples if s < 0)
    beyond = sum(1 for s in samples if s >= _HIST_WIDTH * _HIST_BUCKETS)
    assert hist.underflow == negatives
    assert hist.overflow == beyond
    assert sum(hist.buckets) + hist.underflow + hist.overflow == len(samples)
    in_first = sum(1 for s in samples if 0 <= s < _HIST_WIDTH)
    assert hist.buckets[0] == in_first


# --- RAS seed determinism ----------------------------------------------------
@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=2**31 - 1),
        min_size=1,
        max_size=3,
        unique=True,
    )
)
@settings(max_examples=5, deadline=None)
def test_fault_plan_draws_identical_serial_and_parallel(seeds):
    """The fault RNG is seed-derived per job, so worker-process layout
    (and completion order) must never change a noisy run's bits."""
    jobs = [
        SimJob(
            config=small_config(
                topology="ring", seed=seed
            ).with_ras(bit_error_rate=1e-6),
            workload=fast_workload(),
            requests=60,
        )
        for seed in seeds
    ]
    serial = ParallelRunner(jobs=1, cache=ResultCache()).run(jobs)
    parallel = ParallelRunner(jobs=2, cache=ResultCache()).run(jobs)
    for left, right in zip(serial, parallel):
        assert result_digest(left) == result_digest(right)
