"""Tests for the observability subsystem (repro.obs).

Covers per-hop latency attribution (segment coverage and its agreement
with the timestamp-based Fig 5 split), event tracing and its dump
formats, the serialization v2 round-trip of the new histograms, and the
zero-overhead-when-off invariants.
"""

import json

import pytest

from repro.config import ObsConfig, SystemConfig
from repro.errors import SimulationError
from repro.multiport import simulate_all_ports
from repro.obs import (
    PHASE_TO_COMPONENT,
    UNATTRIBUTED,
    TraceRecorder,
    category_of,
    phase_of,
    rollup,
    sum_by_label,
    three_way_ns,
)
from repro.obs.attribution import segment_table_rows
from repro.serialization import (
    result_digest,
    result_from_state,
    result_to_dict,
    result_to_state,
)
from repro.sim.stats import Histogram

from conftest import fast_workload, run_system, small_config


# ---------------------------------------------------------------------------
# ObsConfig plumbing
# ---------------------------------------------------------------------------
class TestObsConfig:
    def test_off_by_default(self):
        config = SystemConfig()
        assert not config.obs.enabled
        assert not config.obs.attribution
        assert not config.obs.trace

    def test_with_obs_preserves_other_fields(self):
        config = small_config().with_obs(attribution=True)
        assert config.obs.attribution
        assert not config.obs.trace
        assert config.total_capacity_bytes == small_config().total_capacity_bytes

    def test_invalid_ring_rejected(self):
        with pytest.raises(Exception):
            SystemConfig(obs=ObsConfig(trace=True, trace_ring=0)).validate()

    def test_obs_changes_job_digest(self):
        from repro.runner import SimJob

        plain = SimJob(config=small_config(), workload=fast_workload(), requests=5)
        observed = SimJob(
            config=small_config().with_obs(attribution=True),
            workload=fast_workload(),
            requests=5,
        )
        assert plain.digest() != observed.digest()


# ---------------------------------------------------------------------------
# Attribution
# ---------------------------------------------------------------------------
class TestAttribution:
    def test_segments_absent_when_off(self):
        _, result = run_system(small_config(), requests=50)
        assert result.collector.segments == {}

    def test_three_way_split_matches_timestamps(self):
        _, result = run_system(
            small_config().with_obs(attribution=True), requests=300
        )
        breakdown = result.collector.all
        split = three_way_ns(result.collector.segments, result.transactions)
        assert split["to_memory"] == pytest.approx(breakdown.to_memory_ns, abs=1e-6)
        assert split["in_memory"] == pytest.approx(breakdown.in_memory_ns, abs=1e-6)
        assert split["from_memory"] == pytest.approx(
            breakdown.from_memory_ns, abs=1e-6
        )

    def test_unattributed_residual_is_zero(self):
        _, result = run_system(
            small_config().with_obs(attribution=True), requests=300
        )
        residual = result.collector.segments[UNATTRIBUTED]
        assert residual.stat.total == 0
        assert residual.stat.max == 0

    def test_port_crossings_always_present(self):
        config = small_config().with_obs(attribution=True)
        _, result = run_system(config, requests=100)
        segments = result.collector.segments
        assert segments["req.port"].count == result.transactions
        assert segments["resp.port"].count == result.transactions
        per_txn_ps = segments["req.port"].stat.total / result.transactions
        assert per_txn_ps == config.host.port_latency_ps

    def test_helpers(self):
        assert phase_of("req.queue.n3.from2") == "req"
        assert phase_of("unattributed") is None
        assert category_of("resp.wire.4->5") == "resp.wire"
        assert category_of("req.port") == "req.port"
        assert sum_by_label([("a", 0, 5), ("a", 7, 10), ("b", 1, 2)]) == {
            "a": 8,
            "b": 1,
        }
        assert set(PHASE_TO_COMPONENT.values()) == {
            "to_memory",
            "in_memory",
            "from_memory",
        }

    def test_rollup_merges_locations(self):
        a = Histogram(10, 4)
        b = Histogram(10, 4)
        a.add(5)
        b.add(15)
        merged = rollup({"req.queue.n1": a, "req.queue.n2": b})
        assert list(merged) == ["req.queue"]
        assert merged["req.queue"].count == 2
        # inputs untouched
        assert a.count == 1 and b.count == 1

    def test_segment_table_rows_render(self):
        _, result = run_system(
            small_config().with_obs(attribution=True), requests=100
        )
        rows = segment_table_rows(result.collector.segments, result.transactions)
        labels = [row[0] for row in rows]
        assert "req.port" in labels and "resp.port" in labels
        # phase ordering: all req.* rows precede mem.*, which precede resp.*
        phases = [phase_of(label) or "zzz" for label in labels]
        order = {"req": 0, "mem": 1, "resp": 2, "zzz": 3}
        ranks = [order[p] for p in phases]
        assert ranks == sorted(ranks)


# ---------------------------------------------------------------------------
# Latency histograms and tails
# ---------------------------------------------------------------------------
class TestTails:
    def test_breakdown_histograms_populated(self):
        _, result = run_system(small_config(), requests=200)
        breakdown = result.collector.all
        assert breakdown.total_hist.count == result.transactions
        tails = breakdown.tails_ns()
        assert tails["total"]["p50"] <= tails["total"]["p95"] <= tails["total"]["p99"]
        assert result.p99_latency_ns >= result.p50_latency_ns > 0

    def test_report_dict_carries_tails(self):
        _, result = run_system(small_config(), requests=100)
        report = result_to_dict(result)
        assert "tails_ns" in report["latency"]
        assert report["latency"]["tails_ns"]["total"]["p95"] > 0

    def test_multiport_merges_histograms_and_segments(self):
        config = small_config().with_obs(attribution=True)
        multi = simulate_all_ports(config, fast_workload(), requests_per_port=40)
        merged = multi.merged_collector()
        assert merged.count == multi.total_transactions
        assert merged.all.total_hist.count == multi.total_transactions
        assert merged.segments["req.port"].count == multi.total_transactions
        # merged percentiles are well-formed
        assert merged.all.percentile_ns("total", 0.99) >= merged.all.percentile_ns(
            "total", 0.50
        )


# ---------------------------------------------------------------------------
# Serialization round-trip (cache schema v2)
# ---------------------------------------------------------------------------
class TestSerializationV2:
    def test_round_trip_bit_identical_with_attribution(self):
        _, result = run_system(
            small_config().with_obs(attribution=True), requests=150
        )
        state = result_to_state(result)
        clone = result_from_state(json.loads(json.dumps(state)))
        assert result_digest(clone) == result_digest(result)
        assert clone.collector.segments.keys() == result.collector.segments.keys()
        assert clone.p99_latency_ns == result.p99_latency_ns

    def test_round_trip_without_segments(self):
        _, result = run_system(small_config(), requests=80)
        clone = result_from_state(result_to_state(result))
        assert result_digest(clone) == result_digest(result)
        assert clone.collector.segments == {}


# ---------------------------------------------------------------------------
# Event tracing
# ---------------------------------------------------------------------------
class TestTraceRecorder:
    def test_ring_eviction(self):
        recorder = TraceRecorder(capacity=4)
        for i in range(10):
            recorder.queue_depth("q", i, i)
        assert recorder.emitted == 10
        assert len(recorder.events()) == 4
        assert recorder.dropped == 6
        assert recorder.queue_peak["q"] == 9  # aggregates survive eviction

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_link_aggregates(self):
        class FakePacket:
            pid = 1
            size_bits = 128

            class kind:
                name = "REQ_RD"

        recorder = TraceRecorder()
        recorder.link_send("0->1", 100, 50, 80, FakePacket())
        recorder.link_send("0->1", 200, 50, 80, FakePacket())
        assert recorder.link_busy_ps["0->1"] == 100
        assert recorder.link_bits["0->1"] == 256
        util = recorder.link_utilization(runtime_ps=1000)
        assert util["0->1"] == pytest.approx(0.1)

    def test_system_attaches_tracer_and_records(self):
        config = small_config().with_obs(attribution=True, trace=True)
        system, result = run_system(config, requests=60)
        assert system.tracer is not None
        assert system.tracer.emitted > 0
        kinds = {event[1] for event in system.tracer.events()}
        assert "link" in kinds and "queue" in kinds
        summary = system.tracer.summary(result.runtime_ps)
        assert summary["link_utilization"]
        assert all(0.0 <= u <= 1.0 for u in summary["link_utilization"].values())

    def test_no_tracer_when_off(self):
        system, _ = run_system(small_config(), requests=20)
        assert system.tracer is None
        with pytest.raises(SimulationError):
            system.dump_trace("/tmp/nowhere")

    def test_dump_files(self, tmp_path):
        config = small_config().with_obs(attribution=True, trace=True)
        system, _ = run_system(config, requests=60)
        paths = system.dump_trace(str(tmp_path))
        assert len(paths) == 2
        jsonl, chrome = paths
        lines = [
            json.loads(line)
            for line in open(jsonl).read().splitlines()
        ]
        assert lines[-1]["kind"] == "summary"
        assert all("ts" in record for record in lines[:-1])
        payload = json.loads(open(chrome).read())
        assert payload["traceEvents"]
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert "X" in phases and "C" in phases
        assert payload["otherData"]["workload"] == "TEST"

    def test_trace_dir_auto_dump(self, tmp_path):
        config = small_config().with_obs(
            attribution=True, trace=True, trace_dir=str(tmp_path)
        )
        run_system(config, requests=40)
        written = list(tmp_path.iterdir())
        assert len(written) == 2

    def test_engine_events_opt_in(self):
        base = small_config().with_obs(attribution=True, trace=True)
        system, _ = run_system(base, requests=30)
        assert "engine" not in {event[1] for event in system.tracer.events()}
        verbose = small_config().with_obs(
            attribution=True, trace=True, trace_engine_events=True
        )
        system, _ = run_system(verbose, requests=30)
        assert "engine" in {event[1] for event in system.tracer.events()}

    def test_traced_run_matches_untraced_result(self):
        plain_cfg = small_config()
        traced_cfg = small_config().with_obs(attribution=True, trace=True)
        _, plain = run_system(plain_cfg, requests=120)
        _, traced = run_system(traced_cfg, requests=120)
        assert traced.runtime_ps == plain.runtime_ps
        assert traced.transactions == plain.transactions
        assert traced.collector.all.total_ns == pytest.approx(
            plain.collector.all.total_ns
        )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestTraceCli:
    def test_main_writes_traces(self, tmp_path, capsys):
        from repro.trace import main

        rc = main(
            [
                "100%-C",
                "BACKPROP",
                "--requests",
                "60",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Per-hop latency attribution" in out
        assert "wrote" in out
        assert len(list(tmp_path.iterdir())) == 2
