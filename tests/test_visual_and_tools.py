"""Tests for visualization, network stats, multiport runs, CLI, CSV."""

import csv

import pytest

from repro import visual
from repro.__main__ import main as cli_main
from repro.analysis.network_stats import (
    cube_stats,
    link_stats,
    render_cube_report,
    render_link_report,
    underutilized_links,
)
from repro.config import HostConfig, SystemConfig
from repro.experiments.base import ExperimentOutput
from repro.multiport import simulate_all_ports
from repro.system import MemoryNetworkSystem
from repro.topology import build_topology

from conftest import fast_workload, small_config


class TestVisual:
    def test_render_topology_mentions_all_cubes(self):
        topo = build_topology(small_config(topology="tree"))
        text = visual.render_topology(topo)
        assert "APU" in text
        for cube in topo.cube_ids():
            assert f"D{cube}" in text

    def test_render_topology_marks_nvm(self):
        topo = build_topology(small_config(dram_fraction=0.5))
        text = visual.render_topology(topo)
        assert "N" in text.split("links:")[0].replace("NVM", "")

    def test_render_topology_marks_interposer_links(self):
        topo = build_topology(small_config(topology="metacube"))
        text = visual.render_topology(topo)
        assert "~~" in text
        assert "sw" in text

    def test_render_skiplist_arcs(self):
        text = visual.render_skiplist(16)
        assert text.count("\\") == 5  # the Fig 8 skip set
        assert "APU--0" in text

    def test_render_skiplist_two_digit_alignment(self):
        lines = visual.render_skiplist(16).splitlines()
        base = lines[0]
        # the (12, 14) arc must start under "12" and end under "14"
        arc = lines[-2]
        assert base[arc.index("\\")] == "1"
        assert base[arc.index("/")] == "1"

    def test_distance_histogram(self):
        topo = build_topology(small_config(topology="chain"))
        text = visual.render_distance_histogram(topo)
        assert "mean distance" in text
        assert "#" in text


class TestNetworkStats:
    @pytest.fixture(scope="class")
    def finished_system(self):
        system = MemoryNetworkSystem(
            small_config(topology="tree"), fast_workload(), requests=300
        )
        system.run()
        return system

    def test_link_stats_cover_all_links(self, finished_system):
        stats = link_stats(finished_system)
        assert len(stats) == len(finished_system._links)
        assert all(0.0 <= s.utilization <= 1.0 for s in stats)
        assert any(s.packets > 0 for s in stats)

    def test_cube_stats_sum_to_transactions(self, finished_system):
        stats = cube_stats(finished_system)
        assert sum(s.accesses for s in stats) == 300
        assert all(s.tech == "DRAM" for s in stats)

    def test_underutilized_links_detects_leaf_links(self, finished_system):
        # leaf links in a tree see only their own cube's traffic
        assert underutilized_links(finished_system, threshold=0.9)

    def test_reports_render(self, finished_system):
        assert "utilization" in render_link_report(finished_system)
        assert "row hits" in render_cube_report(finished_system)


class TestMultiPort:
    def test_all_ports_complete(self):
        config = small_config(host=HostConfig(num_ports=2))
        result = simulate_all_ports(config, fast_workload(), requests_per_port=100)
        assert result.num_ports == 2
        assert result.total_transactions == 200
        assert result.runtime_ps == max(r.runtime_ps for r in result.per_port)

    def test_ports_reasonably_balanced(self):
        config = small_config(host=HostConfig(num_ports=2))
        result = simulate_all_ports(config, fast_workload(), requests_per_port=200)
        assert result.port_balance() < 1.5

    def test_merged_collector_and_energy(self):
        config = small_config(host=HostConfig(num_ports=2))
        result = simulate_all_ports(config, fast_workload(), requests_per_port=100)
        merged = result.merged_collector()
        assert merged.count == 200
        assert result.energy.total_pj > 0


class TestCli:
    def test_simulate_command(self, capsys):
        assert cli_main(
            ["simulate", "--topology", "tree", "--workload", "NW",
             "--requests", "100", "--links", "--cubes"]
        ) == 0
        out = capsys.readouterr().out
        assert "runtime" in out and "utilization" in out and "row hits" in out

    def test_simulate_with_label_and_arbiter(self, capsys):
        assert cli_main(
            ["simulate", "--label", "0%-T", "--arbiter", "distance",
             "--workload", "NW", "--requests", "80"]
        ) == 0
        assert "0%-T" in capsys.readouterr().out

    def test_show_command(self, capsys):
        assert cli_main(["show", "--topology", "skiplist"]) == 0
        assert "skip" in capsys.readouterr().out

    def test_workloads_command(self, capsys):
        assert cli_main(["workloads"]) == 0
        assert "KMEANS" in capsys.readouterr().out


class TestCsvExport:
    def test_series_extraction(self):
        output = ExperimentOutput(
            "figX", "t", "txt", data={"speedups": {"A": {"c1": 1.0}}}
        )
        assert output.series() == {"A": {"c1": 1.0}}

    def test_save_csv_roundtrip(self, tmp_path):
        output = ExperimentOutput(
            "figX",
            "t",
            "txt",
            data={"speedups": {"A": {"c1": 1.25, "c2": -0.5}}},
        )
        path = tmp_path / "out.csv"
        output.save_csv(path)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["figX", "c1", "c2"]
        assert rows[1][0] == "A"
        assert float(rows[1][1]) == pytest.approx(1.25)

    def test_save_csv_empty_series(self, tmp_path):
        output = ExperimentOutput("figY", "t", "txt")
        path = tmp_path / "empty.csv"
        output.save_csv(path)
        assert "figY" in path.read_text()
