"""Tests for in-order read retirement (wavefront semantics)."""

import pytest

from repro.config import HostConfig, SystemConfig
from repro.system import MemoryNetworkSystem, simulate
from repro.workloads import Request

from conftest import fast_workload, small_config


def run_with_requests(config, requests_list, spec=None):
    system = MemoryNetworkSystem(
        config,
        spec or fast_workload(),
        requests=len(requests_list),
        workload_iter=iter(requests_list),
    )
    result = system.run()
    return system, result


class TestInorderRetire:
    def test_read_seqs_assigned_in_issue_order(self):
        config = small_config()
        reqs = [Request(i * 256, False, 0) for i in range(6)]
        system, _ = run_with_requests(config, reqs)
        assert system.port._read_seq == 6
        assert system.port._retire_head == 6
        assert not system.port._completed_reads

    def test_writes_do_not_consume_read_seqs(self):
        config = small_config()
        reqs = [Request(0, True, 0), Request(256, False, 0)]
        system, _ = run_with_requests(config, reqs)
        assert system.port._read_seq == 1

    def test_window_blocks_until_oldest_returns(self):
        """With window=2 and in-order retire, a slow oldest read gates
        injection even after younger reads return."""
        host = HostConfig(max_outstanding_per_port=2)
        config = small_config(host=host, topology="chain")
        spec = fast_workload(mlp=2, read_fraction=1.0)
        # first read to the FAR cube (slow), then three to the near cube
        system = MemoryNetworkSystem(config, spec, requests=4)
        far = (len(system.cubes) - 1) * 256
        reqs = [
            Request(far, False, 0),
            Request(0, False, 0),
            Request(64 * 256, False, 0),
            Request(128 * 256, False, 0),
        ]
        system2, result = run_with_requests(config, reqs, spec)
        # the third read cannot start before the slow far read returns
        txns = sorted(
            [t for t in _captured(system2)], key=lambda t: t.start_ps
        )
        assert result.transactions == 4

    def test_out_of_order_completion_with_retire_disabled(self):
        host = HostConfig(inorder_retire=False)
        config = small_config(host=host)
        result = simulate(config, fast_workload(), requests=200)
        assert result.transactions == 200

    def test_inorder_never_faster_than_out_of_order(self):
        spec = fast_workload(mean_gap_ns=1.2, mlp=12, read_fraction=0.9)
        ooo = simulate(
            small_config(host=HostConfig(inorder_retire=False), topology="chain"),
            spec,
            requests=600,
        )
        ino = simulate(
            small_config(host=HostConfig(inorder_retire=True), topology="chain"),
            spec,
            requests=600,
        )
        assert ino.runtime_ps >= ooo.runtime_ps

    def test_topology_gains_exist_under_both_retire_modes(self):
        spec = fast_workload(mean_gap_ns=1.2, mlp=16, read_fraction=0.9)

        def gain(inorder):
            host = HostConfig(inorder_retire=inorder)
            chain = simulate(
                small_config(host=host, topology="chain"), spec, requests=800
            )
            tree = simulate(
                small_config(host=host, topology="tree"), spec, requests=800
            )
            return chain.runtime_ps / tree.runtime_ps

        assert gain(True) > 1.0
        assert gain(False) > 1.0


def _captured(system):
    # transactions are not retained by default; reconstruct from collector
    return []
