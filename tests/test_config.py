"""Tests for configuration dataclasses and label parsing."""

import pytest

from repro.config import (
    NVM_FIRST,
    NVM_LAST,
    CubeConfig,
    HostConfig,
    LinkConfig,
    PacketConfig,
    SystemConfig,
    dram_tech,
    nvm_tech,
    parse_label,
)
from repro.errors import ConfigError
from repro.units import GIB_BYTES, TIB_BYTES


class TestTechPresets:
    def test_dram_table2_timings(self):
        dram = dram_tech()
        assert dram.trcd_ps == 12_000
        assert dram.tcl_ps == 6_000
        assert dram.trp_ps == 14_000
        assert dram.tras_ps == 33_000
        assert dram.capacity_bytes == 16 * GIB_BYTES
        assert dram.needs_refresh

    def test_nvm_table2_timings(self):
        nvm = nvm_tech()
        assert nvm.trcd_ps == 40_000
        assert nvm.tcl_ps == 10_000
        assert nvm.twr_ps == 320_000
        assert nvm.capacity_bytes == 64 * GIB_BYTES
        assert not nvm.needs_refresh
        assert nvm.is_nonvolatile

    def test_energy_values(self):
        assert dram_tech().read_energy_pj_per_bit == 12.0
        assert dram_tech().write_energy_pj_per_bit == 12.0
        assert nvm_tech().read_energy_pj_per_bit == 12.0
        assert nvm_tech().write_energy_pj_per_bit == 120.0

    def test_nvm_is_4x_denser(self):
        assert nvm_tech().capacity_bytes == 4 * dram_tech().capacity_bytes

    def test_convenience_latencies(self):
        dram = dram_tech()
        assert dram.row_hit_read_ps() == dram.tcl_ps
        assert dram.row_miss_read_ps() == dram.trp_ps + dram.trcd_ps + dram.tcl_ps


class TestPacketConfig:
    def test_data_is_5x_control(self):
        packet = PacketConfig()
        assert packet.data_bits == 5 * packet.control_bits
        assert packet.control_bits == 16 * 8

    def test_invalid(self):
        with pytest.raises(ConfigError):
            PacketConfig(control_bytes=0).validate()


class TestCubeConfig:
    def test_defaults_match_table2(self):
        cube = CubeConfig()
        assert cube.banks_per_stack == 256
        assert cube.num_quadrants == 4
        assert cube.banks_per_quadrant == 64
        assert cube.external_ports == 4

    def test_banks_must_divide(self):
        with pytest.raises(ConfigError):
            CubeConfig(banks_per_stack=10, num_quadrants=4).validate()

    def test_scheduling_validated(self):
        with pytest.raises(ConfigError):
            CubeConfig(scheduling="lifo").validate()


class TestCubeCounts:
    def test_all_dram_2tb_8ports(self):
        config = SystemConfig()
        assert config.per_port_capacity_bytes == 256 * GIB_BYTES
        assert config.cube_counts() == (16, 0)
        assert config.cubes_per_port == 16

    def test_all_nvm(self):
        config = SystemConfig(dram_fraction=0.0)
        assert config.cube_counts() == (0, 4)

    def test_half_half(self):
        config = SystemConfig(dram_fraction=0.5)
        assert config.cube_counts() == (8, 2)

    def test_four_ports_doubles_cubes(self):
        config = SystemConfig(host=HostConfig(num_ports=4))
        assert config.cube_counts() == (32, 0)

    def test_non_decomposable_fraction_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(dram_fraction=0.37).cube_counts()

    def test_1tib_total(self):
        config = SystemConfig(total_capacity_bytes=TIB_BYTES)
        assert config.cube_counts() == (8, 0)


class TestLabels:
    @pytest.mark.parametrize(
        "label,topology,fraction,placement",
        [
            ("100%-C", "chain", 1.0, NVM_LAST),
            ("100%-R", "ring", 1.0, NVM_LAST),
            ("50%-T (NVM-L)", "tree", 0.5, NVM_LAST),
            ("50%-SL (NVM-F)", "skiplist", 0.5, NVM_FIRST),
            ("0%-MC", "metacube", 0.0, NVM_LAST),
        ],
    )
    def test_parse(self, label, topology, fraction, placement):
        config = parse_label(label)
        assert config.topology == topology
        assert config.dram_fraction == fraction
        assert config.nvm_placement == placement

    def test_parse_bad_label(self):
        with pytest.raises(ConfigError):
            parse_label("not-a-label")

    def test_label_roundtrip(self):
        for label in ("100%-C", "50%-T (NVM-L)", "50%-MC (NVM-F)", "0%-SL"):
            assert parse_label(label).label() == label

    def test_label_omits_placement_for_pure_mixes(self):
        assert SystemConfig(dram_fraction=1.0).label() == "100%-C"
        assert SystemConfig(dram_fraction=0.0).label() == "0%-C"

    def test_parse_preserves_base_parameters(self):
        base = SystemConfig(seed=7)
        assert parse_label("100%-T", base).seed == 7


class TestValidation:
    def test_default_config_valid(self):
        SystemConfig().validate()

    def test_unknown_topology(self):
        with pytest.raises(ConfigError):
            SystemConfig(topology="mesh").validate()

    def test_unknown_arbiter(self):
        with pytest.raises(ConfigError):
            SystemConfig(arbiter="magic").validate()

    def test_bad_fraction(self):
        with pytest.raises(ConfigError):
            SystemConfig(dram_fraction=1.5).validate()

    def test_bad_placement(self):
        with pytest.raises(ConfigError):
            SystemConfig(nvm_placement="middle").validate()

    def test_interleave_power_of_two(self):
        with pytest.raises(ConfigError):
            HostConfig(interleave_bytes=300).validate()

    def test_capacity_scale_positive(self):
        with pytest.raises(ConfigError):
            SystemConfig(capacity_scale=0.0).validate()

    def test_with_returns_modified_copy(self):
        config = SystemConfig()
        other = config.with_(topology="tree")
        assert other.topology == "tree"
        assert config.topology == "chain"

    def test_link_defaults(self):
        link = LinkConfig()
        assert link.lanes == 16
        assert link.lane_gbps == 15.0
        assert link.serdes_latency_ps == 2_000
        assert not link.full_duplex
