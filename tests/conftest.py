"""Shared fixtures: small, fast system configurations and run helpers."""

from __future__ import annotations

import importlib.util
from typing import Optional, Tuple

import pytest

from repro.config import HostConfig, SystemConfig
from repro.results import SimResult
from repro.serialization import result_digest
from repro.sim.engine import Engine
from repro.system import MemoryNetworkSystem
from repro.units import GIB_BYTES
from repro.workloads import WorkloadSpec

if importlib.util.find_spec("pytest_timeout") is None:
    # pytest-timeout is a CI-only dependency; register its `timeout`
    # ini option as an inert fallback so the pyproject setting does not
    # warn (or enforce anything) on machines without the plugin.
    def pytest_addoption(parser):
        parser.addini(
            "timeout",
            "per-test timeout in seconds (enforced only with pytest-timeout)",
            default=None,
        )


def small_config(**overrides) -> SystemConfig:
    """A fast 8-cube-per-port all-DRAM system (1 TiB total, 8 ports).

    With the default 16 GiB DRAM / 64 GiB NVM cubes this supports the
    mixes used in tests: 100% -> 8 DRAM, 50% -> 4 DRAM + 1 NVM,
    0% -> 2 NVM cubes per port.
    """
    defaults = dict(total_capacity_bytes=1024 * GIB_BYTES)
    defaults.update(overrides)
    return SystemConfig(**defaults)


def fast_workload(**overrides) -> WorkloadSpec:
    defaults = dict(
        name="TEST",
        read_fraction=0.6,
        mean_gap_ns=2.0,
        locality_lines=4.0,
        mlp=16,
        burst_size=4.0,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def run_system(
    config: Optional[SystemConfig] = None,
    workload: Optional[WorkloadSpec] = None,
    requests: int = 200,
    engine: Optional[Engine] = None,
    audit: Optional[bool] = None,
) -> Tuple[MemoryNetworkSystem, SimResult]:
    """Build and run one system directly (no ambient-runner memoization).

    Returns ``(system, result)`` so tests can inspect internals after
    the run.  ``audit=None`` follows the ambient repro.check flag, so
    the whole suite can be re-run audited via ``REPRO_AUDIT=1``.
    """
    system = MemoryNetworkSystem(
        config if config is not None else small_config(),
        workload if workload is not None else fast_workload(),
        requests=requests,
        engine=engine,
        audit=audit,
    )
    return system, system.run()


def run_sim(
    config: Optional[SystemConfig] = None,
    workload: Optional[WorkloadSpec] = None,
    requests: int = 200,
    **kwargs,
) -> SimResult:
    """:func:`run_system` for tests that only need the result."""
    return run_system(config, workload, requests, **kwargs)[1]


def sim_digest(
    config: Optional[SystemConfig] = None,
    workload: Optional[WorkloadSpec] = None,
    requests: int = 150,
    scheduler: str = "wheel",
    **kwargs,
) -> Tuple[str, int]:
    """Lossless result digest + event count of one direct run."""
    _, result = run_system(
        config, workload, requests, engine=Engine(scheduler), **kwargs
    )
    return result_digest(result), result.events_processed


@pytest.fixture
def config() -> SystemConfig:
    return small_config()


@pytest.fixture
def workload() -> WorkloadSpec:
    return fast_workload()
