"""Shared fixtures: small, fast system configurations."""

from __future__ import annotations

import importlib.util

import pytest

from repro.config import HostConfig, SystemConfig
from repro.units import GIB_BYTES
from repro.workloads import WorkloadSpec

if importlib.util.find_spec("pytest_timeout") is None:
    # pytest-timeout is a CI-only dependency; register its `timeout`
    # ini option as an inert fallback so the pyproject setting does not
    # warn (or enforce anything) on machines without the plugin.
    def pytest_addoption(parser):
        parser.addini(
            "timeout",
            "per-test timeout in seconds (enforced only with pytest-timeout)",
            default=None,
        )


def small_config(**overrides) -> SystemConfig:
    """A fast 8-cube-per-port all-DRAM system (1 TiB total, 8 ports).

    With the default 16 GiB DRAM / 64 GiB NVM cubes this supports the
    mixes used in tests: 100% -> 8 DRAM, 50% -> 4 DRAM + 1 NVM,
    0% -> 2 NVM cubes per port.
    """
    defaults = dict(total_capacity_bytes=1024 * GIB_BYTES)
    defaults.update(overrides)
    return SystemConfig(**defaults)


def fast_workload(**overrides) -> WorkloadSpec:
    defaults = dict(
        name="TEST",
        read_fraction=0.6,
        mean_gap_ns=2.0,
        locality_lines=4.0,
        mlp=16,
        burst_size=4.0,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


@pytest.fixture
def config() -> SystemConfig:
    return small_config()


@pytest.fixture
def workload() -> WorkloadSpec:
    return fast_workload()
