"""Tests for the directory and host port behaviour."""

import pytest

from repro.config import HostConfig, SystemConfig
from repro.host.directory import Directory
from repro.system import MemoryNetworkSystem
from repro.units import GIB_BYTES
from repro.workloads import Request, WorkloadSpec

from conftest import fast_workload, small_config


class TestDirectory:
    def test_read_blocked_by_outstanding_write(self):
        directory = Directory()
        directory.issued(0x100, is_write=True)
        assert not directory.can_issue(0x100, is_write=False)
        directory.completed(0x100, is_write=True)
        assert directory.can_issue(0x100, is_write=False)

    def test_write_blocked_by_outstanding_write(self):
        directory = Directory()
        directory.issued(0x100, is_write=True)
        assert not directory.can_issue(0x100, is_write=True)

    def test_reads_never_block_reads(self):
        directory = Directory()
        assert directory.can_issue(0x100, is_write=False)
        assert directory.can_issue(0x100, is_write=False)

    def test_line_granularity(self):
        directory = Directory(line_bytes=64)
        directory.issued(0x100, is_write=True)
        assert not directory.can_issue(0x13F, is_write=False)  # same line
        assert directory.can_issue(0x140, is_write=False)  # next line

    def test_multiple_writes_same_line(self):
        directory = Directory()
        directory.issued(0x0, True)
        directory.issued(0x0, True)
        directory.completed(0x0, True)
        assert not directory.can_issue(0x0, False)
        directory.completed(0x0, True)
        assert directory.can_issue(0x0, False)

    def test_stall_counter(self):
        directory = Directory()
        directory.issued(0x0, True)
        directory.can_issue(0x0, False)
        directory.can_issue(0x0, False)
        assert directory.stalled_reads == 2

    def test_outstanding_writes(self):
        directory = Directory()
        directory.issued(0x0, True)
        directory.issued(0x40, True)
        assert directory.outstanding_writes == 2

    def test_reads_do_not_register(self):
        directory = Directory()
        directory.issued(0x0, False)
        assert directory.outstanding_writes == 0

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            Directory(line_bytes=100)


def run_system(config=None, workload=None, requests=200, workload_iter=None):
    system = MemoryNetworkSystem(
        config or small_config(),
        workload or fast_workload(),
        requests=requests,
        workload_iter=workload_iter,
    )
    result = system.run()
    return system, result


class TestHostPort:
    def test_all_transactions_complete(self):
        system, result = run_system(requests=300)
        assert result.transactions == 300
        assert system.port.outstanding == 0
        assert not system.port.pending

    def test_window_respected(self):
        """Read MLP never exceeds the configured window."""
        spec = fast_workload(mlp=4, read_fraction=1.0, mean_gap_ns=0.5)
        system = MemoryNetworkSystem(small_config(), spec, requests=100)
        max_seen = []
        original = system.port.try_inject

        def spy(engine):
            original(engine)
            max_seen.append(system.port.outstanding_reads)

        system.port.try_inject = spy
        system.run()
        assert max(max_seen) <= 4

    def test_store_buffer_respected(self):
        host = HostConfig(store_buffer_entries=2)
        spec = fast_workload(read_fraction=0.0, mean_gap_ns=0.2)
        system = MemoryNetworkSystem(
            small_config(host=host), spec, requests=100
        )
        max_seen = []
        original = system.port.try_inject

        def spy(engine):
            original(engine)
            max_seen.append(system.port.outstanding_writes)

        system.port.try_inject = spy
        system.run()
        assert max(max_seen) <= 2

    def test_rmw_coherence_orders_read_after_write(self):
        """A read to a line with an in-flight write completes after it."""
        requests_list = [
            Request(address=0x40, is_write=True, gap_ps=0),
            Request(address=0x40, is_write=False, gap_ps=0),
        ]
        txns = []
        system = MemoryNetworkSystem(
            small_config(),
            fast_workload(),
            requests=2,
            workload_iter=iter(requests_list),
        )
        original = system._transaction_done

        def capture(engine, txn):
            txns.append(txn)
            original(engine, txn)

        system.port.on_transaction_done = capture
        system.run()
        write = next(t for t in txns if t.is_write)
        read = next(t for t in txns if not t.is_write)
        assert read.start_ps >= write.complete_ps

    def test_hysteresis_toggles_on_write_bursts(self):
        config = small_config(
            topology="skiplist",
            write_skip_hysteresis=True,
            hysteresis_window=16,
        )
        spec = fast_workload(read_fraction=0.2, mean_gap_ns=1.0)
        system, result = run_system(config, spec, requests=400)
        assert system.port.write_burst_mode or result.burst_mode_toggles > 0

    def test_hysteresis_disabled_by_default(self):
        system, result = run_system(requests=100)
        assert result.burst_mode_toggles == 0

    def test_port_latency_floor(self):
        """Every transaction pays the on-chip port latency twice."""
        config = small_config()
        system, result = run_system(config, requests=50)
        floor = 2 * config.host.port_latency_ps
        breakdown = result.collector.all
        assert breakdown.to_memory.min >= config.host.port_latency_ps
        assert result.collector.all.total_ns * 1000 >= floor
