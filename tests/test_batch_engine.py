"""Unit tests for the batched cohort-execution engine (``Engine("batch")``).

Digest-level equivalence against heap/wheel lives in
``test_scheduler_equivalence.py``; this file covers the batch engine's
own mechanics: dispatch order through the sorted window and spill heap,
bounded runs, cohort accounting, integrity introspection, and the
numpy-optionality contract.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

import repro.sim.batch as batch_mod
from repro.errors import SimulationError
from repro.sim.batch import COHORT_HIST_MAX, BatchEngine
from repro.sim.engine import WHEEL_SHIFT, Engine

PERIOD = 1 << WHEEL_SHIFT


def test_engine_batch_dispatches_to_subclass():
    engine = Engine("batch")
    assert isinstance(engine, BatchEngine)
    assert engine.scheduler == "batch"


def test_env_default_selects_batch(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "batch")
    assert isinstance(Engine(), BatchEngine)


def test_requires_numpy(monkeypatch):
    monkeypatch.setattr(batch_mod, "_np", None)
    with pytest.raises(SimulationError, match="numpy"):
        Engine("batch")


def test_rejects_other_scheduler_names():
    with pytest.raises(ValueError):
        BatchEngine("wheel")


def test_fires_in_time_then_seq_order():
    engine = Engine("batch")
    log = []
    # Deliberately spans several wheel buckets and includes ties.
    delays = [5, 3 * PERIOD, 3, 3, PERIOD, 3 * PERIOD, 0]
    for tag, delay in enumerate(delays):
        engine.schedule(delay, lambda eng, t: log.append((eng.now, t)), tag)
    assert engine.run() == len(delays)
    expected = sorted(
        ((delay, tag) for tag, delay in enumerate(delays)),
    )
    assert log == expected
    assert engine.pending == 0
    assert engine.events_processed == len(delays)


def test_reentrant_same_time_events_spill():
    engine = Engine("batch")
    log = []

    def chain(eng, depth):
        log.append((eng.now, depth))
        if depth:
            eng.schedule(0, chain, depth - 1)

    engine.schedule(7, chain, 3)
    engine.run()
    assert log == [(7, 3), (7, 2), (7, 1), (7, 0)]
    assert engine._spilled == 3  # re-entrant arrivals took the spill heap


def test_run_until_leaves_future_events():
    engine = Engine("batch")
    fired = []
    engine.schedule(10, lambda eng: fired.append(eng.now))
    engine.schedule(2 * PERIOD, lambda eng: fired.append(eng.now))
    engine.run(until=PERIOD)
    assert fired == [10]
    assert engine.now == PERIOD
    assert engine.pending == 1
    engine.run()
    assert fired == [10, 2 * PERIOD]


def test_max_events_raises_on_livelock():
    engine = Engine("batch")

    def forever(eng):
        eng.schedule(0, forever)

    engine.schedule(0, forever)
    with pytest.raises(SimulationError, match="event limit"):
        engine.run(max_events=50)


def test_stop_when_halts_run():
    engine = Engine("batch")
    fired = []
    for delay in (1, 2, 3, 4):
        engine.schedule(delay, lambda eng: fired.append(eng.now))
    engine.run(stop_when=lambda: len(fired) >= 2)
    assert fired == [1, 2]
    assert engine.pending == 2


def test_traced_run_matches_untraced_order():
    class StubTracer:
        def __init__(self):
            self.events = []

        def engine_event(self, time, name):
            self.events.append(time)

    delays = [4, 4, PERIOD + 1, 0, 3 * PERIOD]
    untraced = Engine("batch")
    plain_log = []
    for delay in delays:
        untraced.schedule(delay, lambda eng: plain_log.append(eng.now))
    untraced.run()

    traced = Engine("batch")
    tracer = StubTracer()
    traced.set_tracer(tracer)
    traced_log = []
    for delay in delays:
        traced.schedule(delay, lambda eng: traced_log.append(eng.now))
    traced.run()
    assert traced_log == plain_log
    assert tracer.events == plain_log


def test_cohort_stats_accumulate():
    engine = Engine("batch")
    # Two cohorts in one far bucket: three events at t=PERIOD, one later.
    for _ in range(3):
        engine.schedule(PERIOD, lambda eng: None)
    engine.schedule(PERIOD + 8, lambda eng: None)
    engine.run()
    stats = engine.cohort_stats()
    assert stats["histogram"] == {1: 1, 3: 1}
    assert stats["cohorts"] == 2
    assert stats["batched_events"] == 4
    assert stats["windows"] == 1
    assert stats["mean_cohort"] == 2.0


def test_cohort_histogram_overflow_bin():
    engine = Engine("batch")
    for _ in range(COHORT_HIST_MAX + 5):
        engine.schedule(PERIOD, lambda eng: None)
    engine.run()
    stats = engine.cohort_stats()
    assert stats["histogram"] == {COHORT_HIST_MAX: 1}


def test_integrity_clean_through_run():
    engine = Engine("batch")
    for delay in (0, 5, PERIOD, 2 * PERIOD, 2 * PERIOD):
        engine.schedule(delay, lambda eng: None)
    assert engine.integrity_errors() == []
    engine.run()
    assert engine.integrity_errors() == []
    assert engine.pending == 0


def test_drain_clears_everything():
    engine = Engine("batch")
    for delay in (1, PERIOD, 5 * PERIOD):
        engine.schedule(delay, lambda eng: None)
    engine.run(until=0)  # forces a refill into the window
    engine.drain()
    assert engine.pending == 0
    assert engine.run() == 0
