"""Tests for the error hierarchy and small leftover utilities."""

import pytest

from repro import errors, speedup_percent
from repro.results import EnergyReport, SimResult, TransactionCollector


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for klass in (
            errors.ConfigError,
            errors.TopologyError,
            errors.RoutingError,
            errors.SimulationError,
            errors.WorkloadError,
        ):
            assert issubclass(klass, errors.ReproError)
            assert issubclass(klass, Exception)

    def test_catchable_by_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.TopologyError("boom")

    def test_distinct_types(self):
        with pytest.raises(errors.ConfigError):
            raise errors.ConfigError("x")
        assert not issubclass(errors.ConfigError, errors.TopologyError)


def _result(runtime_ps):
    return SimResult(
        config_label="x",
        workload="w",
        runtime_ps=runtime_ps,
        collector=TransactionCollector(),
        energy=EnergyReport(),
        mean_distance=1.0,
        max_distance=1.0,
    )


class TestSpeedupPercent:
    def test_positive(self):
        assert speedup_percent(_result(100), _result(150)) == pytest.approx(50.0)

    def test_negative(self):
        assert speedup_percent(_result(200), _result(100)) == pytest.approx(-50.0)

    def test_zero_runtime_guard(self):
        assert _result(0).speedup_over(_result(100)) == 0.0


class TestExperimentsCli:
    def test_list_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out and "table01" in out

    def test_single_experiment_with_workload_subset(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table02"]) == 0
        assert "tRCD" in capsys.readouterr().out

    def test_fast_figure_run(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig08", "--requests", "10"]) == 0
        assert "APU--0" in capsys.readouterr().out
