"""End-to-end integration tests on small systems.

These exercise the fully-wired simulator and check the paper's
first-order behaviours at reduced scale.
"""

import pytest

from repro.config import HostConfig, SystemConfig
from repro.errors import SimulationError
from repro.net.routing import RouteClass
from repro.system import MemoryNetworkSystem, simulate
from repro.units import GIB_BYTES, TIB_BYTES

from conftest import fast_workload, small_config


def run(config=None, workload=None, requests=250):
    return simulate(
        config or small_config(), workload or fast_workload(), requests=requests
    )


class TestConservation:
    def test_every_request_gets_a_response(self):
        result = run(requests=400)
        assert result.transactions == 400

    def test_read_write_counts_match_stream(self):
        workload = fast_workload(read_fraction=1.0, rmw_fraction=0.0)
        result = run(workload=workload, requests=200)
        assert result.collector.reads == 200
        assert result.collector.writes == 0

    def test_memory_accesses_match_transactions(self):
        config = small_config()
        system = MemoryNetworkSystem(config, fast_workload(), requests=300)
        result = system.run()
        total_accesses = sum(
            cube.total_reads() + cube.total_writes()
            for cube in system.cubes.values()
        )
        assert total_accesses == result.transactions

    def test_single_use_enforced(self):
        system = MemoryNetworkSystem(small_config(), fast_workload(), requests=10)
        system.run()
        with pytest.raises(SimulationError):
            system.run()


class TestLatencySanity:
    def test_components_positive_and_ordered(self):
        result = run(requests=300)
        breakdown = result.collector.all
        assert breakdown.to_memory.mean > 0
        assert breakdown.in_memory.mean > 0
        assert breakdown.from_memory.mean > 0
        assert result.runtime_ps >= breakdown.to_memory.max

    def test_farther_cubes_cost_more_hops(self):
        config = small_config(topology="chain")
        system = MemoryNetworkSystem(config, fast_workload(), requests=200)
        system.run()
        distances = [
            system.route_table.distance(c) for c in system.topology.cube_ids()
        ]
        assert max(distances) == len(distances)

    def test_hop_counts_recorded(self):
        result = run(requests=200)
        assert result.collector.request_hops.mean >= 1.0
        assert result.collector.response_hops.mean >= 1.0


class TestTopologyOrdering:
    """The headline result at small scale: tree <= ring <= chain runtime."""

    def test_tree_beats_chain(self):
        workload = fast_workload(mean_gap_ns=1.0, mlp=24)
        chain = run(small_config(topology="chain"), workload, requests=800)
        tree = run(small_config(topology="tree"), workload, requests=800)
        assert tree.runtime_ps < chain.runtime_ps

    def test_metacube_beats_chain(self):
        workload = fast_workload(mean_gap_ns=1.0, mlp=24)
        chain = run(small_config(topology="chain"), workload, requests=800)
        metacube = run(small_config(topology="metacube"), workload, requests=800)
        assert metacube.runtime_ps < chain.runtime_ps

    def test_mean_distance_ordering(self):
        # at the paper's 16-cube-per-port scale
        def mean_distance(topology):
            system = MemoryNetworkSystem(
                small_config(
                    topology=topology, total_capacity_bytes=2 * TIB_BYTES
                ),
                fast_workload(),
                requests=1,
            )
            return system.route_table.mean_distance()

        chain = mean_distance("chain")
        ring = mean_distance("ring")
        tree = mean_distance("tree")
        metacube = mean_distance("metacube")
        assert metacube < tree < ring < chain


class TestNvmMixes:
    def test_nvm_share_of_accesses_matches_capacity(self):
        """Half the capacity in NVM -> half the requests hit NVM."""
        config = small_config(dram_fraction=0.5)
        result = run(config, requests=600)
        share = result.collector.nvm_accesses / result.transactions
        assert share == pytest.approx(0.5, abs=0.06)

    def test_all_nvm_network_is_smaller(self):
        dram_sys = MemoryNetworkSystem(small_config(), fast_workload(), requests=1)
        nvm_sys = MemoryNetworkSystem(
            small_config(dram_fraction=0.0), fast_workload(), requests=1
        )
        assert len(nvm_sys.cubes) < len(dram_sys.cubes)
        assert nvm_sys.route_table.max_distance() < dram_sys.route_table.max_distance()


class TestSkipListSystem:
    def test_writes_take_chain_reads_take_skips(self):
        config = small_config(topology="skiplist", total_capacity_bytes=2 * TIB_BYTES)
        system = MemoryNetworkSystem(config, fast_workload(), requests=400)
        result = system.run()
        reads = result.collector.read_breakdown
        # read requests to the farthest cube use skip links, so request
        # hop means must be below the chain mean
        far = system.topology.cube_ids()[-1]
        read_dist = system.route_table.distance(far, RouteClass.READ)
        write_dist = system.route_table.distance(far, RouteClass.WRITE)
        assert read_dist < write_dist

    def test_write_hops_exceed_read_hops_in_flight(self):
        config = small_config(topology="skiplist", total_capacity_bytes=2 * TIB_BYTES)
        workload = fast_workload(read_fraction=0.5, rmw_fraction=0.0)
        system = MemoryNetworkSystem(config, workload, requests=500)
        system.run()
        reads = system.collector.read_breakdown
        writes = system.collector.write_breakdown
        assert writes.to_memory.mean > reads.to_memory.mean


class TestEnergyAccounting:
    def test_energy_positive_and_scales_with_traffic(self):
        small = run(requests=100)
        large = run(requests=400)
        assert 0 < small.energy.total_pj < large.energy.total_pj

    def test_nvm_write_energy_dominates_all_nvm(self):
        config = small_config(dram_fraction=0.0)
        workload = fast_workload(read_fraction=0.3)
        result = run(config, workload, requests=400)
        assert result.energy.memory_write_pj > result.energy.memory_read_pj

    def test_chain_network_energy_exceeds_tree(self):
        workload = fast_workload()
        chain = run(small_config(topology="chain"), workload, requests=400)
        tree = run(small_config(topology="tree"), workload, requests=400)
        assert chain.energy.network_pj > tree.energy.network_pj


class TestArbitrationSystems:
    @pytest.mark.parametrize(
        "arbiter",
        ["round_robin", "distance", "distance_enhanced", "age", "global_weighted"],
    )
    def test_all_arbiters_run_to_completion(self, arbiter):
        result = run(small_config(arbiter=arbiter), requests=200)
        assert result.transactions == 200


class TestPortScaling:
    def test_fewer_ports_more_cubes(self):
        base = MemoryNetworkSystem(small_config(), fast_workload(), requests=1)
        four = MemoryNetworkSystem(
            small_config(host=HostConfig(num_ports=4)), fast_workload(), requests=1
        )
        assert len(four.cubes) == 2 * len(base.cubes)


class TestCapacityScaling:
    def test_scale_halves_banks_and_footprint(self):
        base = MemoryNetworkSystem(small_config(), fast_workload(), requests=1)
        scaled = MemoryNetworkSystem(
            small_config(capacity_scale=0.5), fast_workload(), requests=1
        )
        assert len(scaled.cubes) == len(base.cubes)
        assert scaled.address_map.total_bytes == base.address_map.total_bytes // 2
        base_banks = len(next(iter(base.cubes.values())).controllers[0].banks)
        scaled_banks = len(next(iter(scaled.cubes.values())).controllers[0].banks)
        assert scaled_banks == base_banks // 2
