"""Tests for packets and transactions."""

import pytest

from repro.config import PacketConfig
from repro.net.packet import (
    Packet,
    PacketKind,
    Transaction,
    request_packet,
    response_packet,
)


class TestPacketKind:
    def test_request_response_partition(self):
        for kind in PacketKind:
            assert kind.is_request != kind.is_response

    def test_data_packets(self):
        assert PacketKind.WRITE_REQ.carries_data
        assert PacketKind.READ_RESP.carries_data
        assert not PacketKind.READ_REQ.carries_data
        assert not PacketKind.WRITE_ACK.carries_data

    def test_write_class(self):
        assert PacketKind.WRITE_REQ.is_write_class
        assert PacketKind.WRITE_ACK.is_write_class
        assert not PacketKind.READ_REQ.is_write_class
        assert not PacketKind.READ_RESP.is_write_class

    def test_response_kinds(self):
        assert PacketKind.READ_REQ.response_kind() == PacketKind.READ_RESP
        assert PacketKind.WRITE_REQ.response_kind() == PacketKind.WRITE_ACK
        with pytest.raises(ValueError):
            PacketKind.READ_RESP.response_kind()


class TestPacketRoute:
    def make(self):
        packet = Packet(PacketKind.READ_REQ, 0x100, 0, 3, 128, 0)
        packet.route = [0, 1, 2, 3]
        return packet

    def test_route_walk(self):
        packet = self.make()
        assert packet.current_node == 0
        assert packet.next_node == 1
        assert not packet.at_destination
        assert packet.hops_remaining == 3
        packet.advance()
        packet.advance()
        packet.advance()
        assert packet.at_destination
        assert packet.hops_traversed == 3
        assert packet.total_route_hops() == 3

    def test_unique_ids(self):
        a = Packet(PacketKind.READ_REQ, 0, 0, 1, 8, 0)
        b = Packet(PacketKind.READ_REQ, 0, 0, 1, 8, 0)
        assert a.pid != b.pid


class TestTransactionLatencies:
    def make_txn(self):
        txn = Transaction(address=0x40, is_write=False, port_id=0, issue_ps=100)
        txn.start_ps = 150
        txn.mem_arrive_ps = 300
        txn.mem_depart_ps = 360
        txn.complete_ps = 500
        return txn

    def test_breakdown_uses_window_grant_clock(self):
        txn = self.make_txn()
        assert txn.to_memory_ps == 150  # 300 - 150
        assert txn.in_memory_ps == 60
        assert txn.from_memory_ps == 140
        assert txn.total_ps == 350
        assert txn.core_stall_ps == 50

    def test_breakdown_falls_back_to_issue_time(self):
        txn = Transaction(address=0, is_write=True, port_id=0, issue_ps=10)
        txn.mem_arrive_ps = 30
        txn.mem_depart_ps = 40
        txn.complete_ps = 50
        assert txn.to_memory_ps == 20
        assert txn.core_stall_ps == 0

    def test_components_sum_to_total(self):
        txn = self.make_txn()
        assert (
            txn.to_memory_ps + txn.in_memory_ps + txn.from_memory_ps == txn.total_ps
        )


class TestPacketFactories:
    def test_read_request_is_control_sized(self):
        config = PacketConfig()
        txn = Transaction(0x80, is_write=False, port_id=0, issue_ps=0)
        txn.dest_cube = 5
        packet = request_packet(config, txn, 0)
        assert packet.kind == PacketKind.READ_REQ
        assert packet.size_bits == config.control_bits

    def test_write_request_is_data_sized(self):
        config = PacketConfig()
        txn = Transaction(0x80, is_write=True, port_id=0, issue_ps=0)
        txn.dest_cube = 5
        packet = request_packet(config, txn, 0)
        assert packet.kind == PacketKind.WRITE_REQ
        assert packet.size_bits == config.data_bits

    def test_response_swaps_endpoints(self):
        config = PacketConfig()
        txn = Transaction(0x80, is_write=False, port_id=0, issue_ps=0)
        txn.dest_cube = 5
        request = request_packet(config, txn, 0)
        request.src, request.dest = 0, 5
        response = response_packet(config, request, 10)
        assert response.kind == PacketKind.READ_RESP
        assert response.src == 5 and response.dest == 0
        assert response.size_bits == config.data_bits
        assert response.transaction is txn

    def test_write_ack_is_control_sized(self):
        config = PacketConfig()
        txn = Transaction(0x80, is_write=True, port_id=0, issue_ps=0)
        txn.dest_cube = 2
        request = request_packet(config, txn, 0)
        response = response_packet(config, request, 10)
        assert response.kind == PacketKind.WRITE_ACK
        assert response.size_bits == config.control_bits
