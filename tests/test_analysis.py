"""Tests for analysis helpers: tables, speedup grids, breakdowns."""

import pytest

from repro.analysis import SpeedupGrid, breakdown_rows, format_percent, render_table
from repro.config import SystemConfig

from conftest import fast_workload, small_config


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["h"], [["x"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_floats_formatted(self):
        text = render_table(["h", "v"], [["a", 1.2345]])
        assert "1.2" in text

    def test_numbers_right_aligned(self):
        text = render_table(["h", "val"], [["a", 5], ["b", 500]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("  5")
        assert rows[1].endswith("500")

    def test_format_percent(self):
        assert format_percent(12.34) == "12.3%"
        assert format_percent(-4.0, digits=0) == "-4%"


class TestSpeedupGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        return SpeedupGrid(
            [fast_workload()], requests=200, base_config=small_config()
        )

    def test_results_cached(self, grid):
        first = grid.result("100%-C", grid.workloads[0])
        second = grid.result("100%-C", grid.workloads[0])
        assert first is second

    def test_baseline_speedup_is_zero(self, grid):
        speedups = grid.speedups(["100%-C"], "100%-C")
        assert speedups["TEST"]["100%-C"] == pytest.approx(0.0)

    def test_tree_has_nonnegative_speedup(self, grid):
        speedups = grid.speedups(["100%-T"], "100%-C")
        assert speedups["TEST"]["100%-T"] > -5.0

    def test_averages(self, grid):
        speedups = {"A": {"x": 10.0}, "B": {"x": 20.0}}
        assert grid.averages(speedups, ["x"]) == {"x": 15.0}

    def test_render_contains_average_row(self, grid):
        text = grid.render(["100%-T"], "100%-C")
        assert "average" in text

    def test_custom_config_fn(self):
        grid = SpeedupGrid(
            [fast_workload()],
            requests=100,
            config_fn=lambda label: small_config(topology="tree"),
        )
        result = grid.result("anything", grid.workloads[0])
        assert result.config_label == "100%-T"


class TestBreakdownRows:
    def test_rows_and_normalization(self):
        grid = SpeedupGrid(
            [fast_workload()], requests=150, base_config=small_config()
        )
        results = [
            grid.result("100%-C", grid.workloads[0]),
            grid.result("100%-T", grid.workloads[0]),
        ]
        rows = breakdown_rows(results, normalize_to="100%-C")
        assert rows[0]["config"] == "100%-C"
        assert rows[0]["relative_total"] == pytest.approx(1.0)
        assert rows[1]["rel_to"] > 0
        for row in rows:
            total = row["to_memory_ns"] + row["in_memory_ns"] + row["from_memory_ns"]
            assert total == pytest.approx(row["total_ns"], rel=1e-6)
