"""Sharding-equivalence suite for the fleet layer (``repro.fleet``).

The fleet determinism contract, pinned end to end:

* a fleet of identical shards is, shard for shard, digest-identical to
  N independent single-MN runs under the derived per-shard seeds;
* streaming fold == batch fold, in any order;
* ``jobs=1`` and ``jobs=4`` produce bit-identical ``FleetResult``s;
* warm-cache replays cost zero simulations and reproduce the digest;
* per-shard seeds are pairwise disjoint;
* folding keeps peak resident per-shard detail bounded (independent of
  shard count) when a persistent cache holds the warm copies;
* empty tenants/shards cannot poison fleet percentiles, and mismatched
  histogram shapes fail loudly with :class:`HistogramShapeError`.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from conftest import fast_workload, small_config
from repro.check import audits, check_fleet_conservation
from repro.errors import ConfigError, InvariantViolation
from repro.fleet import (
    FleetConfig,
    FleetResult,
    Tenant,
    TenantAggregate,
    run_fleet,
    uniform_fleet,
)
from repro.runner import ParallelRunner, ResultCache, SimJob
from repro.serialization import result_digest
from repro.sim.random import derive_seed
from repro.sim.stats import Histogram, HistogramShapeError, TailAccumulator

REQUESTS = 30


def small_fleet(num_shards=4, tenants=None, **config_overrides) -> FleetConfig:
    kwargs = {} if tenants is None else {"tenants": tenants}
    return uniform_fleet(
        num_shards,
        small_config(**config_overrides),
        fast_workload(),
        requests_per_shard=REQUESTS,
        **kwargs,
    )


def hetero_fleet(num_shards=8, **kwargs) -> FleetConfig:
    """Shards cycling through three topologies (and a mixed tech)."""
    mix = (
        small_config(topology="chain"),
        small_config(topology="skiplist"),
        small_config(topology="metacube", dram_fraction=0.5),
    )
    shards = tuple(mix[i % len(mix)] for i in range(num_shards))
    return FleetConfig(
        shards=shards,
        workload=fast_workload(),
        requests_per_shard=REQUESTS,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Sharding equivalence
# ---------------------------------------------------------------------------
class TestShardingEquivalence:
    def test_identical_shard_fleet_equals_independent_runs(self):
        """Fleet(N identical shards) == N independent single-MN runs."""
        fleet = small_fleet(3)
        runner = ParallelRunner(jobs=1)
        streamed = run_fleet(fleet, runner=runner)

        independent = FleetResult(fleet)
        solo = ParallelRunner(jobs=1)
        for shard in range(fleet.num_shards):
            job = SimJob(
                config=replace(
                    small_config(), seed=derive_seed(fleet.seed, "fleet", str(shard))
                ),
                workload=fast_workload(),
                requests=REQUESTS,
            )
            independent.fold(shard, "default", solo.run_one(job))
        assert independent.digest() == streamed.digest()

    def test_default_tenant_is_digest_transparent(self):
        """A single default tenant compiles to exactly the base workload."""
        fleet = small_fleet(2)
        jobs = fleet.compile()
        for job in jobs:
            assert job.workload is fleet.workload
        plain = SimJob(
            config=replace(small_config(), seed=fleet.shard_seed(0)),
            workload=fast_workload(),
            requests=REQUESTS,
        )
        assert jobs[0].digest() == plain.digest()

    def test_streaming_fold_equals_batch_fold(self):
        """Folding in completion order == folding a batch in any order."""
        fleet = hetero_fleet(6)
        streamed = run_fleet(fleet, runner=ParallelRunner(jobs=1))

        runner = ParallelRunner(jobs=1)
        results = runner.run(fleet.compile())
        tenants = [tenant.name for tenant in fleet.shard_tenants()]
        batched = FleetResult(fleet)
        for shard in reversed(range(fleet.num_shards)):
            batched.fold(shard, tenants[shard], results[shard])
        assert batched.digest() == streamed.digest()
        assert batched.to_dict() == streamed.to_dict()

    def test_jobs1_vs_jobs4_bit_identical(self):
        fleet = hetero_fleet(8)
        serial = run_fleet(fleet, runner=ParallelRunner(jobs=1))
        parallel = run_fleet(fleet, runner=ParallelRunner(jobs=4))
        assert serial.digest() == parallel.digest()
        assert serial.to_dict() == parallel.to_dict()

    def test_shard_seeds_disjoint(self):
        fleet = small_fleet(2)
        seeds = {
            derive_seed(fleet.seed, "fleet", str(shard)) for shard in range(64)
        }
        assert len(seeds) == 64
        assert fleet.seed not in seeds
        assert fleet.shard_seed(0) == derive_seed(fleet.seed, "fleet", "0")
        # ... and per-shard results actually differ (streams are disjoint).
        result = run_fleet(small_fleet(2), runner=ParallelRunner(jobs=1))
        assert result.simulations_run == 2  # no digest collision / dedup


class TestCacheReplay:
    def test_warm_replay_costs_zero_simulations(self, tmp_path):
        fleet = hetero_fleet(6)
        cold_runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        cold = run_fleet(fleet, runner=cold_runner)
        assert cold.simulations_run == fleet.num_shards

        warm_runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        warm = run_fleet(fleet, runner=warm_runner)
        assert warm.simulations_run == 0
        assert warm.digest() == cold.digest()

    def test_memory_only_cache_still_replays_warm(self):
        fleet = small_fleet(3)
        runner = ParallelRunner(jobs=1)
        cold = run_fleet(fleet, runner=runner)
        warm = run_fleet(fleet, runner=runner)
        assert cold.simulations_run == 3
        assert warm.simulations_run == 0
        assert warm.digest() == cold.digest()

    def test_fold_keeps_memory_layer_bounded(self, tmp_path):
        """Peak resident shard detail is O(1), not O(shard count)."""
        fleet = hetero_fleet(12)
        runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        peak = 0

        def fold(index, job, result):
            nonlocal peak
            peak = max(peak, len(runner.cache._memory))

        runner.run_fold(fleet.compile(), fold)
        assert peak <= 2  # the in-flight entry, never the whole fleet
        assert len(runner.cache._memory) == 0


# ---------------------------------------------------------------------------
# Scale: the acceptance fleet
# ---------------------------------------------------------------------------
class TestFleetAtScale:
    def test_64_shard_heterogeneous_fleet(self, tmp_path):
        fleet = hetero_fleet(
            64,
            tenants=(
                Tenant("bulk", weight=3.0, skew=0.5),
                Tenant("latency", weight=1.0, rate_scale=2.0),
            ),
        )
        runner = ParallelRunner(jobs=4, cache=ResultCache(tmp_path))
        with audits():
            result = run_fleet(fleet, runner=runner)
        assert result.shards_folded == 64
        assert result.simulations_run == 64
        assert result.tenants["bulk"].shards == 48
        assert result.tenants["latency"].shards == 16
        for aggregate in result.tenants.values():
            assert aggregate.percentile_ns(0.99) is not None
            assert aggregate.requests == aggregate.shards * REQUESTS
        report = result.report()
        assert set(report) == {"bulk", "latency", "fleet"}
        assert report["fleet"]["requests"] == 64 * REQUESTS

        # Warm replay of the whole 64-shard fleet: zero simulations,
        # identical digest, even from a fresh process-like runner.
        replay = run_fleet(
            fleet, runner=ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        )
        assert replay.simulations_run == 0
        assert replay.digest() == result.digest()


# ---------------------------------------------------------------------------
# Tenant registry
# ---------------------------------------------------------------------------
class TestTenants:
    def test_largest_remainder_apportionment(self):
        fleet = small_fleet(
            4, tenants=(Tenant("a", weight=3.0), Tenant("b", weight=1.0))
        )
        names = [tenant.name for tenant in fleet.shard_tenants()]
        assert names == ["a", "a", "a", "b"]

    def test_apportionment_ties_break_by_registry_order(self):
        fleet = small_fleet(
            4, tenants=(Tenant("a"), Tenant("b"), Tenant("c"))
        )
        names = [tenant.name for tenant in fleet.shard_tenants()]
        assert names == ["a", "a", "b", "c"]

    def test_apportionment_is_contiguous_and_proportional(self):
        tenants = (
            Tenant("x", weight=5.0),
            Tenant("y", weight=2.0),
            Tenant("z", weight=3.0),
        )
        fleet = small_fleet(10, tenants=tenants)
        names = [tenant.name for tenant in fleet.shard_tenants()]
        assert names == ["x"] * 5 + ["y"] * 2 + ["z"] * 3

    def test_tenant_knobs_reach_the_shard_workload(self):
        fleet = small_fleet(
            2, tenants=(Tenant("skewed", skew=0.7, rate_scale=2.0),)
        )
        workload = fleet.shard_workload(0)
        assert workload.skew == 0.7
        assert workload.mean_gap_ns == fast_workload().mean_gap_ns / 2.0

    def test_skew_changes_results_but_stays_deterministic(self):
        runner = ParallelRunner(jobs=1)
        plain = run_fleet(small_fleet(2), runner=runner)
        skewed_fleet = small_fleet(2, tenants=(Tenant("t", skew=0.8),))
        skewed = run_fleet(skewed_fleet, runner=runner)
        again = run_fleet(skewed_fleet, runner=ParallelRunner(jobs=1))
        assert skewed.digest() != plain.digest()
        assert skewed.digest() == again.digest()

    def test_validation_rejects_bad_fleets(self):
        with pytest.raises(ConfigError, match="at least one shard"):
            run_fleet(
                FleetConfig(shards=(), workload=fast_workload())
            )
        with pytest.raises(ConfigError, match="duplicate tenant"):
            small_fleet(2, tenants=(Tenant("a"), Tenant("a"))).validate()
        with pytest.raises(ConfigError, match="skew"):
            Tenant("bad", skew=1.0).validate()
        with pytest.raises(ConfigError, match="weight"):
            Tenant("bad", weight=0.0).validate()
        with pytest.raises(ConfigError, match="shard 1"):
            FleetConfig(
                shards=(small_config(), small_config(topology="nope")),
                workload=fast_workload(),
            ).validate()


# ---------------------------------------------------------------------------
# Aggregation edge cases
# ---------------------------------------------------------------------------
class TestAggregationEdges:
    def test_histogram_shape_mismatch_raises_named_error(self):
        left = Histogram(bucket_width=100.0, num_buckets=8)
        right = Histogram(bucket_width=200.0, num_buckets=8)
        with pytest.raises(HistogramShapeError, match="different shapes"):
            left.merge(right)
        # Back-compat: pre-existing callers catch plain ValueError.
        assert issubclass(HistogramShapeError, ValueError)

    def test_accumulator_shape_mismatch_raises_named_error(self):
        acc = TailAccumulator()
        shaped = Histogram(bucket_width=100.0, num_buckets=8)
        shaped.add(50.0)
        acc.fold(shaped)
        other = Histogram(bucket_width=200.0, num_buckets=8)
        other.add(50.0)
        with pytest.raises(HistogramShapeError, match="different shapes"):
            acc.fold(other)

    def test_empty_histogram_fold_is_shape_neutral(self):
        """An empty shard's histogram folds as a no-op, whatever its shape."""
        acc = TailAccumulator()
        shaped = Histogram(bucket_width=100.0, num_buckets=8)
        shaped.add(250.0)
        acc.fold(shaped)
        before = acc.state()
        acc.fold(Histogram(bucket_width=999.0, num_buckets=3))  # empty
        assert acc.state() == before

    def test_empty_tenant_percentiles_absent_not_zero(self):
        """p99 of zero requests is None — it must never read as 0."""
        aggregate = TenantAggregate()
        assert aggregate.percentile_ns(0.99) is None
        assert aggregate.tails_ns() == {"p50": None, "p95": None, "p99": None}
        assert aggregate.availability == 1.0
        assert aggregate.goodput_rps == 0.0

    def test_zero_shard_tenant_does_not_poison_fleet(self):
        """A tenant apportioned zero shards reports absent percentiles."""
        fleet = small_fleet(
            2,
            tenants=(Tenant("big", weight=100.0), Tenant("tiny", weight=0.01)),
        )
        names = [tenant.name for tenant in fleet.shard_tenants()]
        assert names == ["big", "big"]
        result = run_fleet(fleet, runner=ParallelRunner(jobs=1))
        assert result.tenants["tiny"].percentile_ns(0.99) is None
        assert result.total.percentile_ns(0.99) is not None
        assert (
            result.total.percentile_ns(0.99)
            == result.tenants["big"].percentile_ns(0.99)
        )

    def test_fold_rejects_unknown_tenant(self):
        fleet = small_fleet(1)
        result = run_fleet(fleet, runner=ParallelRunner(jobs=1))
        with pytest.raises(ConfigError, match="unknown tenant"):
            FleetResult(fleet).fold(0, "nope", object())


# ---------------------------------------------------------------------------
# Conservation
# ---------------------------------------------------------------------------
class TestConservation:
    def test_audited_fleet_passes_conservation(self):
        with audits():
            result = run_fleet(hetero_fleet(6), runner=ParallelRunner(jobs=1))
        check_fleet_conservation(result)  # idempotent re-check

    def test_corrupted_fold_is_detected(self):
        result = run_fleet(small_fleet(2), runner=ParallelRunner(jobs=1))
        result.total.counters.add("reads", 1)
        with pytest.raises(InvariantViolation) as exc:
            check_fleet_conservation(result)
        assert "fleet-counter-conservation" in exc.value.invariants()
        assert exc.value.context["point"] == "fleet-fold"

    def test_lost_shard_is_detected(self):
        result = run_fleet(small_fleet(2), runner=ParallelRunner(jobs=1))
        result.shards_folded += 1
        with pytest.raises(InvariantViolation) as exc:
            check_fleet_conservation(result)
        assert "fleet-shard-conservation" in exc.value.invariants()


# ---------------------------------------------------------------------------
# Per-shard digests stay coherent with the single-MN world
# ---------------------------------------------------------------------------
class TestShardResultIdentity:
    def test_shard_result_digest_matches_direct_simulation(self):
        """The fleet's shard jobs are ordinary, independently cacheable
        single-MN jobs: running one directly reproduces its digest."""
        fleet = small_fleet(2)
        runner = ParallelRunner(jobs=1)
        shard_results = runner.run(fleet.compile())
        direct = ParallelRunner(jobs=1).run_one(fleet.compile()[1])
        assert result_digest(direct) == result_digest(shard_results[1])
