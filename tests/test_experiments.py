"""Smoke tests: every experiment runs end-to-end at reduced scale."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.experiments import ExperimentOutput, experiment_ids, get_experiment
from repro.experiments.base import BASELINE_CONFIGS, PROPOSED_CONFIGS
from repro.experiments.fig12 import combined_config
from repro.units import TIB_BYTES
from repro.workloads import get_workload

FAST_WORKLOADS = [get_workload("KMEANS"), get_workload("BACKPROP")]
SMALL_BASE = SystemConfig(total_capacity_bytes=TIB_BYTES)


class TestRegistry:
    def test_all_figures_and_tables_present(self):
        ids = experiment_ids()
        for required in (
            "table01",
            "table02",
            "fig04",
            "fig05",
            "fig07",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
        ):
            assert required in ids

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")


class TestConfigSets:
    def test_twelve_baseline_configs(self):
        assert len(BASELINE_CONFIGS) == 12

    def test_twelve_proposed_configs(self):
        assert len(PROPOSED_CONFIGS) == 12

    def test_combined_config_flags(self):
        config = combined_config("50%-SL (NVM-L)", SystemConfig())
        assert config.arbiter == "distance_enhanced"
        assert config.write_skip_hysteresis
        assert config.host.read_priority_injection

    def test_combined_config_baseline_untouched(self):
        config = combined_config("100%-C", SystemConfig())
        assert config.arbiter == "round_robin"

    def test_combined_config_tree_no_hysteresis(self):
        config = combined_config("100%-T", SystemConfig())
        assert config.arbiter == "distance_enhanced"
        assert not config.write_skip_hysteresis


class TestTables:
    def test_table01(self):
        output = get_experiment("table01")()
        assert isinstance(output, ExperimentOutput)
        assert "1333" in output.text and "2133" in output.text

    def test_table02(self):
        output = get_experiment("table02")()
        assert "tRCD=12ns" in output.text
        assert "2 TiB" in output.text


@pytest.mark.parametrize("experiment_id", ["fig04", "fig05", "fig07"])
def test_basic_figures_run(experiment_id):
    run = get_experiment(experiment_id)
    output = run(requests=150, workloads=FAST_WORKLOADS, base_config=SMALL_BASE)
    assert output.experiment_id == experiment_id
    assert "KMEANS" in output.text
    assert output.data


def test_fig10_reports_deltas():
    output = get_experiment("fig10")(
        requests=120, workloads=FAST_WORKLOADS[:1], base_config=SMALL_BASE
    )
    assert set(output.data["delta"]["KMEANS"]) == set(BASELINE_CONFIGS)


def test_fig11_and_fig12_report_proposed_configs():
    for experiment_id in ("fig11", "fig12"):
        output = get_experiment(experiment_id)(
            requests=120, workloads=FAST_WORKLOADS[:1], base_config=SMALL_BASE
        )
        assert set(output.data["speedups"]["KMEANS"]) == set(PROPOSED_CONFIGS)


def test_fig13_port_sensitivity_runs():
    output = get_experiment("fig13")(
        requests=120, workloads=FAST_WORKLOADS[:1], base_config=SMALL_BASE
    )
    assert "100%-C" in output.data["averages"]


def test_fig14_capacity_sensitivity_runs():
    output = get_experiment("fig14")(
        requests=120, workloads=FAST_WORKLOADS[:1], base_config=SMALL_BASE
    )
    assert "0%-C" in output.data["averages"]


def test_fig15_energy_reports_components():
    output = get_experiment("fig15")(
        requests=120, workloads=FAST_WORKLOADS[:1], base_config=SMALL_BASE
    )
    data = output.data["relative_energy"]
    assert data["100%-C"]["total"] == pytest.approx(100.0, abs=0.5)
    assert data["0%-C"]["network"] < data["100%-C"]["network"]


@pytest.mark.parametrize(
    "experiment_id",
    ["ablation_arbiters", "ablation_interleave", "ablation_serdes", "ablation_ratio"],
)
def test_ablations_run(experiment_id):
    output = get_experiment(experiment_id)(
        requests=100, workloads=FAST_WORKLOADS[:1], base_config=SMALL_BASE
    )
    assert output.text


class TestDiagrams:
    def test_fig03_structural(self):
        output = get_experiment("fig03")()
        assert "mean distance" in output.text

    def test_fig08_five_hop_skiplist(self):
        output = get_experiment("fig08")()
        assert "5 hops | # (1)" in output.text
        assert output.text.count("\\") == 5

    def test_fig09_metacube_interposer_links(self):
        output = get_experiment("fig09")()
        assert "~~" in output.text
        assert "sw" in output.text


@pytest.mark.parametrize("experiment_id", ["ablation_window", "ablation_buffers"])
def test_new_ablations_run(experiment_id):
    output = get_experiment(experiment_id)(
        requests=80, workloads=FAST_WORKLOADS[:1], base_config=SMALL_BASE
    )
    assert output.text and output.data


def test_parking_lot_analysis_runs():
    output = get_experiment("analysis_parking_lot")(
        requests=150, workloads=FAST_WORKLOADS[:1], base_config=SMALL_BASE
    )
    waits = output.data["transit_wait_ns"]
    assert set(waits) == {"round_robin", "distance"}
    assert all(value >= 0 for value in waits.values())
