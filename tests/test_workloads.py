"""Tests for workload specs, the synthetic generator, and the suite."""

import pytest

from repro.errors import WorkloadError
from repro.units import GIB_BYTES
from repro.workloads import (
    PAPER_SUITE,
    SyntheticWorkload,
    Trace,
    TraceWorkload,
    WorkloadSpec,
    get_workload,
    workload_names,
)

from conftest import fast_workload


def generate(spec, count=2000, capacity=GIB_BYTES, seed=1, ports=None):
    workload = SyntheticWorkload(spec, capacity, seed, num_ports=ports)
    return [next(workload) for _ in range(count)]


class TestSpecValidation:
    def test_valid_spec(self):
        fast_workload().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("read_fraction", 1.5),
            ("mean_gap_ns", -1.0),
            ("locality_lines", 0.5),
            ("rmw_fraction", -0.1),
            ("footprint_fraction", 0.0),
            ("line_bytes", 48),
            ("mlp", 0),
            ("burst_size", 0.5),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(WorkloadError):
            fast_workload(**{field: value}).validate()

    def test_gap_scaling_preserves_system_load(self):
        spec = fast_workload(mean_gap_ns=2.0)
        # 8 ports -> per-port gap 2 ns; 4 ports -> each port carries 2x
        assert spec.scaled_gap_ns(8) == pytest.approx(2.0)
        assert spec.scaled_gap_ns(4) == pytest.approx(1.0)
        assert spec.scaled_gap_ns(16) == pytest.approx(4.0)

    def test_with_copy(self):
        spec = fast_workload()
        other = spec.with_(mlp=99)
        assert other.mlp == 99 and spec.mlp == 16


class TestSyntheticGenerator:
    def test_deterministic_for_seed(self):
        spec = fast_workload()
        a = generate(spec, seed=5)
        b = generate(spec, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        spec = fast_workload()
        assert generate(spec, seed=1) != generate(spec, seed=2)

    def test_read_fraction_respected(self):
        spec = fast_workload(read_fraction=0.7, rmw_fraction=0.0)
        requests = generate(spec, 20_000)
        writes = sum(r.is_write for r in requests) / len(requests)
        assert writes == pytest.approx(0.3, abs=0.02)

    def test_addresses_inside_footprint(self):
        spec = fast_workload(footprint_fraction=0.5)
        capacity = GIB_BYTES
        for request in generate(spec, 5000, capacity=capacity):
            assert 0 <= request.address < capacity * 0.5

    def test_addresses_line_aligned(self):
        for request in generate(fast_workload(), 500):
            assert request.address % 64 == 0

    def test_locality_produces_sequential_runs(self):
        spec = fast_workload(locality_lines=16.0, rmw_fraction=0.0)
        requests = generate(spec, 5000)
        sequential = sum(
            1
            for a, b in zip(requests, requests[1:])
            if b.address - a.address == 64
        )
        assert sequential / len(requests) > 0.7

    def test_rmw_emits_write_after_read_same_line(self):
        spec = fast_workload(read_fraction=1.0, rmw_fraction=1.0)
        requests = generate(spec, 100)
        pairs = list(zip(requests, requests[1:]))
        rmw_pairs = [
            (a, b)
            for a, b in pairs
            if not a.is_write and b.is_write and a.address == b.address
        ]
        assert len(rmw_pairs) >= 40  # every other request pair is a RMW

    def test_mean_gap_preserved_with_bursts(self):
        spec = fast_workload(mean_gap_ns=2.0, burst_size=8.0)
        requests = generate(spec, 50_000)
        mean_gap = sum(r.gap_ps for r in requests) / len(requests)
        assert mean_gap == pytest.approx(2000, rel=0.15)

    def test_bursts_have_zero_intra_gaps(self):
        spec = fast_workload(burst_size=16.0)
        requests = generate(spec, 2000)
        zero_gaps = sum(1 for r in requests if r.gap_ps == 0)
        assert zero_gaps / len(requests) > 0.5

    def test_tiny_footprint_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkload(fast_workload(), 32, seed=1)


class TestPaperSuite:
    def test_eight_workloads(self):
        assert len(PAPER_SUITE) == 8
        assert set(workload_names()) == {
            "BACKPROP",
            "BIT",
            "BUFF",
            "DCT",
            "HOTSPOT",
            "KMEANS",
            "MATRIXMUL",
            "NW",
        }

    def test_lookup_case_insensitive(self):
        assert get_workload("kmeans").name == "KMEANS"

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            get_workload("DOOM")

    def test_backprop_is_write_heavy(self):
        """Section 3.2: BACKPROP has significantly more writes than reads."""
        assert get_workload("BACKPROP").read_fraction < 0.5

    def test_kmeans_is_most_read_intensive(self):
        kmeans = get_workload("KMEANS").read_fraction
        assert all(
            kmeans >= spec.read_fraction for spec in PAPER_SUITE.values()
        )

    def test_read_heavy_trio(self):
        """KMEANS/MATRIXMUL/NW have at least two reads per write."""
        for name in ("KMEANS", "MATRIXMUL", "NW"):
            assert get_workload(name).read_fraction >= 2 / 3 - 1e-9

    def test_nw_has_lowest_network_load(self):
        nw_gap = get_workload("NW").mean_gap_ns
        assert all(
            nw_gap >= spec.mean_gap_ns for spec in PAPER_SUITE.values()
        )

    def test_all_specs_validate(self):
        for spec in PAPER_SUITE.values():
            spec.validate()
