"""Tests for capacity-weighted address interleaving."""

import pytest

from repro.config import ConfigError
from repro.host.address_map import AddressMap, smooth_weighted_order
from repro.units import GIB_BYTES


def make_map(capacities, interleave=256, banks=256, quadrants=4, row_bytes=2048):
    return AddressMap(
        cube_capacities=capacities,
        interleave_bytes=interleave,
        row_bytes=row_bytes,
        banks_per_stack=banks,
        num_quadrants=quadrants,
    )


class TestSmoothWeightedOrder:
    def test_equal_weights_round_robin(self):
        assert smooth_weighted_order([1, 1, 1]) == [0, 1, 2]

    def test_total_length_is_weight_sum(self):
        assert len(smooth_weighted_order([1, 4, 2])) == 7

    def test_each_item_appears_weight_times(self):
        pattern = smooth_weighted_order([2, 5, 1])
        assert pattern.count(0) == 2
        assert pattern.count(1) == 5
        assert pattern.count(2) == 1

    def test_heavy_item_interleaved_not_clustered(self):
        pattern = smooth_weighted_order([1, 1, 4])
        # the heavy item should never occupy 3+ consecutive slots
        runs = max(
            len(list(run))
            for run in _runs(pattern)
        )
        assert runs <= 2

    def test_invalid_weights(self):
        with pytest.raises(ConfigError):
            smooth_weighted_order([])
        with pytest.raises(ConfigError):
            smooth_weighted_order([1, 0])


def _runs(pattern):
    current = []
    for item in pattern:
        if current and current[-1] != item:
            yield current
            current = []
        current.append(item)
    yield current


class TestUniformMap:
    def test_total_bytes(self):
        amap = make_map([GIB_BYTES] * 4)
        assert amap.total_bytes == 4 * GIB_BYTES

    def test_block_rotation(self):
        amap = make_map([GIB_BYTES] * 4)
        cubes = [amap.decode(block * 256).cube_index for block in range(8)]
        assert cubes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_offset_within_block(self):
        amap = make_map([GIB_BYTES] * 4)
        loc = amap.decode(256 + 17)
        assert loc.cube_index == 1
        assert loc.offset == 17

    def test_same_block_same_location(self):
        amap = make_map([GIB_BYTES] * 4)
        a = amap.decode(0x1000)
        b = amap.decode(0x10ff & ~0xFF | 0x1000)
        assert a.cube_index == amap.decode(0x10FF).cube_index

    def test_out_of_range_rejected(self):
        amap = make_map([GIB_BYTES])
        with pytest.raises(ConfigError):
            amap.decode(GIB_BYTES)
        with pytest.raises(ConfigError):
            amap.decode(-1)

    def test_row_and_bank_fields_in_range(self):
        amap = make_map([GIB_BYTES] * 2, banks=64, quadrants=4)
        for address in range(0, 2 * GIB_BYTES, 977 * 4096):
            loc = amap.decode(address)
            assert 0 <= loc.quadrant < 4
            assert 0 <= loc.bank < 16  # 64 banks / 4 quadrants
            assert loc.row >= 0

    def test_sequential_blocks_on_cube_share_row(self):
        """Blocks that land on the same cube fill a row before moving on."""
        amap = make_map([GIB_BYTES] * 4, row_bytes=2048)
        # cube 0 receives blocks 0, 4, 8, ... -> local blocks 0, 1, 2 ...
        locations = [amap.decode(block * 4 * 256) for block in range(8)]
        assert all(l.cube_index == 0 for l in locations)
        assert len({l.row for l in locations}) == 1
        assert len({l.bank for l in locations + [amap.decode(8 * 4 * 256)]}) >= 1


class TestWeightedMap:
    def test_nvm_gets_4x_share(self):
        # 4 DRAM (16 GiB) + 1 NVM (64 GiB)
        amap = make_map([16 * GIB_BYTES] * 4 + [64 * GIB_BYTES])
        assert amap.weights == [1, 1, 1, 1, 4]
        assert amap.cube_share(4) == pytest.approx(0.5)
        assert amap.cube_share(0) == pytest.approx(0.125)

    def test_share_matches_decode_distribution(self):
        amap = make_map([16 * GIB_BYTES, 64 * GIB_BYTES])
        hits = [0, 0]
        blocks = 5000
        for block in range(blocks):
            hits[amap.decode(block * 256).cube_index] += 1
        assert hits[1] / blocks == pytest.approx(0.8, abs=0.01)

    def test_local_block_sequence_is_dense(self):
        """Every cube's local block counter advances without holes."""
        amap = make_map([16 * GIB_BYTES, 64 * GIB_BYTES], banks=8, quadrants=4)
        seen_rows = {}
        # walk enough blocks to cover several pattern cycles
        per_cube_blocks = {0: [], 1: []}
        for block in range(40):
            loc = amap.decode(block * 256)
            blocks_per_row = 2048 // 256
            local = (
                loc.row * (8 * blocks_per_row)
                + (loc.bank * 4 + loc.quadrant) * blocks_per_row
            )
            per_cube_blocks[loc.cube_index].append(local)
        # the reconstructed local block indexes grow without gaps per row
        for cube, locals_ in per_cube_blocks.items():
            assert locals_ == sorted(locals_)


class TestValidation:
    def test_requires_cubes(self):
        with pytest.raises(ConfigError):
            make_map([])

    def test_interleave_power_of_two(self):
        with pytest.raises(ConfigError):
            make_map([GIB_BYTES], interleave=300)

    def test_row_multiple_of_interleave(self):
        with pytest.raises(ConfigError):
            make_map([GIB_BYTES], interleave=256, row_bytes=1000)
