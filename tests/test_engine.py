"""Tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_initial_state():
    engine = Engine()
    assert engine.now == 0
    assert engine.pending == 0
    assert engine.events_processed == 0


def test_single_event_fires_at_time():
    engine = Engine()
    fired = []
    engine.schedule(5, lambda eng: fired.append(eng.now))
    engine.run()
    assert fired == [5]
    assert engine.now == 5


def test_events_fire_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(30, lambda eng: order.append("c"))
    engine.schedule(10, lambda eng: order.append("a"))
    engine.schedule(20, lambda eng: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    engine = Engine()
    order = []
    for tag in "abcde":
        engine.schedule(7, lambda eng, t=tag: order.append(t))
    engine.run()
    assert order == list("abcde")


def test_zero_delay_allowed():
    engine = Engine()
    fired = []
    engine.schedule(0, lambda eng: fired.append(eng.now))
    engine.run()
    assert fired == [0]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda eng: None)


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda eng: eng.schedule_at(5, lambda e: None))
    with pytest.raises(SimulationError):
        engine.run()


def test_events_scheduled_during_run_are_processed():
    engine = Engine()
    fired = []

    def first(eng):
        fired.append(("first", eng.now))
        eng.schedule(3, second)

    def second(eng):
        fired.append(("second", eng.now))

    engine.schedule(2, first)
    engine.run()
    assert fired == [("first", 2), ("second", 5)]


def test_run_until_leaves_future_events_queued():
    engine = Engine()
    fired = []
    engine.schedule(5, lambda eng: fired.append(5))
    engine.schedule(50, lambda eng: fired.append(50))
    engine.run(until=10)
    assert fired == [5]
    assert engine.pending == 1
    assert engine.now == 10
    engine.run()
    assert fired == [5, 50]


def test_run_until_advances_clock_when_queue_empty():
    engine = Engine()
    engine.run(until=123)
    assert engine.now == 123


def test_max_events_raises_on_livelock():
    engine = Engine()

    def rescheduling(eng):
        eng.schedule(1, rescheduling)

    engine.schedule(0, rescheduling)
    with pytest.raises(SimulationError, match="event limit"):
        engine.run(max_events=100)


def test_stop_when_predicate_halts_run():
    engine = Engine()
    fired = []
    for t in range(10):
        engine.schedule(t, lambda eng: fired.append(eng.now))
    engine.run(stop_when=lambda: len(fired) >= 3)
    assert len(fired) == 3
    assert engine.pending == 7


def test_drain_clears_queue():
    engine = Engine()
    engine.schedule(5, lambda eng: None)
    engine.schedule(6, lambda eng: None)
    engine.drain()
    assert engine.pending == 0
    engine.run()
    assert engine.now == 0


def test_callback_args_passed_through():
    engine = Engine()
    seen = []
    engine.schedule(1, lambda eng, a, b: seen.append((a, b)), "x", 42)
    engine.run()
    assert seen == [("x", 42)]


def test_events_processed_accumulates_across_runs():
    engine = Engine()
    engine.schedule(1, lambda eng: None)
    engine.run()
    engine.schedule(1, lambda eng: None)
    engine.run()
    assert engine.events_processed == 2


def test_run_returns_processed_count():
    engine = Engine()
    for t in range(4):
        engine.schedule(t, lambda eng: None)
    assert engine.run() == 4


def test_stop_when_combined_with_until():
    # The predicate must win even when a time bound is also active.
    engine = Engine()
    fired = []
    for t in range(10):
        engine.schedule(t, lambda eng: fired.append(eng.now))
    engine.run(until=100, stop_when=lambda: len(fired) >= 2)
    assert fired == [0, 1]
    assert engine.pending == 8
    # the clock stays at the stopping event, not the until bound
    assert engine.now == 1


def test_until_combined_with_stop_when_that_never_fires():
    engine = Engine()
    fired = []
    engine.schedule(5, lambda eng: fired.append(5))
    engine.schedule(50, lambda eng: fired.append(50))
    engine.run(until=10, stop_when=lambda: False)
    assert fired == [5]
    assert engine.now == 10
    assert engine.pending == 1


def test_max_events_counts_events_before_raise():
    # The events that ran before the limit tripped must still be
    # reflected in events_processed (no double count, no loss).
    engine = Engine()

    def rescheduling(eng):
        eng.schedule(1, rescheduling)

    engine.schedule(0, rescheduling)
    with pytest.raises(SimulationError, match="event limit"):
        engine.run(max_events=7)
    assert engine.events_processed == 7


def test_max_events_accumulates_across_successful_runs():
    engine = Engine()
    for t in range(3):
        engine.schedule(t, lambda eng: None)
    engine.run(max_events=100)
    assert engine.events_processed == 3
    for t in range(2):
        engine.schedule(engine.now + 1 + t, lambda eng: None)
    engine.run(max_events=100)
    assert engine.events_processed == 5


def test_run_until_in_past_does_not_rewind_clock():
    engine = Engine()
    engine.schedule(20, lambda eng: None)
    engine.run()
    assert engine.now == 20
    engine.run(until=5)
    assert engine.now == 20


def test_run_until_empty_queue_repeated():
    engine = Engine()
    engine.run(until=10)
    engine.run(until=30)
    assert engine.now == 30
    assert engine.events_processed == 0
