"""First-principles latency validation.

These tests compute the expected end-to-end latency of isolated
requests from the configuration's raw parameters and assert the
simulator reproduces them exactly — catching any silent change to the
timing model.
"""

import pytest

from repro.config import SystemConfig
from repro.net.packet import Transaction
from repro.system import MemoryNetworkSystem
from repro.units import GIB_BYTES, serialization_ps
from repro.workloads import Request

from conftest import fast_workload, small_config


def run_requests(config, requests):
    captured = []
    system = MemoryNetworkSystem(
        config,
        fast_workload(),
        requests=len(requests),
        workload_iter=iter(requests),
    )
    original = system._transaction_done

    def capture(engine, txn):
        captured.append(txn)
        original(engine, txn)

    system.port.on_transaction_done = capture
    system.run()
    return system, captured


def expected_single_read_ps(config, hops=1):
    """Closed-bank read to a quadrant-0 cube ``hops`` links away."""
    link = config.link
    control = serialization_ps(config.packet.control_bits, link.lanes, link.lane_gbps)
    data = serialization_ps(config.packet.data_bits, link.lanes, link.lane_gbps)
    per_hop_extra = link.serdes_latency_ps + link.propagation_ps
    request_path = hops * (control + per_hop_extra)
    response_path = hops * (data + per_hop_extra)
    array = config.dram.trcd_ps + config.dram.tcl_ps  # closed bank
    port = 2 * config.host.port_latency_ps
    return port + request_path + array + response_path


class TestSingleRequestLatency:
    def test_read_to_nearest_cube_exact(self):
        config = small_config()
        system, txns = run_requests(config, [Request(0, False, 0)])
        # address 0 -> cube position 0 (1 hop), quadrant 0 (no penalty)
        assert txns[0].location.quadrant == 0
        assert txns[0].total_ps == expected_single_read_ps(config, hops=1)

    def test_read_to_last_cube_in_chain_exact(self):
        config = small_config(topology="chain")
        system = MemoryNetworkSystem(config, fast_workload(), requests=1)
        cubes = len(system.cubes)
        # the last pattern slot belongs to the last cube; quadrant 0
        address = (cubes - 1) * config.host.interleave_bytes
        _, txns = run_requests(config, [Request(address, False, 0)])
        assert txns[0].location.cube_index == cubes - 1
        assert txns[0].total_ps == expected_single_read_ps(config, hops=cubes)

    def test_write_latency_uses_data_request_control_ack(self):
        config = small_config()
        link = config.link
        control = serialization_ps(
            config.packet.control_bits, link.lanes, link.lane_gbps
        )
        data = serialization_ps(config.packet.data_bits, link.lanes, link.lane_gbps)
        per_hop = link.serdes_latency_ps
        array = config.dram.trcd_ps + config.dram.tcl_ps
        expected = (
            2 * config.host.port_latency_ps
            + (data + per_hop)  # write request carries data
            + array
            + (control + per_hop)  # ack is a control packet
        )
        _, txns = run_requests(config, [Request(0, True, 0)])
        assert txns[0].total_ps == expected

    def test_row_hit_saves_trcd(self):
        config = small_config()
        # generate the second read only after the first fully completes,
        # so it finds the row open and the bank idle
        reqs = [Request(0, False, 300_000), Request(64, False, 0)]
        _, txns = run_requests(config, reqs)
        first, second = sorted(txns, key=lambda t: t.complete_ps)
        assert second.row_hit
        assert first.in_memory_ps - second.in_memory_ps == config.dram.trcd_ps

    def test_wrong_quadrant_penalty_applied(self):
        config = small_config()
        system = MemoryNetworkSystem(config, fast_workload(), requests=1)
        amap = system.address_map
        # find an address mapping to cube 0, quadrant 1
        address = None
        for block in range(4096):
            loc = amap.decode(block * 256)
            if loc.cube_index == 0 and loc.quadrant == 1:
                address = block * 256
                break
        assert address is not None
        _, txns = run_requests(config, [Request(address, False, 0)])
        baseline = expected_single_read_ps(config, hops=1)
        assert txns[0].total_ps == baseline + config.cube.wrong_quadrant_penalty_ps

    def test_nvm_read_costs_more_array_time(self):
        config = small_config(dram_fraction=0.5)
        system = MemoryNetworkSystem(config, fast_workload(), requests=1)
        amap = system.address_map
        nvm_index = amap.weights.index(max(amap.weights))
        dram_addr = nvm_addr = None
        for block in range(4096):
            loc = amap.decode(block * 256)
            if loc.quadrant == 0:
                if loc.cube_index == nvm_index and nvm_addr is None:
                    nvm_addr = block * 256
                elif loc.cube_index != nvm_index and dram_addr is None:
                    dram_addr = block * 256
            if dram_addr is not None and nvm_addr is not None:
                break
        _, txns = run_requests(
            config,
            [Request(dram_addr, False, 200_000), Request(nvm_addr, False, 0)],
        )
        dram_txn = next(t for t in txns if t.dest_tech == "DRAM")
        nvm_txn = next(t for t in txns if t.dest_tech == "NVM")
        assert nvm_txn.in_memory_ps - dram_txn.in_memory_ps == (
            (config.nvm.trcd_ps + config.nvm.tcl_ps)
            - (config.dram.trcd_ps + config.dram.tcl_ps)
        )


class TestBackToBackThroughput:
    def test_host_link_serializes_requests(self):
        """Two zero-gap reads to different far cubes leave one
        serialization apart (single shared host link)."""
        config = small_config(topology="chain")
        link = config.link
        control = serialization_ps(
            config.packet.control_bits, link.lanes, link.lane_gbps
        )
        reqs = [Request(0, False, 0), Request(256, False, 0)]
        _, txns = run_requests(config, reqs)
        injected = sorted(t.inject_ps for t in txns)
        arrive = sorted(t.mem_arrive_ps for t in txns)
        # cube 1 and cube 2 requests share the first link
        assert arrive[0] < arrive[1]
