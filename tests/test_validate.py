"""Tests for the built-in self-check module."""

import pytest

from repro.__main__ import main as cli_main
from repro.validate import CheckResult, all_passed, run_self_check

from conftest import small_config


class TestSelfCheck:
    @pytest.mark.parametrize(
        "topology", ["chain", "ring", "tree", "skiplist", "metacube"]
    )
    def test_all_checks_pass_on_every_topology(self, topology):
        results = run_self_check(small_config(topology=topology))
        assert all_passed(results), [str(r) for r in results if not r.passed]

    def test_mixed_nvm_config_passes(self):
        results = run_self_check(small_config(dram_fraction=0.5))
        assert all_passed(results)

    def test_check_names_unique(self):
        results = run_self_check(small_config())
        names = [result.name for result in results]
        assert len(names) == len(set(names))
        assert "single_read_latency" in names

    def test_result_string_format(self):
        result = CheckResult("demo", True, "ok")
        assert str(result) == "[PASS] demo: ok"
        assert "[FAIL]" in str(CheckResult("demo", False, "bad"))


class TestSelfCheckCli:
    def test_cli_exit_zero_on_pass(self, capsys):
        # use the default (full-size) chain — still fast enough
        assert cli_main(["selfcheck", "--topology", "tree"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out
