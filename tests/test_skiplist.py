"""Tests for the skip-list topology (Section 4.2 / Fig 8)."""

import math

import pytest

from repro.errors import TopologyError
from repro.net.routing import RouteClass, RouteTable
from repro.topology import build_skiplist
from repro.topology.base import HOST_ID
from repro.topology.placement import position_distances
from repro.topology.skiplist import plan_skip_links


class TestSkipPlanning:
    def test_fig8_structure_for_16_cubes(self):
        # the recursive bisection reproduces the Fig 8 skip set
        assert plan_skip_links(16) == [(0, 8), (0, 4), (4, 6), (8, 12), (12, 14)]

    def test_port_budget_respected(self):
        for n in range(1, 64):
            skips = plan_skip_links(n)
            ports = {}
            for position in range(n):
                ports[position] = 1 + (1 if position < n - 1 else 0)
            for a, b in skips:
                ports[a] += 1
                ports[b] += 1
            assert max(ports.values()) <= 4, f"budget violated at n={n}"

    def test_no_duplicate_skips(self):
        for n in (8, 10, 16, 32):
            skips = plan_skip_links(n)
            assert len(skips) == len(set(skips))

    def test_tiny_lists_have_no_skips(self):
        assert plan_skip_links(1) == []
        assert plan_skip_links(2) == []

    def test_invalid_count(self):
        with pytest.raises(TopologyError):
            plan_skip_links(0)


class TestSkiplistTopology:
    def test_validates(self):
        for n in (1, 4, 10, 16, 32):
            build_skiplist(["DRAM"] * n).validate()

    def test_farthest_cube_five_hops_at_16(self):
        # the paper: "the farthest cube can be reached in only five hops"
        topo = build_skiplist(["DRAM"] * 16)
        assert position_distances(topo)[-1] == 5

    def test_read_distance_near_logarithmic(self):
        for n in (8, 16, 32):
            topo = build_skiplist(["DRAM"] * n)
            worst = max(position_distances(topo))
            assert worst <= 2 * math.ceil(math.log2(n)) + 1

    def test_write_class_restricted_to_chain(self):
        topo = build_skiplist(["DRAM"] * 16)
        table = RouteTable(topo.adjacency_by_class(), HOST_ID, topo.cube_ids())
        last = topo.cube_ids()[-1]
        write_route = table.route_to_cube(last, RouteClass.WRITE)
        assert len(write_route) - 1 == 16  # full chain for writes
        read_route = table.route_to_cube(last, RouteClass.READ)
        assert len(read_route) - 1 == 5

    def test_skip_edges_are_read_only(self):
        topo = build_skiplist(["DRAM"] * 16)
        skip_edges = [e for e in topo.edges if not e.is_chain]
        assert skip_edges, "expected skip links"
        for edge in skip_edges:
            assert RouteClass.WRITE not in edge.classes
            assert RouteClass.READ in edge.classes

    def test_chain_edges_carry_both_classes(self):
        topo = build_skiplist(["DRAM"] * 16)
        for edge in topo.edges:
            if edge.is_chain:
                assert RouteClass.WRITE in edge.classes

    def test_reads_strictly_faster_than_chain_on_average(self):
        n = 16
        topo = build_skiplist(["DRAM"] * n)
        read_distances = position_distances(topo)
        chain_distances = list(range(1, n + 1))
        assert sum(read_distances) < sum(chain_distances)
