"""Tests for the energy model and result aggregation."""

import pytest

from repro.config import EnergyConfig, PacketConfig, dram_tech, nvm_tech
from repro.energy import EnergyModel
from repro.net.packet import Transaction
from repro.results import (
    EnergyReport,
    LatencyBreakdown,
    SimResult,
    TransactionCollector,
)


def make_model(**kwargs):
    return EnergyModel(EnergyConfig(), PacketConfig(), **kwargs)


class TestEnergyModel:
    def test_network_energy_is_5pj_per_bit_hop(self):
        report = make_model().report(1000, 0, [])
        assert report.network_pj == pytest.approx(5000.0)

    def test_interposer_cheaper_than_external(self):
        model = make_model()
        external = model.report(1000, 0, []).total_pj
        interposer = model.report(0, 1000, []).total_pj
        assert interposer < external

    def test_dram_access_energy(self):
        dram = dram_tech()
        report = make_model().report(0, 0, [(dram, 10, 5)])
        payload_bits = 64 * 8
        assert report.memory_read_pj == pytest.approx(10 * payload_bits * 12.0)
        assert report.memory_write_pj == pytest.approx(5 * payload_bits * 12.0)

    def test_nvm_writes_10x_reads(self):
        nvm = nvm_tech()
        report = make_model().report(0, 0, [(nvm, 1, 1)])
        assert report.memory_write_pj == pytest.approx(10 * report.memory_read_pj)

    def test_total_sums_components(self):
        report = EnergyReport(
            network_pj=1.0, interposer_pj=2.0, memory_read_pj=3.0, memory_write_pj=4.0
        )
        assert report.total_pj == 10.0

    def test_mixed_cubes_accumulate(self):
        report = make_model().report(
            0, 0, [(dram_tech(), 4, 4), (nvm_tech(), 4, 4)]
        )
        payload_bits = 64 * 8
        assert report.memory_write_pj == pytest.approx(
            4 * payload_bits * 12.0 + 4 * payload_bits * 120.0
        )


def finished_txn(is_write=False, start=0, arrive=100, depart=150, done=250,
                 tech="DRAM", hit=True):
    txn = Transaction(0x40, is_write, port_id=0, issue_ps=0)
    txn.start_ps = start
    txn.mem_arrive_ps = arrive
    txn.mem_depart_ps = depart
    txn.complete_ps = done
    txn.dest_tech = tech
    txn.row_hit = hit
    txn.request_hops = 3
    txn.response_hops = 3
    return txn


class TestLatencyBreakdown:
    def test_accumulates_means(self):
        breakdown = LatencyBreakdown()
        breakdown.add(finished_txn())
        breakdown.add(finished_txn(arrive=200, depart=260, done=400))
        assert breakdown.to_memory.mean == pytest.approx(150.0)
        assert breakdown.in_memory.mean == pytest.approx(55.0)

    def test_fractions_sum_to_one(self):
        breakdown = LatencyBreakdown()
        breakdown.add(finished_txn())
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestCollector:
    def test_read_write_split(self):
        collector = TransactionCollector()
        collector.add(finished_txn(is_write=False))
        collector.add(finished_txn(is_write=True))
        collector.add(finished_txn(is_write=True))
        assert collector.reads == 1
        assert collector.writes == 2
        assert collector.count == 3

    def test_row_hits_and_nvm_counts(self):
        collector = TransactionCollector()
        collector.add(finished_txn(hit=True, tech="NVM"))
        collector.add(finished_txn(hit=False))
        assert collector.row_hits == 1
        assert collector.nvm_accesses == 1

    def test_last_complete_tracked(self):
        collector = TransactionCollector()
        collector.add(finished_txn(done=500))
        collector.add(finished_txn(done=300))
        assert collector.last_complete_ps == 500


def make_result(runtime_ps=1000, label="100%-C", workload="TEST"):
    collector = TransactionCollector()
    collector.add(finished_txn())
    return SimResult(
        config_label=label,
        workload=workload,
        runtime_ps=runtime_ps,
        collector=collector,
        energy=EnergyReport(),
        mean_distance=2.0,
        max_distance=4.0,
    )


class TestSimResult:
    def test_speedup_over(self):
        fast = make_result(runtime_ps=1000)
        slow = make_result(runtime_ps=1500)
        assert fast.speedup_over(slow) == pytest.approx(0.5)
        assert slow.speedup_over(fast) == pytest.approx(-1 / 3)

    def test_headline_metrics(self):
        result = make_result()
        assert result.runtime_ns == pytest.approx(1.0)
        assert result.transactions == 1
        assert result.read_fraction == 1.0
        assert result.row_hit_rate == 1.0

    def test_summary_contains_label(self):
        assert "100%-C" in make_result().summary()
