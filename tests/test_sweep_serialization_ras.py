"""Tests for sweeps, serialization, RAS fault injection, and warmup."""

import json

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError, TopologyError
from repro.serialization import (
    compare_summary,
    load_results,
    result_to_dict,
    save_results,
)
from repro.sweep import Sweep, set_config_field
from repro.system import MemoryNetworkSystem, simulate
from repro.topology import build_topology
from repro.units import GIB_BYTES

from conftest import fast_workload, small_config


class TestSetConfigField:
    def test_top_level_field(self):
        config = set_config_field(SystemConfig(), "topology", "tree")
        assert config.topology == "tree"

    def test_dotted_field(self):
        config = set_config_field(SystemConfig(), "host.num_ports", 4)
        assert config.host.num_ports == 4

    def test_dotted_link_field(self):
        config = set_config_field(SystemConfig(), "link.serdes_latency_ps", 0)
        assert config.link.serdes_latency_ps == 0

    def test_unknown_field(self):
        with pytest.raises(ConfigError):
            set_config_field(SystemConfig(), "warp_factor", 9)
        with pytest.raises(ConfigError):
            set_config_field(SystemConfig(), "host.warp_factor", 9)
        with pytest.raises(ConfigError):
            set_config_field(SystemConfig(), "warp.factor", 9)


class TestSweep:
    def test_points_cartesian_product(self):
        sweep = (
            Sweep(fast_workload(), requests=10, base_config=small_config())
            .over("topology", ["chain", "tree"])
            .over("arbiter", ["round_robin", "distance"])
        )
        points = sweep.points()
        assert len(points) == 4
        assert {"topology": "tree", "arbiter": "distance"} in points

    def test_run_produces_metrics(self):
        rows = (
            Sweep(fast_workload(), requests=100, base_config=small_config())
            .over("topology", ["chain", "tree"])
            .run()
        )
        assert len(rows) == 2
        for row in rows:
            assert row["runtime_us"] > 0
            assert row["latency_ns"] > 0
            assert "label" in row

    def test_invalid_points_skipped(self):
        rows = (
            Sweep(fast_workload(), requests=50, base_config=small_config())
            .over("dram_fraction", [1.0, 0.37])
            .run()
        )
        assert len(rows) == 1

    def test_invalid_points_recorded_when_asked(self):
        rows = (
            Sweep(fast_workload(), requests=50, base_config=small_config())
            .over("dram_fraction", [0.37])
            .run(skip_invalid=False)
        )
        assert "error" in rows[0]

    def test_render(self):
        sweep = Sweep(
            fast_workload(), requests=60, base_config=small_config()
        ).over("topology", ["chain"])
        text = sweep.render()
        assert "runtime_us" in text

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            Sweep(fast_workload()).over("topology", [])


class TestSerialization:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate(small_config(), fast_workload(), requests=120)

    def test_dict_fields(self, result):
        payload = result_to_dict(result)
        assert payload["transactions"] == 120
        assert payload["latency"]["total_ns"] > 0
        assert payload["energy_pj"]["total"] == pytest.approx(
            result.energy.total_pj
        )
        json.dumps(payload)  # must be JSON-serializable

    def test_save_load_roundtrip(self, result, tmp_path):
        path = tmp_path / "results.json"
        save_results([result, result], path)
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0]["config"] == result.config_label

    def test_load_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_results(path)

    def test_compare_summary(self, result):
        base = result_to_dict(result)
        cand = dict(base, runtime_ps=base["runtime_ps"] * 2)
        summary = compare_summary(base, cand)
        assert summary["speedup_percent"] == pytest.approx(-50.0)

    def test_compare_different_workloads_rejected(self, result):
        base = result_to_dict(result)
        other = dict(base, workload="OTHER")
        with pytest.raises(ValueError):
            compare_summary(base, other)


class TestFaultInjection:
    def test_ring_survives_one_failed_link(self):
        config = small_config(topology="ring", failed_links=((2, 3),))
        result = simulate(config, fast_workload(), requests=150)
        assert result.transactions == 150

    def test_ring_reroutes_the_long_way(self):
        healthy = MemoryNetworkSystem(
            small_config(topology="ring"), fast_workload(), requests=1
        )
        broken = MemoryNetworkSystem(
            small_config(topology="ring", failed_links=((1, 2),)),
            fast_workload(),
            requests=1,
        )
        assert (
            broken.route_table.mean_distance()
            > healthy.route_table.mean_distance()
        )

    def test_chain_cannot_tolerate_failure(self):
        config = small_config(topology="chain", failed_links=((2, 3),))
        with pytest.raises(TopologyError, match="unreachable"):
            build_topology(config)

    def test_skiplist_chain_failure_breaks_write_class(self):
        config = small_config(
            topology="skiplist",
            total_capacity_bytes=2048 * GIB_BYTES,
            failed_links=((2, 3),),
        )
        with pytest.raises(TopologyError, match="WRITE"):
            build_topology(config)

    def test_removing_missing_edge_raises(self):
        topo = build_topology(small_config(topology="chain"))
        with pytest.raises(TopologyError):
            topo.remove_edge(1, 5)


class TestWarmup:
    def test_warmup_excludes_transactions_from_stats(self):
        config = small_config(warmup_fraction=0.5)
        result = simulate(config, fast_workload(), requests=200)
        assert result.collector.count == 100

    def test_warmup_keeps_runtime_envelope(self):
        cold = simulate(
            small_config(warmup_fraction=0.0), fast_workload(), requests=200
        )
        warm = simulate(
            small_config(warmup_fraction=0.5), fast_workload(), requests=200
        )
        assert warm.runtime_ps == cold.runtime_ps

    def test_invalid_warmup(self):
        with pytest.raises(ConfigError):
            small_config(warmup_fraction=1.0).validate()
