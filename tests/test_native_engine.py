"""Compiled scheduler backend (``Engine("native")``) and dispatch errors.

The native engine is an optional in-tree C extension; every test that
needs it skips cleanly when it is not built.  Dispatch-error tests run
everywhere: an unknown backend name must fail loudly with an error that
names the valid backends and whether the optional ones (batch, native)
are usable on this machine.

The equivalence tests mirror the wheel/batch suites: the compiled
scheduler, queue and router must be invisible — bit-identical digests
against the heap oracle across topologies with observability and RAS
on, plus a golden-corpus spot replay under the ambient override.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.engine as engine_mod
from repro.errors import SimulationError
from repro.net.buffers import InputQueue
from repro.net.packet import Packet, PacketKind
from repro.sim import native
from repro.sim.engine import Engine, backend_status, default_scheduler

from conftest import fast_workload, sim_digest, small_config

needs_native = pytest.mark.skipif(
    not native.available(), reason="compiled engine not built"
)

GOLDENS = Path(__file__).parent / "goldens"


# ---------------------------------------------------------------------------
# Backend dispatch: unknown names and unavailable optional backends
# ---------------------------------------------------------------------------
class TestDispatch:
    def test_unknown_backend_raises_with_status(self):
        with pytest.raises(SimulationError) as err:
            Engine("quantum")
        message = str(err.value)
        assert "quantum" in message
        assert "valid backends" in message
        for name in ("'wheel'", "'heap'", "'batch'", "'native'"):
            assert name in message

    def test_unknown_env_engine_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(SimulationError) as err:
            default_scheduler()
        assert "REPRO_ENGINE" in str(err.value)
        assert "valid backends" in str(err.value)

    def test_backend_status_reports_availability(self):
        status = backend_status()
        assert (
            "extension built" if native.available() else "extension not built"
        ) in status
        assert "numpy" in status

    def test_explicit_native_without_extension_raises(self, monkeypatch):
        monkeypatch.setattr(native, "_module", None)
        monkeypatch.setattr(native, "_import_error", "not built (test)")
        with pytest.raises(SimulationError) as err:
            Engine("native")
        assert "native_build" in str(err.value)

    def test_ambient_native_without_extension_falls_back(self, monkeypatch):
        monkeypatch.setattr(native, "_module", None)
        monkeypatch.setattr(native, "_import_error", "not built (test)")
        monkeypatch.setattr(engine_mod, "_ambient_native_warned", False)
        monkeypatch.setenv("REPRO_ENGINE", "native")
        with pytest.warns(RuntimeWarning, match="falling back"):
            engine = Engine()
        assert engine.scheduler == "wheel"


# ---------------------------------------------------------------------------
# Equivalence against the heap oracle
# ---------------------------------------------------------------------------
TOPOLOGIES = ("chain", "ring", "skiplist", "metacube")


@needs_native
@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("obs", [False, True], ids=["obs-off", "obs-on"])
@pytest.mark.parametrize("ras", [False, True], ids=["ras-off", "ras-on"])
def test_native_matches_heap(topology, obs, ras):
    config = small_config(topology=topology)
    if obs:
        config = config.with_obs(attribution=True)
    if ras:
        config = config.with_ras(bit_error_rate=1e-6)
    compiled, compiled_events = sim_digest(config, requests=150, scheduler="native")
    heap, heap_events = sim_digest(config, requests=150, scheduler="heap")
    assert compiled == heap
    assert compiled_events == heap_events


@needs_native
def test_native_matches_heap_across_far_horizon():
    config = small_config()
    workload = fast_workload(mean_gap_ns=40.0, burst_size=1.0)
    compiled, _ = sim_digest(config, workload, 120, scheduler="native")
    heap, _ = sim_digest(config, workload, 120, scheduler="heap")
    assert compiled == heap


@needs_native
def test_native_matches_heap_overload():
    """Deadlines + retries exercise request_stop and timer cancels."""
    config = small_config().with_overload(
        deadline_ps=150_000, max_retries=2, retry_backoff_ps=50_000
    )
    workload = fast_workload(arrival="onoff", mean_gap_ns=1.0)
    compiled, _ = sim_digest(config, workload, 150, scheduler="native")
    heap, _ = sim_digest(config, workload, 150, scheduler="heap")
    assert compiled == heap


#: Structurally diverse golden matrix cases for the native spot replay:
#: a plain run, the obs+ras interaction, and the overload machinery.
NATIVE_GOLDEN_SPOTS = ("skiplist/obs+ras", "ring/base", "overload/obs")


@needs_native
@pytest.mark.parametrize("name", NATIVE_GOLDEN_SPOTS)
def test_native_reproduces_goldens(name, monkeypatch):
    from repro.check.goldens import diff_goldens, matrix_cases, run_matrix_case

    monkeypatch.setenv("REPRO_ENGINE", "native")
    recorded = json.loads((GOLDENS / "matrix.json").read_text())
    cases = {n: (c, w) for n, c, w in matrix_cases()}
    config, workload = cases[name]
    entry = run_matrix_case(config, audit=True, workload=workload)
    report = diff_goldens({name: recorded[name]}, {name: entry})
    assert not report, "\n".join(report)


# ---------------------------------------------------------------------------
# Property test: adversarial schedules pop identically to the heap
# ---------------------------------------------------------------------------
WHEEL_PERIOD = 1 << engine_mod.WHEEL_SHIFT

_delays = st.one_of(
    st.integers(min_value=0, max_value=3 * WHEEL_PERIOD),
    st.builds(
        lambda k, off: max(0, k * WHEEL_PERIOD + off),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=-2, max_value=2),
    ),
)


def _fire_log(scheduler, initial, chained):
    engine = Engine(scheduler)
    log = []
    followups = {}
    for child, (parent, delay) in enumerate(chained):
        followups.setdefault(parent, []).append((child, delay))

    def fire(eng, tag):
        log.append((eng.now, tag))
        if isinstance(tag, int):
            for child, delay in followups.get(tag, ()):
                eng.schedule(delay, fire, ("chained", child))

    for tag, delay in enumerate(initial):
        engine.schedule(delay, fire, tag)
    engine.run()
    assert engine.integrity_errors() == []
    assert engine.pending == 0
    return log


@needs_native
@settings(max_examples=60, deadline=None)
@given(
    initial=st.lists(_delays, min_size=1, max_size=24),
    chained=st.lists(
        st.tuples(st.integers(min_value=0, max_value=23), _delays),
        max_size=24,
    ),
)
def test_native_pops_identically_to_heap(initial, chained):
    assert _fire_log("native", initial, chained) == _fire_log(
        "heap", initial, chained
    )


# ---------------------------------------------------------------------------
# NativeQueue duck compatibility with InputQueue
# ---------------------------------------------------------------------------
def _packet(pid_hint: int) -> Packet:
    pkt = Packet(
        kind=PacketKind.READ_REQ,
        address=64 * pid_hint,
        src=-1,
        dest=3,
        size_bits=128,
        create_ps=0,
    )
    pkt.route = [0, 1, 3]
    pkt.hop_index = 0
    return pkt


@needs_native
class TestNativeQueueCompat:
    def test_fifo_and_bookkeeping_match_input_queue(self):
        compiled = native.native_queue_class()("q", 4)
        reference = InputQueue("q", 4)
        for i in range(4):
            compiled.push(_packet(i), 10 * i)
            reference.push(_packet(i), 10 * i)
        assert len(compiled) == len(reference) == 4
        assert not compiled.has_space() and not reference.has_space()
        assert compiled.head_key == reference.head_key
        order_c = [compiled.pop(100).address for _ in range(4)]
        order_r = [reference.pop(100).address for _ in range(4)]
        assert order_c == order_r
        assert compiled.is_empty and reference.is_empty
        assert compiled.total_wait_ps == reference.total_wait_ps
        assert compiled.pushed == reference.pushed
        assert compiled.pops == reference.pops
        assert compiled.popped == reference.popped

    def test_overflow_and_empty_errors(self):
        queue = native.native_queue_class()("q", 1)
        queue.push(_packet(0), 0)
        with pytest.raises(SimulationError):
            queue.push(_packet(1), 0)
        queue.pop(5)
        with pytest.raises(SimulationError):
            queue.pop(5)
        with pytest.raises(SimulationError):
            queue.head()

    def test_remove_keeps_entry_times_aligned(self):
        queue = native.native_queue_class()("q", 8)
        packets = [_packet(i) for i in range(4)]
        for i, pkt in enumerate(packets):
            queue.push(pkt, 10 * i)
        dropped = queue.remove({packets[1], packets[2]})
        assert dropped == 2
        assert queue.packets() == (packets[0], packets[3])
        queue.pop(100)  # entered at t=0 -> wait 100
        queue.pop(100)  # entered at t=30 -> wait 70
        assert queue.total_wait_ps == 170
