"""Tests for the memory cube assembly (router + quadrant controllers)."""

import pytest

from repro.arbitration import ArbiterContext, RoundRobinArbiter
from repro.config import CubeConfig, PacketConfig, dram_tech, nvm_tech
from repro.host.address_map import Location
from repro.memory.cube import LOCAL_INPUTS, MemoryCube
from repro.net.buffers import InputQueue
from repro.net.packet import Packet, PacketKind, Transaction
from repro.net.router import Router
from repro.sim.engine import Engine


def build_cube(tech=None, cube_config=None, bank_scale=1.0):
    engine = Engine()
    router = Router(1, "cube1", lambda: RoundRobinArbiter(ArbiterContext()))
    responses = []

    def route_response(packet):
        # responses head "back to the host" (node 0), where a sink
        # output collects them
        packet.route = [1, 0]
        packet.hop_index = 0

    cube = MemoryCube(
        node_id=1,
        tech=tech or dram_tech(),
        cube_config=cube_config or CubeConfig(),
        packet_config=PacketConfig(),
        router=router,
        route_response=route_response,
        bank_scale=bank_scale,
    )
    from repro.net.router import LocalOutput

    router.add_output(
        0, LocalOutput(lambda p: True, lambda e, p, i: responses.append(p))
    )
    return engine, router, cube, responses


def request_for(quadrant, bank=0, row=0, is_write=False):
    txn = Transaction(0, is_write, port_id=0, issue_ps=0)
    txn.location = Location(0, quadrant, bank, row, 0)
    txn.dest_cube = 1
    kind = PacketKind.WRITE_REQ if is_write else PacketKind.READ_REQ
    packet = Packet(kind, 0, 0, 1, 128, 0, transaction=txn)
    packet.route = [0, 1]
    packet.hop_index = 1  # already delivered to the cube
    return packet


class TestConstruction:
    def test_four_local_inputs_first(self):
        _, router, cube, _ = build_cube()
        assert len(cube.controllers) == 4
        assert len(router.inputs) == LOCAL_INPUTS
        assert router.inputs[0].name.endswith("q0.inject")

    def test_bank_scale_halves_banks(self):
        _, _, full, _ = build_cube()
        _, _, half, _ = build_cube(bank_scale=0.5)
        assert len(half.controllers[0].banks) == len(full.controllers[0].banks) // 2

    def test_bank_scale_floor_of_one(self):
        _, _, cube, _ = build_cube(bank_scale=0.0001)
        assert len(cube.controllers[0].banks) == 1


class TestDelivery:
    def test_correct_quadrant_no_penalty(self):
        engine, router, cube, responses = build_cube()
        packet = request_for(quadrant=0)
        # arriving on external input 4 (= ext port 0 = quadrant 0)
        cube._deliver(engine, packet, input_index=LOCAL_INPUTS + 0)
        engine.run()
        txn = packet.transaction
        assert txn.mem_arrive_ps == 0
        assert txn.mem_depart_ps == dram_tech().trcd_ps + dram_tech().tcl_ps

    def test_wrong_quadrant_penalty(self):
        engine, router, cube, responses = build_cube()
        packet = request_for(quadrant=2)
        cube._deliver(engine, packet, input_index=LOCAL_INPUTS + 0)
        engine.run()
        expected = (
            CubeConfig().wrong_quadrant_penalty_ps
            + dram_tech().trcd_ps
            + dram_tech().tcl_ps
        )
        assert packet.transaction.mem_depart_ps == expected

    def test_accept_respects_controller_capacity(self):
        _, _, cube, _ = build_cube(
            cube_config=CubeConfig(controller_queue_depth=1)
        )
        packet = request_for(quadrant=0)
        assert cube._accept(packet)
        cube.controllers[0].reserve()
        assert not cube._accept(packet)

    def test_quadrants_independent_capacity(self):
        _, _, cube, _ = build_cube(
            cube_config=CubeConfig(controller_queue_depth=1)
        )
        cube.controllers[0].reserve()
        assert cube._accept(request_for(quadrant=1))

    def test_request_hops_recorded_once(self):
        engine, _, cube, _ = build_cube()
        packet = request_for(quadrant=0)
        packet.hops_traversed = 3
        cube._deliver(engine, packet, input_index=4)
        assert packet.transaction.request_hops == 3


class TestCounters:
    def test_totals_aggregate_quadrants(self):
        engine, _, cube, responses = build_cube()
        for quadrant in range(4):
            cube._deliver(
                engine, request_for(quadrant=quadrant), input_index=4 + quadrant
            )
        cube._deliver(engine, request_for(quadrant=0, is_write=True), 4)
        engine.run()
        assert cube.total_reads() == 4
        assert cube.total_writes() == 1
        assert len(responses) == 5

    def test_refresh_staggered_across_quadrants(self):
        engine, _, cube, _ = build_cube()
        offsets = {c.refresh_offset_ps for c in cube.controllers}
        assert len(offsets) == 4  # all distinct

    def test_nvm_cube_has_no_refresh(self):
        engine, _, cube, _ = build_cube(tech=nvm_tech())
        cube.start(engine)
        engine.run(until=1_000_000)
        assert all(c.refreshes == 0 for c in cube.controllers)
