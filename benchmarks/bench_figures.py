"""Benchmarks regenerating every figure of the paper's evaluation.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
Each benchmark also asserts the figure's qualitative shape so a model
regression that flips a paper conclusion fails loudly.
"""

from conftest import run_experiment


def test_fig04_topology_speedups(benchmark, bench_requests):
    output = run_experiment(benchmark, "fig04", bench_requests)
    averages = output.data["averages"]
    # Tree > Ring > 0 (chain): the paper's headline topology result.
    assert averages["100%-T"] > averages["100%-R"] > 0.0


def test_fig05_latency_breakdown(benchmark, bench_requests):
    output = run_experiment(benchmark, "fig05", bench_requests)
    breakdown = output.data["breakdown"]
    # Network latency (to+from) exceeds in-memory latency under load
    # for the chain on the heavy workloads.
    chain = breakdown["KMEANS"]["100%-C"]
    network = chain["to_memory_ns"] + chain["from_memory_ns"]
    assert network > chain["in_memory_ns"]
    # NW (lowest load) has the largest in-memory share of the suite.
    def in_share(wl):
        row = breakdown[wl]["100%-C"]
        total = row["to_memory_ns"] + row["in_memory_ns"] + row["from_memory_ns"]
        return row["in_memory_ns"] / total

    assert in_share("NW") >= max(in_share(w) for w in breakdown) - 1e-9


def test_fig07_nvm_ratios(benchmark, bench_requests):
    output = run_experiment(benchmark, "fig07", bench_requests)
    averages = output.data["averages"]
    # every tree mix beats the chain baseline on average ...
    assert all(value > 0 for value in averages.values())
    # ... and the 50% mixes stay competitive with all-DRAM (within a
    # handful of points — "it is beneficial to use some amount of NVM").
    assert averages["50%-T (NVM-L)"] > averages["100%-T"] - 8.0


def test_fig10_distance_arbitration(benchmark, bench_requests):
    output = run_experiment(benchmark, "fig10", bench_requests)
    averages = output.data["averages"]
    # distance arbitration must not wreck any baseline configuration
    assert all(value > -10.0 for value in averages.values())


def test_fig11_proposed_topologies(benchmark, bench_requests):
    output = run_experiment(benchmark, "fig11", bench_requests)
    averages = output.data["averages"]
    # MetaCube is the best 100% topology; skip-list is close to tree.
    assert averages["100%-MC"] >= averages["100%-T"] - 1.0
    assert abs(averages["100%-SL"] - averages["100%-T"]) < 10.0


def test_fig12_combined_techniques(benchmark, bench_requests):
    output = run_experiment(benchmark, "fig12", bench_requests)
    averages = output.data["averages"]
    assert all(value > 0 for value in averages.values())


def test_fig13_port_sensitivity(benchmark, bench_requests):
    output = run_experiment(benchmark, "fig13", bench_requests)
    averages = output.data["averages"]
    # halving the ports degrades the chain
    assert averages["100%-C"] < 0.0
    # the MetaCube is affected least among 100% topologies
    assert averages["100%-MC"] >= averages["100%-C"]


def test_fig14_capacity_sensitivity(benchmark, bench_requests):
    output = run_experiment(benchmark, "fig14", bench_requests)
    averages = output.data["averages"]
    # the all-NVM chain suffers the most from losing banks
    worst = min(averages, key=averages.get)
    assert "0%" in worst or "50%" in worst


def test_fig15_energy(benchmark, bench_requests):
    output = run_experiment(benchmark, "fig15", bench_requests)
    data = output.data["relative_energy"]
    # network energy shrinks as networks shrink
    assert data["0%-C"]["network"] < data["100%-C"]["network"]
    # NVM write energy pushes the all-NVM chain's total above baseline
    assert data["0%-C"]["write"] > data["100%-C"]["write"]
    # the tree is the cheapest all-DRAM network
    assert data["100%-T"]["network"] <= data["100%-C"]["network"]
    # the skip-list pays extra network energy for its write paths
    assert data["100%-SL"]["network"] >= data["100%-T"]["network"] - 1.0


def test_table01_ddr(benchmark):
    output = run_experiment(benchmark, "table01", 0)
    assert "800 MHz" in output.text
