"""Benchmark the runner subsystem: parallel execution + result cache.

Times one multi-point experiment (fig10: 24 config points per workload)
four ways —

* ``serial``        fresh memory cache, ``jobs=1`` (the pre-runner baseline),
* ``parallel``      fresh memory cache, ``jobs=N`` process pool,
* ``cold_cache``    fresh disk cache directory, every point simulated,
* ``warm_cache``    second run against the same directory (zero simulations),

plus a cross-figure pass (fig04 after fig10 against the warm cache, whose
baseline/tree/ring points are already cached) and engine micro-numbers
(events/second with observability off, with latency attribution on, and
with full event tracing on).  Results land in ``BENCH_runner.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py [--requests N]
        [--jobs N] [--output PATH]

``REPRO_BENCH_REQUESTS`` also scales the per-run request count.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.config import SystemConfig
from repro.experiments import get_experiment
from repro.runner import ParallelRunner, ResultCache, using_runner
from repro.system import MemoryNetworkSystem
from repro.units import TIB_BYTES
from repro.workloads import get_workload

DEFAULT_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "300"))
EXPERIMENT = "fig10"
CROSS_EXPERIMENT = "fig04"
WORKLOADS = ("KMEANS", "BACKPROP")
BASE = SystemConfig(total_capacity_bytes=TIB_BYTES)


def timed_run(experiment_id: str, runner: ParallelRunner, requests: int):
    run = get_experiment(experiment_id)
    workloads = [get_workload(name) for name in WORKLOADS]
    before = runner.simulations_run
    started = time.perf_counter()
    with using_runner(runner):
        run(requests=requests, workloads=workloads, base_config=BASE)
    elapsed = time.perf_counter() - started
    return elapsed, runner.simulations_run - before


def engine_events_per_second(requests: int, config: SystemConfig = BASE) -> float:
    system = MemoryNetworkSystem(config, get_workload("KMEANS"), requests=requests)
    started = time.perf_counter()
    result = system.run()
    elapsed = time.perf_counter() - started
    return result.events_processed / elapsed if elapsed else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument(
        "--jobs",
        type=int,
        default=max(2, min(4, os.cpu_count() or 1)),
        help="worker processes for the parallel measurement",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_runner.json"),
    )
    args = parser.parse_args(argv)

    print(
        f"bench_runner: {EXPERIMENT} x {len(WORKLOADS)} workloads, "
        f"requests={args.requests}, cpus={os.cpu_count()}",
        flush=True,
    )

    serial_s, serial_sims = timed_run(
        EXPERIMENT, ParallelRunner(jobs=1), args.requests
    )
    print(f"  serial   (jobs=1): {serial_s:7.1f}s  {serial_sims} simulations")

    parallel_s, parallel_sims = timed_run(
        EXPERIMENT, ParallelRunner(jobs=args.jobs), args.requests
    )
    print(
        f"  parallel (jobs={args.jobs}): {parallel_s:7.1f}s  "
        f"{parallel_sims} simulations"
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cold_s, cold_sims = timed_run(
            EXPERIMENT,
            ParallelRunner(jobs=1, cache=ResultCache(cache_dir)),
            args.requests,
        )
        print(f"  cold disk cache  : {cold_s:7.1f}s  {cold_sims} simulations")
        warm_s, warm_sims = timed_run(
            EXPERIMENT,
            ParallelRunner(jobs=1, cache=ResultCache(cache_dir)),
            args.requests,
        )
        print(f"  warm disk cache  : {warm_s:7.1f}s  {warm_sims} simulations")
        cross_s, cross_sims = timed_run(
            CROSS_EXPERIMENT,
            ParallelRunner(jobs=1, cache=ResultCache(cache_dir)),
            args.requests,
        )
        print(
            f"  {CROSS_EXPERIMENT} after {EXPERIMENT}: {cross_s:7.1f}s  "
            f"{cross_sims} simulations (cross-figure reuse)"
        )

    events_per_s = engine_events_per_second(args.requests * 4)
    print(f"  engine           : {events_per_s / 1e3:.0f}k events/s")
    # The observability layer must cost nothing when off; these two
    # numbers quantify what turning it on costs (docs/observability.md).
    attributed_per_s = engine_events_per_second(
        args.requests * 4, BASE.with_obs(attribution=True)
    )
    traced_per_s = engine_events_per_second(
        args.requests * 4, BASE.with_obs(attribution=True, trace=True)
    )
    print(f"  engine (attrib)  : {attributed_per_s / 1e3:.0f}k events/s")
    print(f"  engine (traced)  : {traced_per_s / 1e3:.0f}k events/s")

    payload = {
        "experiment": EXPERIMENT,
        "workloads": list(WORKLOADS),
        "requests": args.requests,
        "cpus": os.cpu_count(),
        "jobs": args.jobs,
        "serial_s": round(serial_s, 3),
        "serial_simulations": serial_sims,
        "parallel_s": round(parallel_s, 3),
        "parallel_simulations": parallel_sims,
        "parallel_speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "cold_cache_s": round(cold_s, 3),
        "cold_cache_simulations": cold_sims,
        "warm_cache_s": round(warm_s, 3),
        "warm_cache_simulations": warm_sims,
        "warm_cache_speedup": round(cold_s / warm_s, 1) if warm_s else None,
        "cross_experiment": CROSS_EXPERIMENT,
        "cross_experiment_s": round(cross_s, 3),
        "cross_experiment_simulations": cross_sims,
        "engine_events_per_s": round(events_per_s),
        "engine_events_per_s_attribution": round(attributed_per_s),
        "engine_events_per_s_traced": round(traced_per_s),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
