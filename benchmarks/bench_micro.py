"""Microbenchmarks of the simulator's hot paths."""

from repro.config import SystemConfig
from repro.host.address_map import AddressMap
from repro.sim.engine import Engine
from repro.system import MemoryNetworkSystem
from repro.units import GIB_BYTES, TIB_BYTES
from repro.workloads import SyntheticWorkload, WorkloadSpec, get_workload


def test_engine_event_throughput(benchmark):
    def run_events():
        engine = Engine()
        counter = [0]

        def tick(eng):
            counter[0] += 1
            if counter[0] < 10_000:
                eng.schedule(1, tick)

        engine.schedule(0, tick)
        engine.run()
        return counter[0]

    assert benchmark(run_events) == 10_000


def test_address_decode_throughput(benchmark):
    amap = AddressMap(
        [16 * GIB_BYTES] * 8 + [64 * GIB_BYTES] * 2, 256, 2048, 256, 4
    )

    def decode_many():
        total = 0
        for block in range(10_000):
            total += amap.decode((block * 4421 * 256) % amap.total_bytes).bank
        return total

    benchmark(decode_many)


def test_workload_generation_throughput(benchmark):
    spec = get_workload("KMEANS")

    def generate():
        workload = SyntheticWorkload(spec, 256 * GIB_BYTES, seed=1)
        return sum(1 for _ in zip(range(20_000), workload))

    assert benchmark(generate) == 20_000


def test_end_to_end_simulation_rate(benchmark):
    """Transactions simulated per benchmark round on the paper system."""
    spec = get_workload("KMEANS")

    def simulate_once():
        system = MemoryNetworkSystem(
            SystemConfig(topology="tree"), spec, requests=1_000
        )
        return system.run().transactions

    assert benchmark.pedantic(simulate_once, rounds=1, iterations=1) == 1_000


def test_system_construction_cost(benchmark):
    """Building (not running) the largest topology in the study."""
    spec = get_workload("KMEANS")
    config = SystemConfig(topology="metacube")

    def build():
        return MemoryNetworkSystem(config, spec, requests=1)

    benchmark(build)
