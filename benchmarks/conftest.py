"""Benchmark configuration.

Each figure benchmark regenerates the corresponding paper table once
(``pedantic`` with a single round — these are minutes-long experiment
harnesses, not microseconds-long kernels) and prints the rows so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation.

``REPRO_BENCH_REQUESTS`` scales the per-run request count (default
1000; the paper-quality setting used in EXPERIMENTS.md is 2000).
"""

import os

import pytest

BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "1000"))


@pytest.fixture(scope="session")
def bench_requests() -> int:
    return BENCH_REQUESTS


def run_experiment(benchmark, experiment_id: str, requests: int):
    """Run one experiment under pytest-benchmark and print its table."""
    from repro.experiments import get_experiment

    run = get_experiment(experiment_id)
    output = benchmark.pedantic(
        lambda: run(requests=requests), rounds=1, iterations=1
    )
    print()
    print(output.text)
    if output.notes:
        print(f"Note: {output.notes}")
    return output
