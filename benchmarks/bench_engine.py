"""Benchmark the simulation core: events/second through the hot path.

Runs one fig10-style configuration (chain topology, 1 TiB, KMEANS) and
measures raw engine throughput along two axes —

* scheduler: the compiled ``native`` engine (when built), the batched
  cohort ``batch`` engine, the two-tier timing ``wheel`` (default),
  and the plain binary ``heap`` that doubles as the determinism
  reference — all must produce identical result digests;
* observability: off (the zero-overhead-when-off baseline), per-hop
  latency ``attribution``, 1-in-8 ``sampled`` attribution
  (``attribution_sample=8``), and full event ``trace`` recording.

Cells are measured in interleaved rounds (round-robin over every cell
per repeat) so machine-load drift biases no single backend, and each
cell reports the best round (events/second is a throughput: the
minimum-noise run is the honest one on a shared machine).  The obs-off
and sampled cells get ``--ratio-rounds`` extra interleaved rounds: the
scheduler ratios (``wheel_vs_heap``, ``native_vs_wheel``, ...) and the
gated sampled-attribution overhead compare best-of estimates whose
per-sample noise on a busy 1-CPU box exceeds the true differences, so
those cells need more samples to converge.

Results land in ``BENCH_engine.json`` together with the batch engine's
cohort-size distribution (how much same-timestamp batching the workload
actually exposes), the packet-pool recycling counters, and a
timestamped ``trend`` list that accumulates one entry per benchmark run
so regressions are visible across commits.  The CI smoke step asserts a
tolerant floor on one scheduler's obs-off cell (``--gate-scheduler``).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--requests N]
        [--repeats N] [--output PATH] [--history N]
        [--min-events-per-s FLOOR] [--max-sampled-overhead FRACTION]
        [--gate-scheduler {wheel,heap,batch,native}]

``REPRO_BENCH_REQUESTS`` also scales the request count.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.config import SystemConfig
from repro.serialization import result_digest
from repro.sim.engine import Engine
from repro.system import MemoryNetworkSystem
from repro.units import TIB_BYTES
from repro.workloads import get_workload

DEFAULT_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "300")) * 4
WORKLOAD = "KMEANS"
BASE = SystemConfig(total_capacity_bytes=TIB_BYTES)


def run_cell(requests: int, config: SystemConfig, scheduler: str):
    """One timed run; returns (rate, result, system)."""
    system = MemoryNetworkSystem(
        config, get_workload(WORKLOAD), requests=requests,
        engine=Engine(scheduler),
    )
    started = time.perf_counter()
    result = system.run()
    elapsed = time.perf_counter() - started
    rate = result.events_processed / elapsed if elapsed else 0.0
    return rate, result, system


def load_trend(path: Path) -> list:
    """Prior trend entries from an existing BENCH_engine.json, if any."""
    try:
        previous = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    trend = previous.get("trend")
    if isinstance(trend, list):
        return trend
    # Pre-trend payloads: fold the old headline numbers into one entry.
    if isinstance(previous.get("events_per_s"), dict):
        return [{
            "timestamp": None,
            "requests": previous.get("requests"),
            "events_per_s": previous["events_per_s"],
        }]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--ratio-rounds",
        type=int,
        default=8,
        help="extra interleaved rounds for the obs-off cells, tightening "
        "the best-of estimates behind the scheduler ratios",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
    )
    parser.add_argument(
        "--history",
        type=int,
        default=50,
        help="trend entries retained in the output file (keeps the "
        "checked-in payload from growing without bound)",
    )
    parser.add_argument(
        "--min-events-per-s",
        type=float,
        default=None,
        help="fail (exit 1) if the gated scheduler's obs-off rate falls "
        "below this floor — the CI perf gate",
    )
    parser.add_argument(
        "--max-sampled-overhead",
        type=float,
        default=None,
        help="fail (exit 1) if the gated scheduler's 1-in-8 sampled "
        "attribution overhead exceeds this fraction (CI uses 0.10)",
    )
    parser.add_argument(
        "--gate-scheduler",
        choices=("wheel", "heap", "batch", "native"),
        default="wheel",
        help="which scheduler's cells the perf gates apply to",
    )
    args = parser.parse_args(argv)
    if args.history < 1:
        parser.error("--history must be at least 1")

    from repro.sim import native

    schedulers = ["native", "batch", "wheel", "heap"]
    if importlib.util.find_spec("numpy") is None:
        print("  (numpy not installed: skipping the batch engine)")
        schedulers.remove("batch")
    if not native.available():
        print("  (compiled extension not built: skipping the native engine)")
        schedulers.remove("native")
    if args.gate_scheduler not in schedulers:
        print(f"FAIL: cannot gate on unavailable {args.gate_scheduler}",
              file=sys.stderr)
        return 1
    configs = [
        ("off", BASE),
        ("attribution", BASE.with_obs(attribution=True)),
        ("sampled", BASE.with_obs(attribution=True, attribution_sample=8)),
        ("traced", BASE.with_obs(attribution=True, trace=True)),
    ]
    cells = [
        (scheduler, obs_label, config)
        for scheduler in schedulers
        for obs_label, config in configs
    ]

    print(
        f"bench_engine: {WORKLOAD} x requests={args.requests}, "
        f"best of {args.repeats} interleaved rounds",
        flush=True,
    )
    rates = {f"{s}_{o}": 0.0 for s, o, _ in cells}
    digests = {}
    events = None
    cohorts = None
    pool_stats = None
    for _round in range(args.repeats):
        for scheduler, obs_label, config in cells:
            rate, result, system = run_cell(args.requests, config, scheduler)
            key = f"{scheduler}_{obs_label}"
            rates[key] = max(rates[key], rate)
            if obs_label == "off":
                digests[scheduler] = result_digest(result)
                events = result.events_processed
                if scheduler == "batch":
                    cohorts = system.engine.cohort_stats()
                    pool_stats = system.packet_pool.stats()
    # The sampled cell rides along in the extra rounds: its overhead is
    # gated in CI, and comparing a best-of-N cell against a best-of-3
    # one would misread round-count asymmetry as obs overhead.
    ratio_configs = [("off", BASE), configs[2]]
    for _round in range(args.ratio_rounds):
        for scheduler in schedulers:
            for obs_label, config in ratio_configs:
                rate, _result, _system = run_cell(args.requests, config, scheduler)
                key = f"{scheduler}_{obs_label}"
                rates[key] = max(rates[key], rate)
    rates = {key: round(rate) for key, rate in rates.items()}
    for scheduler in schedulers:
        for obs_label, _config in configs:
            rate = rates[f"{scheduler}_{obs_label}"]
            print(f"  {scheduler:5s} / {obs_label:11s}: {rate / 1e3:7.0f}k events/s")

    reference = digests["heap"]
    for scheduler, digest in digests.items():
        if digest != reference:
            print(
                f"FAIL: {scheduler} and heap schedulers disagree "
                f"({digest[:12]} != {reference[:12]})",
                file=sys.stderr,
            )
            return 1
    print(
        f"  digests agree    : {reference[:16]} "
        f"({'/'.join(schedulers)}, {events} events)"
    )
    if cohorts is not None:
        print(
            f"  batch cohorts    : mean {cohorts['mean_cohort']:.2f} over "
            f"{cohorts['cohorts']} cohorts in {cohorts['windows']} windows "
            f"({cohorts['spilled_events']} spilled)"
        )
    if pool_stats is not None:
        print(
            f"  packet pool      : {pool_stats['acquired']} acquired, "
            f"{pool_stats['recycled']} recycled "
            f"(freelist {pool_stats['freelist']})"
        )

    def ratio(a: str, b: str):
        return round(rates[a] / rates[b], 3) if rates.get(b) else None

    def overhead(scheduler: str, obs_label: str):
        base = rates.get(f"{scheduler}_off")
        if not base:
            return None
        return round(1 - rates[f"{scheduler}_{obs_label}"] / base, 3)

    output = Path(args.output)
    payload = {
        "workload": WORKLOAD,
        "requests": args.requests,
        "repeats": args.repeats,
        "cpus": os.cpu_count(),
        "events_processed": events,
        "result_digest": reference,
        "events_per_s": rates,
        "wheel_vs_heap": ratio("wheel_off", "heap_off"),
        "batch_vs_heap": (
            ratio("batch_off", "heap_off") if "batch" in schedulers else None
        ),
        "native_vs_heap": (
            ratio("native_off", "heap_off") if "native" in schedulers else None
        ),
        "native_vs_wheel": (
            ratio("native_off", "wheel_off") if "native" in schedulers else None
        ),
        "attribution_overhead": overhead("wheel", "attribution"),
        "sampled_attribution_overhead": overhead("wheel", "sampled"),
        "trace_overhead": overhead("wheel", "traced"),
        "batch_attribution_overhead": (
            overhead("batch", "attribution") if "batch" in schedulers else None
        ),
        "cohorts": cohorts,
        "packet_pool": pool_stats,
        "trend": (load_trend(output) + [{
            "timestamp": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "requests": args.requests,
            "events_per_s": rates,
        }])[-args.history:],
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.min_events_per_s is not None:
        gate_key = f"{args.gate_scheduler}_off"
        if rates[gate_key] < args.min_events_per_s:
            print(
                f"FAIL: {gate_key} {rates[gate_key]} events/s below the "
                f"floor of {args.min_events_per_s:g}",
                file=sys.stderr,
            )
            return 1
        print(
            f"  perf gate        : {gate_key} {rates[gate_key]} >= "
            f"{args.min_events_per_s:g} events/s OK"
        )
    if args.max_sampled_overhead is not None:
        sampled = overhead(args.gate_scheduler, "sampled")
        if sampled is None or sampled > args.max_sampled_overhead:
            print(
                f"FAIL: {args.gate_scheduler} sampled-attribution overhead "
                f"{sampled} above the {args.max_sampled_overhead:g} ceiling",
                file=sys.stderr,
            )
            return 1
        print(
            f"  obs gate         : {args.gate_scheduler} sampled attribution "
            f"overhead {sampled:.3f} <= {args.max_sampled_overhead:g} OK"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
