"""Benchmark the simulation core: events/second through the hot path.

Runs one fig10-style configuration (chain topology, 1 TiB, KMEANS) and
measures raw engine throughput along two axes —

* scheduler: the two-tier timing ``wheel`` (default) vs the plain
  binary ``heap`` it replaced, which doubles as the determinism
  reference (both must produce identical result digests);
* observability: off (the zero-overhead-when-off baseline), per-hop
  latency ``attribution``, and full event ``trace`` recording.

Each cell reports the best of ``--repeats`` runs (events/second is a
throughput: the minimum-noise run is the honest one on a shared
machine).  Results land in ``BENCH_engine.json``; the CI smoke step
asserts a tolerant floor on the wheel/off cell.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--requests N]
        [--repeats N] [--output PATH] [--min-events-per-s FLOOR]

``REPRO_BENCH_REQUESTS`` also scales the request count.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.config import SystemConfig
from repro.serialization import result_digest
from repro.sim.engine import Engine
from repro.system import MemoryNetworkSystem
from repro.units import TIB_BYTES
from repro.workloads import get_workload

DEFAULT_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "300")) * 4
WORKLOAD = "KMEANS"
BASE = SystemConfig(total_capacity_bytes=TIB_BYTES)


def measure(requests: int, config: SystemConfig, scheduler: str, repeats: int):
    """Best-of-``repeats`` events/second for one (config, scheduler) cell."""
    best = 0.0
    result = None
    for _ in range(repeats):
        system = MemoryNetworkSystem(
            config, get_workload(WORKLOAD), requests=requests,
            engine=Engine(scheduler),
        )
        started = time.perf_counter()
        result = system.run()
        elapsed = time.perf_counter() - started
        rate = result.events_processed / elapsed if elapsed else 0.0
        best = max(best, rate)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
    )
    parser.add_argument(
        "--min-events-per-s",
        type=float,
        default=None,
        help="fail (exit 1) if the wheel/obs-off rate falls below this "
        "floor — the CI perf gate",
    )
    args = parser.parse_args(argv)

    configs = [
        ("off", BASE),
        ("attribution", BASE.with_obs(attribution=True)),
        ("traced", BASE.with_obs(attribution=True, trace=True)),
    ]

    print(
        f"bench_engine: {WORKLOAD} x requests={args.requests}, "
        f"best of {args.repeats}",
        flush=True,
    )
    rates = {}
    digests = {}
    events = None
    for scheduler in ("wheel", "heap"):
        for obs_label, config in configs:
            rate, result = measure(args.requests, config, scheduler, args.repeats)
            rates[f"{scheduler}_{obs_label}"] = round(rate)
            if obs_label == "off":
                digests[scheduler] = result_digest(result)
                events = result.events_processed
            print(f"  {scheduler:5s} / {obs_label:11s}: {rate / 1e3:7.0f}k events/s")

    if digests["wheel"] != digests["heap"]:
        print(
            "FAIL: wheel and heap schedulers disagree "
            f"({digests['wheel'][:12]} != {digests['heap'][:12]})",
            file=sys.stderr,
        )
        return 1
    print(f"  digests agree    : {digests['wheel'][:16]} ({events} events)")

    payload = {
        "workload": WORKLOAD,
        "requests": args.requests,
        "repeats": args.repeats,
        "cpus": os.cpu_count(),
        "events_processed": events,
        "result_digest": digests["wheel"],
        "events_per_s": rates,
        "wheel_vs_heap": (
            round(rates["wheel_off"] / rates["heap_off"], 3)
            if rates["heap_off"] else None
        ),
        "attribution_overhead": (
            round(1 - rates["wheel_attribution"] / rates["wheel_off"], 3)
            if rates["wheel_off"] else None
        ),
        "trace_overhead": (
            round(1 - rates["wheel_traced"] / rates["wheel_off"], 3)
            if rates["wheel_off"] else None
        ),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.min_events_per_s is not None:
        if rates["wheel_off"] < args.min_events_per_s:
            print(
                f"FAIL: wheel/off {rates['wheel_off']} events/s below the "
                f"floor of {args.min_events_per_s:g}",
                file=sys.stderr,
            )
            return 1
        print(
            f"  perf gate        : {rates['wheel_off']} >= "
            f"{args.min_events_per_s:g} events/s OK"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
