"""Benchmarks for the ablation studies (beyond the paper's figures)."""

from conftest import run_experiment


def test_ablation_arbiters(benchmark, bench_requests):
    output = run_experiment(benchmark, "ablation_arbiters", bench_requests)
    delta = output.data["delta"]
    # distance-based arbitration must not catastrophically regress any
    # of the studied configurations
    for config_row in delta.values():
        assert config_row["distance"] > -10.0


def test_ablation_interleave(benchmark, bench_requests):
    output = run_experiment(benchmark, "ablation_interleave", bench_requests)
    grid = output.data["grid"]
    # 64 B interleaving destroys row-buffer locality relative to 256 B
    for workload_rows in grid.values():
        assert workload_rows[64]["row_hit_rate"] <= (
            workload_rows[256]["row_hit_rate"] + 1.0
        )


def test_ablation_serdes(benchmark, bench_requests):
    output = run_experiment(benchmark, "ablation_serdes", bench_requests)
    slowdown = output.data["slowdown"]
    # 10 ns SerDes hurts, and hurts the chain (most hops) more than the
    # tree — the paper's Section 5 sensitivity statement.
    assert slowdown["100%-C"][10.0] > slowdown["100%-C"][2.0]
    assert slowdown["100%-C"][10.0] > slowdown["100%-T"][10.0]


def test_ablation_ratio(benchmark, bench_requests):
    output = run_experiment(benchmark, "ablation_ratio", bench_requests)
    averages = output.data["averages"]
    # every tree mix beats the all-DRAM chain baseline
    assert all(value > 0 for value in averages.values())


def test_ablation_window(benchmark, bench_requests):
    output = run_experiment(benchmark, "ablation_window", bench_requests)
    grid = output.data["grid"]
    # topology benefit exists at small windows
    assert grid[8]["100%-MC"] > 0


def test_ablation_buffers(benchmark, bench_requests):
    output = run_experiment(benchmark, "ablation_buffers", bench_requests)
    grid = output.data["grid"]
    # starving the chain of buffers cannot *help* it
    assert grid["100%-C"][1] <= grid["100%-C"][16] + 3.0
