"""Regenerate (or check) the golden regression corpus.

The corpus definitions live in :mod:`repro.check.goldens`; the
checked-in snapshots live in ``tests/goldens/``:

* ``matrix.json`` — direct-simulation digests (topologies x modes x
  arbiters, plus two permanent-failure scenarios),
* ``experiments.json`` — smoke-scale digests of every registered
  experiment's output data.

Usage::

    PYTHONPATH=src python tools/regen_goldens.py             # rewrite both
    PYTHONPATH=src python tools/regen_goldens.py --check     # compare, no writes
    PYTHONPATH=src python tools/regen_goldens.py --only matrix
    PYTHONPATH=src python tools/regen_goldens.py --jobs 4    # experiment corpus

``--check`` exits non-zero and prints a per-case diff report when the
current build disagrees with the snapshots.  Every run executes with
invariant audits enabled (``REPRO_AUDIT=1``), so a clean pass certifies
both bit-stability and conservation.

Policy: regenerating goldens is an explicit statement that the change
in results is *intended*.  The PR doing so must say which cases moved
and why — see ``docs/testing.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

GOLDENS_DIR = REPO / "tests" / "goldens"
CORPORA = ("matrix", "experiments")


def _load(name: str) -> dict:
    path = GOLDENS_DIR / f"{name}.json"
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def _write(name: str, data: dict) -> Path:
    GOLDENS_DIR.mkdir(parents=True, exist_ok=True)
    path = GOLDENS_DIR / f"{name}.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def _compute(name: str, jobs: int) -> dict:
    from repro.check.goldens import compute_experiments, compute_matrix
    from repro.runner import configure_runner

    if name == "matrix":
        return compute_matrix(audit=True)
    # The experiment corpus goes through the ambient runner; keep the
    # disk cache out of it so a stale entry can never mask a change.
    configure_runner(jobs=jobs, persistent=False)
    return compute_experiments()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate or verify the golden regression corpus."
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the checked-in snapshots instead of writing",
    )
    parser.add_argument(
        "--only",
        choices=CORPORA,
        default=None,
        help="restrict to one corpus (default: both)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment corpus (default 1)",
    )
    args = parser.parse_args(argv)

    # Audits everywhere, including runner worker processes.
    os.environ["REPRO_AUDIT"] = "1"
    from repro.check.goldens import diff_goldens

    names = [args.only] if args.only else list(CORPORA)
    failed = False
    for name in names:
        started = time.time()
        current = _compute(name, args.jobs)
        elapsed = time.time() - started
        if args.check:
            recorded = _load(name)
            report = diff_goldens(recorded, current)
            if report:
                failed = True
                print(f"{name}: {len(report)} case(s) diverge "
                      f"({elapsed:.1f}s):")
                for line in report:
                    print(f"  {line}")
            else:
                print(f"{name}: {len(current)} cases match ({elapsed:.1f}s)")
        else:
            recorded = _load(name)
            report = diff_goldens(recorded, current)
            path = _write(name, current)
            print(f"{name}: wrote {len(current)} cases to {path} "
                  f"({elapsed:.1f}s)")
            for line in report:
                print(f"  {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
