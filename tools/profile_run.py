"""Profile one simulation under cProfile and print the hot functions.

The engine-throughput work that produced the timing-wheel scheduler and
the event-driven router wake-ups was driven by exactly this view: run a
representative configuration, sort by cumulative or total time, and
attack the top of the list.  Kept as a first-class tool so the next
optimization round starts from a measurement, not a guess.

Before the flat listing it prints a per-component rollup: every
profiled frame is bucketed by the ``repro`` module that owns it
(compiled-extension methods land in ``sim._native [C]``), and the
buckets are ranked by the time spent in their own code.  That table
answers "which component do I attack next" directly, without mentally
summing a dozen pstats rows per file.

Usage::

    PYTHONPATH=src python tools/profile_run.py [--requests N]
        [--workload NAME] [--label CONFIG] [--sort tottime|cumtime]
        [--limit N] [--obs] [--stats PATH]
        [--engine {heap,wheel,batch,native}]

``--stats PATH`` additionally dumps the raw pstats file for
``snakeviz``/``pstats`` post-processing.  ``--label`` accepts the same
topology labels as the experiments (e.g. ``chain-4``, ``ring-8``).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import re
import sys

from repro.config import SystemConfig, parse_label
from repro.sim.engine import Engine
from repro.system import MemoryNetworkSystem
from repro.units import TIB_BYTES
from repro.workloads import get_workload

_NATIVE_FRAME = re.compile(r"\brepro\.sim\._native\b")


def _component_of(frame_key: tuple) -> str:
    """Bucket one pstats frame ``(filename, lineno, funcname)`` by the
    repro component that owns it."""
    filename, _lineno, funcname = frame_key
    path = filename.replace("\\", "/")
    marker = "/repro/"
    at = path.rfind(marker)
    if at >= 0:
        module = path[at + len(marker):]
        module = module[:-3] if module.endswith(".py") else module
        parts = module.replace("/__init__", "").split("/")
        # One level below the package keeps the table readable:
        # net/link.py -> net.link, sim/engine.py -> sim.engine.
        return ".".join(parts[:2]) if parts else "repro"
    if _NATIVE_FRAME.search(funcname):
        return "sim._native [C]"
    if filename == "~" or filename.startswith("<"):
        return "(interpreter built-ins)"
    return "(stdlib/other)"


def print_component_table(stats: pstats.Stats) -> None:
    """Per-component self-time rollup over every profiled frame."""
    totals: dict[str, tuple[float, int]] = {}
    for frame_key, (_cc, ncalls, tottime, _ct, _callers) in stats.stats.items():
        component = _component_of(frame_key)
        self_s, calls = totals.get(component, (0.0, 0))
        totals[component] = (self_s + tottime, calls + ncalls)
    wall = sum(self_s for self_s, _ in totals.values()) or 1.0
    print("\nper-component self time:")
    print(f"  {'component':<24} {'self s':>8} {'share':>7} {'calls':>10}")
    for component, (self_s, calls) in sorted(
        totals.items(), key=lambda item: item[1][0], reverse=True
    ):
        print(
            f"  {component:<24} {self_s:8.3f} {self_s / wall:6.1%} {calls:10d}"
        )


def profile_simulation(
    requests: int,
    workload: str,
    label: str | None,
    obs: bool,
    sort: str,
    limit: int,
    stats_path: str | None,
    engine: str | None = None,
) -> None:
    config = SystemConfig(total_capacity_bytes=TIB_BYTES)
    if label:
        config = parse_label(label, config)
    if obs:
        config = config.with_obs(attribution=True)
    system = MemoryNetworkSystem(
        config,
        get_workload(workload),
        requests=requests,
        engine=Engine(engine) if engine else None,
    )

    profiler = cProfile.Profile()
    profiler.enable()
    result = system.run()
    profiler.disable()

    print(
        f"{workload} x {requests} requests"
        + (f" on {label}" if label else "")
        + f": {result.events_processed} events, runtime {result.runtime_ps} ps"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    if stats_path:
        stats.dump_stats(stats_path)
        print(f"raw stats written to {stats_path}")
    print_component_table(stats)
    print()
    stats.sort_stats(sort).print_stats(limit)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=2000)
    parser.add_argument("--workload", default="KMEANS")
    parser.add_argument(
        "--label", default=None,
        help="topology/config label, e.g. chain-4 or ring-8 (default: base)",
    )
    parser.add_argument(
        "--sort", default="tottime", choices=("tottime", "cumtime"),
        help="pstats sort key (default tottime: self-time finds hot loops)",
    )
    parser.add_argument("--limit", type=int, default=25)
    parser.add_argument(
        "--obs", action="store_true",
        help="profile with latency attribution enabled",
    )
    parser.add_argument(
        "--stats", default=None, metavar="PATH",
        help="also dump the raw pstats file to PATH",
    )
    parser.add_argument(
        "--engine", default=None, choices=("heap", "wheel", "batch", "native"),
        help="event-scheduler backend to profile (default: the ambient "
        "one — REPRO_ENGINE or the wheel)",
    )
    args = parser.parse_args(argv)
    profile_simulation(
        args.requests, args.workload, args.label, args.obs,
        args.sort, args.limit, args.stats, args.engine,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
