"""Profile one simulation under cProfile and print the hot functions.

The engine-throughput work that produced the timing-wheel scheduler and
the event-driven router wake-ups was driven by exactly this view: run a
representative configuration, sort by cumulative or total time, and
attack the top of the list.  Kept as a first-class tool so the next
optimization round starts from a measurement, not a guess.

Usage::

    PYTHONPATH=src python tools/profile_run.py [--requests N]
        [--workload NAME] [--label CONFIG] [--sort tottime|cumtime]
        [--limit N] [--obs] [--stats PATH]
        [--engine {heap,wheel,batch}]

``--stats PATH`` additionally dumps the raw pstats file for
``snakeviz``/``pstats`` post-processing.  ``--label`` accepts the same
topology labels as the experiments (e.g. ``chain-4``, ``ring-8``).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

from repro.config import SystemConfig, parse_label
from repro.sim.engine import Engine
from repro.system import MemoryNetworkSystem
from repro.units import TIB_BYTES
from repro.workloads import get_workload


def profile_simulation(
    requests: int,
    workload: str,
    label: str | None,
    obs: bool,
    sort: str,
    limit: int,
    stats_path: str | None,
    engine: str | None = None,
) -> None:
    config = SystemConfig(total_capacity_bytes=TIB_BYTES)
    if label:
        config = parse_label(label, config)
    if obs:
        config = config.with_obs(attribution=True)
    system = MemoryNetworkSystem(
        config,
        get_workload(workload),
        requests=requests,
        engine=Engine(engine) if engine else None,
    )

    profiler = cProfile.Profile()
    profiler.enable()
    result = system.run()
    profiler.disable()

    print(
        f"{workload} x {requests} requests"
        + (f" on {label}" if label else "")
        + f": {result.events_processed} events, runtime {result.runtime_ps} ps"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    if stats_path:
        stats.dump_stats(stats_path)
        print(f"raw stats written to {stats_path}")
    stats.sort_stats(sort).print_stats(limit)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=2000)
    parser.add_argument("--workload", default="KMEANS")
    parser.add_argument(
        "--label", default=None,
        help="topology/config label, e.g. chain-4 or ring-8 (default: base)",
    )
    parser.add_argument(
        "--sort", default="tottime", choices=("tottime", "cumtime"),
        help="pstats sort key (default tottime: self-time finds hot loops)",
    )
    parser.add_argument("--limit", type=int, default=25)
    parser.add_argument(
        "--obs", action="store_true",
        help="profile with latency attribution enabled",
    )
    parser.add_argument(
        "--stats", default=None, metavar="PATH",
        help="also dump the raw pstats file to PATH",
    )
    parser.add_argument(
        "--engine", default=None, choices=("heap", "wheel", "batch"),
        help="event-scheduler backend to profile (default: the ambient "
        "one — REPRO_ENGINE or the wheel)",
    )
    args = parser.parse_args(argv)
    profile_simulation(
        args.requests, args.workload, args.label, args.obs,
        args.sort, args.limit, args.stats, args.engine,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
