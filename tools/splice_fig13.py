#!/usr/bin/env python3
"""Regenerate Fig 13 (equal-total-work design) and splice it into the
saved full experiment output."""

import re
import sys
import time

from repro.experiments.fig13 import run

OUTPUT = "/root/repo/experiments_full_output.txt"


def main() -> None:
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    started = time.time()
    output = run(requests=requests)
    body = output.text + f"\n\nNote: {output.notes}\n" + (
        f"[fig13 completed in {time.time() - started:.1f}s "
        f"(regenerated at --requests {requests}, equal-total-work design)]\n"
    )
    text = open(OUTPUT, errors="replace").read()
    pattern = re.compile(
        r"Fig 13:.*?\[fig13 completed in [^\]]*\]\n", re.DOTALL
    )
    if pattern.search(text):
        text = pattern.sub(body, text, count=1)
    else:
        text += "\n" + body
    open(OUTPUT, "w").write(text)
    print(output.text)


if __name__ == "__main__":
    main()
