"""Skip-list topology (Section 4.2, Fig 8).

A central sequential chain (the "linked list") carries write-class
traffic; spare cube ports implement bypass ("skip") links that shorten
read paths to logarithmic length, similar to express cubes.

Construction is deterministic: the cube range is recursively bisected
and a skip link is added from each segment's entry point to its
midpoint, provided both endpoints still have a free port within the
4-port package budget.  For 16 cubes this yields exactly the Fig 8
structure where the farthest cube is 5 hops from the host.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.net.routing import RouteClass
from repro.topology.base import (
    ALL_CLASSES,
    HOST_ID,
    READ_ONLY,
    NodeKind,
    Topology,
    chain_positions,
)


def _largest_pow2_at_most(value: int) -> int:
    if value < 1:
        raise ValueError("value must be >= 1")
    return 1 << (value.bit_length() - 1)


def plan_skip_links(
    count: int, max_ports: int = 4
) -> List[Tuple[int, int]]:
    """Plan skip links over cube *positions* ``0..count-1``.

    Returns (from_position, to_position) pairs.  Chain ports (and the
    host port on position 0) are reserved first; skip links are added by
    recursive bisection while the port budget allows.
    """
    if count < 1:
        raise TopologyError("need at least one cube")
    ports_used: Dict[int, int] = {}
    for position in range(count):
        used = 1  # uplink toward host along the chain
        if position < count - 1:
            used += 1  # downlink along the chain
        ports_used[position] = used

    skips: List[Tuple[int, int]] = []

    def bisect(lo: int, hi: int) -> None:
        size = hi - lo + 1
        if size < 3:
            return
        span = _largest_pow2_at_most(size // 2)
        mid = lo + span
        if span >= 2 and ports_used[lo] < max_ports and ports_used[mid] < max_ports:
            skips.append((lo, mid))
            ports_used[lo] += 1
            ports_used[mid] += 1
        bisect(lo, mid - 1)
        bisect(mid, hi)

    bisect(0, count - 1)
    return skips


def build_skiplist(techs: Sequence[str], max_ports: int = 4) -> Topology:
    """Build the skip-list MN for cubes with the given tech per position.

    Chain links carry all traffic classes; skip links are read-only
    (write requests ride the chain unless the host's write-burst
    hysteresis temporarily re-admits them, which is a routing decision,
    not a topology one).
    """
    topo = Topology(name="skiplist")
    topo.add_node(HOST_ID, NodeKind.HOST)
    ids = chain_positions(len(techs))
    for node_id, tech in zip(ids, techs):
        topo.add_node(node_id, NodeKind.CUBE, tech=tech)
    previous = HOST_ID
    for node_id in ids:
        topo.add_edge(previous, node_id, classes=ALL_CLASSES, is_chain=True)
        previous = node_id
    for lo, hi in plan_skip_links(len(techs), max_ports=max_ports):
        topo.add_edge(ids[lo], ids[hi], classes=READ_ONLY, is_chain=False)
    return topo
