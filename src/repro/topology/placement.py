"""NVM cube placement (Section 3.3): NVM-L (last) vs NVM-F (first).

Positions are ranked by their shortest-path distance from the host in
the finished shape; NVM-L assigns NVM cubes to the farthest positions,
NVM-F to the nearest.  For a chain this is literally "the end of the
chain" vs "adjacent to the processor", and the same rule generalizes to
rings, trees, and skip-lists.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.config import NVM_FIRST, NVM_LAST
from repro.errors import TopologyError
from repro.net.routing import RouteClass, bfs_paths
from repro.topology.base import HOST_ID, Topology


def position_distances(topo: Topology) -> List[int]:
    """Hop distance from the host of each cube position (node-id order)."""
    paths = bfs_paths(topo.adjacency(RouteClass.READ), HOST_ID)
    return [len(paths[cube]) - 1 for cube in topo.cube_ids()]


def assign_technologies(
    build: Callable[[Sequence[str]], Topology],
    num_dram: int,
    num_nvm: int,
    placement: str,
) -> List[str]:
    """Compute the tech of each position for a shape builder.

    ``build`` constructs the topology from a per-position tech list (the
    shape depends only on the cube count, so a dummy list suffices for
    measuring distances).
    """
    count = num_dram + num_nvm
    if count < 1:
        raise TopologyError("need at least one cube")
    shape = build(["DRAM"] * count)
    distances = position_distances(shape)
    order = sorted(range(count), key=lambda p: (distances[p], p))
    if placement == NVM_LAST:
        nvm_positions = set(order[count - num_nvm :]) if num_nvm else set()
    elif placement == NVM_FIRST:
        nvm_positions = set(order[:num_nvm])
    else:
        raise TopologyError(f"unknown placement {placement!r}")
    return [
        "NVM" if position in nvm_positions else "DRAM" for position in range(count)
    ]
