"""MetaCube topology (Section 4.3, Fig 9).

A MetaCube packages several memory cubes on a silicon interposer behind
a central interface chip.  The interface chip's router is not bound by
the 4-port cube budget, so the *package-level* network can use a
high-radix layout; member cubes hang off the interface chip over wide,
cheap interposer links.

Packaging rules used here (documented in DESIGN.md):

* cubes are grouped by technology into packages of up to ``arity``
  members; a group of one needs no interposer and ships as a plain cube;
* packages form a ternary tree (1 uplink + 3 downlinks per interface
  chip), the best package-level layout available within SerDes budgets;
* NVM packages are placed last (farther from the host) or first,
  matching the NVM-L / NVM-F placements of other topologies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.config import NVM_FIRST, NVM_LAST
from repro.errors import TopologyError
from repro.topology.base import (
    HOST_ID,
    LinkKind,
    NodeKind,
    Topology,
)
from repro.topology.tree import tree_parent


def plan_packages(
    num_dram: int, num_nvm: int, placement: str, arity: int = 4
) -> List[Tuple[str, int]]:
    """Group cubes into packages: list of ``(tech, member_count)``.

    DRAM packages come first for NVM-L placement, last for NVM-F.
    """
    if num_dram < 0 or num_nvm < 0 or num_dram + num_nvm == 0:
        raise TopologyError("need a positive cube count")
    if arity < 1:
        raise TopologyError("metacube arity must be >= 1")

    def group(tech: str, count: int) -> List[Tuple[str, int]]:
        packages = []
        remaining = count
        while remaining > 0:
            members = min(arity, remaining)
            packages.append((tech, members))
            remaining -= members
        return packages

    dram_packages = group("DRAM", num_dram)
    nvm_packages = group("NVM", num_nvm)
    if placement == NVM_LAST:
        return dram_packages + nvm_packages
    if placement == NVM_FIRST:
        return nvm_packages + dram_packages
    raise TopologyError(f"unknown placement {placement!r}")


def build_metacube(
    num_dram: int,
    num_nvm: int,
    placement: str = NVM_LAST,
    arity: int = 4,
    package_arity: int = 3,
) -> Topology:
    """Build the MetaCube MN.

    Cube node ids are 1..n ordered by package (so address-map position
    follows package placement); interface-chip switches get ids after
    the cubes.
    """
    packages = plan_packages(num_dram, num_nvm, placement, arity)
    total_cubes = num_dram + num_nvm
    topo = Topology(name="metacube")
    topo.add_node(HOST_ID, NodeKind.HOST)

    next_cube_id = 1
    switch_id = total_cubes + 1
    attachment_points: List[int] = []
    package_members: List[List[int]] = []

    for package_index, (tech, members) in enumerate(packages):
        member_ids = []
        for _ in range(members):
            topo.add_node(
                next_cube_id, NodeKind.CUBE, tech=tech, package=package_index
            )
            member_ids.append(next_cube_id)
            next_cube_id += 1
        package_members.append(member_ids)
        if members == 1:
            attachment_points.append(member_ids[0])
        else:
            topo.add_node(switch_id, NodeKind.SWITCH, package=package_index)
            for cube_id in member_ids:
                topo.add_edge(
                    switch_id, cube_id, link_kind=LinkKind.INTERPOSER
                )
            attachment_points.append(switch_id)
            switch_id += 1

    # package-level ternary tree over attachment points
    for position, attach in enumerate(attachment_points):
        if position == 0:
            topo.add_edge(HOST_ID, attach, is_chain=True)
        else:
            parent = attachment_points[tree_parent(position, package_arity)]
            topo.add_edge(parent, attach, is_chain=True)
    return topo


def package_order_techs(
    num_dram: int, num_nvm: int, placement: str, arity: int = 4
) -> List[str]:
    """Tech of each cube in node-id order (used by the address map)."""
    techs: List[str] = []
    for tech, members in plan_packages(num_dram, num_nvm, placement, arity):
        techs.extend([tech] * members)
    return techs
