"""Chain topology (Fig 3b): host -> cube1 -> cube2 -> ... -> cubeN.

Minimizes ports per cube but has the worst hop counts; it is the
normalization baseline for every speedup figure in the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import HOST_ID, NodeKind, Topology, chain_positions


def build_chain(techs: Sequence[str]) -> Topology:
    """Build a chain for cubes with the given tech per position.

    ``techs[i]`` is the technology of the cube ``i`` hops into the chain
    (position 0 is adjacent to the host).
    """
    topo = Topology(name="chain")
    topo.add_node(HOST_ID, NodeKind.HOST)
    ids = chain_positions(len(techs))
    for node_id, tech in zip(ids, techs):
        topo.add_node(node_id, NodeKind.CUBE, tech=tech)
    previous = HOST_ID
    for node_id in ids:
        topo.add_edge(previous, node_id, is_chain=True)
        previous = node_id
    return topo
