"""Build the configured topology from a :class:`SystemConfig`."""

from __future__ import annotations

from typing import List

from repro import config as cfg
from repro.errors import ConfigError
from repro.topology.base import Topology
from repro.topology.chain import build_chain
from repro.topology.metacube import build_metacube
from repro.topology.placement import assign_technologies
from repro.topology.ring import build_ring
from repro.topology.skiplist import build_skiplist
from repro.topology.tree import build_tree


def build_topology(config: cfg.SystemConfig) -> Topology:
    """Instantiate the MN graph for one host port."""
    num_dram, num_nvm = config.cube_counts()
    if config.topology == cfg.TOPOLOGY_METACUBE:
        topo = build_metacube(
            num_dram,
            num_nvm,
            placement=config.nvm_placement,
            arity=config.metacube_arity,
        )
    else:
        builders = {
            cfg.TOPOLOGY_CHAIN: build_chain,
            cfg.TOPOLOGY_RING: build_ring,
            cfg.TOPOLOGY_TREE: build_tree,
            cfg.TOPOLOGY_SKIPLIST: build_skiplist,
        }
        try:
            builder = builders[config.topology]
        except KeyError:
            raise ConfigError(f"unknown topology {config.topology!r}") from None
        techs: List[str] = assign_technologies(
            builder, num_dram, num_nvm, config.nvm_placement
        )
        topo = builder(techs)
    for a, b in config.failed_links:
        topo.remove_edge(a, b)
    topo.validate(max_cube_ports=config.cube.external_ports)
    return topo
