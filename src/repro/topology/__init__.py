"""MN topologies: chain, ring, ternary tree, skip-list, MetaCube."""

from repro.topology.base import EdgeSpec, NodeKind, NodeSpec, Topology
from repro.topology.chain import build_chain
from repro.topology.ring import build_ring
from repro.topology.tree import build_tree
from repro.topology.skiplist import build_skiplist
from repro.topology.metacube import build_metacube
from repro.topology.factory import build_topology
from repro.topology.placement import assign_technologies

__all__ = [
    "EdgeSpec",
    "NodeKind",
    "NodeSpec",
    "Topology",
    "build_chain",
    "build_ring",
    "build_tree",
    "build_skiplist",
    "build_metacube",
    "build_topology",
    "assign_technologies",
]
