"""Ring topology (Fig 3c): the chain closed into a loop.

The host still attaches through a single link (Section 5: each port
connects to *one* external link of *one* memory cube), so the loop runs
cube0 -> cube1 -> ... -> cubeN-1 -> cube0.  Requests take the shorter
branch around the loop, roughly halving the average hop count relative
to the chain while leaving the host-link bandwidth unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import HOST_ID, NodeKind, Topology, chain_positions


def build_ring(techs: Sequence[str]) -> Topology:
    """Build a ring; position 0 is the cube attached to the host.

    The shortest-path distance of position ``i`` is ``1 + min(i, n-i)``.
    """
    topo = Topology(name="ring")
    topo.add_node(HOST_ID, NodeKind.HOST)
    ids = chain_positions(len(techs))
    for node_id, tech in zip(ids, techs):
        topo.add_node(node_id, NodeKind.CUBE, tech=tech)
    topo.add_edge(HOST_ID, ids[0], is_chain=True)
    previous = ids[0]
    for node_id in ids[1:]:
        topo.add_edge(previous, node_id, is_chain=True)
        previous = node_id
    if len(ids) > 2:
        topo.add_edge(ids[-1], ids[0], is_chain=True)
    return topo
