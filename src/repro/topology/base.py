"""Topology description shared by all MN shapes.

A topology is a graph of nodes (the host, memory cubes, and — for
MetaCubes — interface-chip switches) and undirected edge specs.  Each
edge carries the set of traffic classes allowed on it (the skip-list
restricts write-class traffic to the chain) and whether it is an
external SerDes link or an on-interposer link.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import TopologyError
from repro.net.routing import RouteClass

HOST_ID = 0

ALL_CLASSES: FrozenSet[RouteClass] = frozenset((RouteClass.READ, RouteClass.WRITE))
READ_ONLY: FrozenSet[RouteClass] = frozenset((RouteClass.READ,))


class NodeKind(enum.IntEnum):
    HOST = 0
    CUBE = 1
    SWITCH = 2  # MetaCube interface chip


class LinkKind(enum.IntEnum):
    EXTERNAL = 0  # package-to-package SerDes
    INTERPOSER = 1  # inside a MetaCube package


@dataclass(frozen=True)
class NodeSpec:
    node_id: int
    kind: NodeKind
    tech: Optional[str] = None  # "DRAM" | "NVM" for cubes, None otherwise
    package: Optional[int] = None  # MetaCube package index, if any


@dataclass(frozen=True)
class EdgeSpec:
    a: int
    b: int
    link_kind: LinkKind = LinkKind.EXTERNAL
    classes: FrozenSet[RouteClass] = ALL_CLASSES
    is_chain: bool = False  # part of the skip-list central chain

    def endpoints(self) -> Tuple[int, int]:
        return (self.a, self.b)


@dataclass
class Topology:
    """A fully-specified MN graph for one host port."""

    name: str
    nodes: Dict[int, NodeSpec] = field(default_factory=dict)
    edges: List[EdgeSpec] = field(default_factory=list)

    # -- construction helpers ------------------------------------------------
    def add_node(
        self,
        node_id: int,
        kind: NodeKind,
        tech: Optional[str] = None,
        package: Optional[int] = None,
    ) -> None:
        if node_id in self.nodes:
            raise TopologyError(f"duplicate node id {node_id}")
        self.nodes[node_id] = NodeSpec(node_id, kind, tech, package)

    def add_edge(
        self,
        a: int,
        b: int,
        link_kind: LinkKind = LinkKind.EXTERNAL,
        classes: FrozenSet[RouteClass] = ALL_CLASSES,
        is_chain: bool = False,
    ) -> None:
        if a == b:
            raise TopologyError("self-loop edges are not allowed")
        for node in (a, b):
            if node not in self.nodes:
                raise TopologyError(f"edge endpoint {node} is not a node")
        if any({e.a, e.b} == {a, b} for e in self.edges):
            raise TopologyError(f"duplicate edge {a}-{b}")
        self.edges.append(EdgeSpec(a, b, link_kind, classes, is_chain))

    # -- queries --------------------------------------------------------------
    def cube_ids(self) -> List[int]:
        return sorted(
            n.node_id for n in self.nodes.values() if n.kind == NodeKind.CUBE
        )

    def switch_ids(self) -> List[int]:
        return sorted(
            n.node_id for n in self.nodes.values() if n.kind == NodeKind.SWITCH
        )

    def tech_of(self, node_id: int) -> Optional[str]:
        return self.nodes[node_id].tech

    def adjacency(self, cls: RouteClass) -> Dict[int, List[int]]:
        adj: Dict[int, List[int]] = {n: [] for n in self.nodes}
        for edge in self.edges:
            if cls in edge.classes:
                adj[edge.a].append(edge.b)
                adj[edge.b].append(edge.a)
        return adj

    def adjacency_by_class(self) -> Dict[RouteClass, Dict[int, List[int]]]:
        return {cls: self.adjacency(cls) for cls in (RouteClass.READ, RouteClass.WRITE)}

    def remove_edge(self, a: int, b: int) -> None:
        """Remove the edge between ``a`` and ``b`` (RAS fault injection)."""
        before = len(self.edges)
        self.edges = [e for e in self.edges if {e.a, e.b} != {a, b}]
        if len(self.edges) == before:
            raise TopologyError(f"no edge {a}-{b} to remove")

    def degree(self, node_id: int) -> int:
        return sum(1 for e in self.edges if node_id in (e.a, e.b))

    def external_degree(self, node_id: int) -> int:
        """SerDes links only — what the 4-port package budget constrains."""
        return sum(
            1
            for e in self.edges
            if node_id in (e.a, e.b) and e.link_kind == LinkKind.EXTERNAL
        )

    # -- invariants -------------------------------------------------------------
    def validate(self, max_cube_ports: int = 4) -> None:
        """Check connectivity, class coverage, and the port budget."""
        if HOST_ID not in self.nodes:
            raise TopologyError("topology lacks a host node")
        if self.nodes[HOST_ID].kind != NodeKind.HOST:
            raise TopologyError("node 0 must be the host")
        cubes = self.cube_ids()
        if not cubes:
            raise TopologyError("topology has no memory cubes")
        for cls in (RouteClass.READ, RouteClass.WRITE):
            reachable = _reachable(self.adjacency(cls), HOST_ID)
            missing = [c for c in cubes if c not in reachable]
            if missing:
                raise TopologyError(
                    f"{self.name}: cubes {missing} unreachable for {cls.name}"
                )
        for node in self.nodes.values():
            if node.kind == NodeKind.CUBE:
                degree = self.external_degree(node.node_id)
                # interposer links are not SerDes ports, so a MetaCube
                # member's link to its interface chip is exempt.
                if degree > max_cube_ports:
                    raise TopologyError(
                        f"{self.name}: cube {node.node_id} uses {degree} "
                        f"external ports (budget {max_cube_ports})"
                    )


def _reachable(adjacency: Dict[int, List[int]], source: int) -> set:
    seen = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        for neighbor in adjacency.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return seen


def chain_positions(count: int) -> List[int]:
    """Node ids 1..count for cubes laid out in placement order."""
    if count < 1:
        raise TopologyError("need at least one cube")
    return list(range(1, count + 1))
