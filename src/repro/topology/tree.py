"""Ternary tree topology (Fig 3d).

Each cube spends one of its four ports on the uplink and up to three on
children, so the worst-case hop count grows logarithmically (base 3).
Positions are filled in breadth-first order; position 0 is the root
attached to the host.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import HOST_ID, NodeKind, Topology, chain_positions


def tree_parent(position: int, arity: int = 3) -> int:
    """Parent *position* of a BFS-ordered tree position (root has none)."""
    if position <= 0:
        raise ValueError("the root has no parent")
    return (position - 1) // arity


def build_tree(techs: Sequence[str], arity: int = 3) -> Topology:
    """Build an ``arity``-ary BFS-filled tree of cubes.

    ``techs[i]`` is the technology at BFS position ``i``.
    """
    if arity < 1:
        raise ValueError("tree arity must be >= 1")
    topo = Topology(name="tree")
    topo.add_node(HOST_ID, NodeKind.HOST)
    ids = chain_positions(len(techs))
    for node_id, tech in zip(ids, techs):
        topo.add_node(node_id, NodeKind.CUBE, tech=tech)
    for position, node_id in enumerate(ids):
        if position == 0:
            topo.add_edge(HOST_ID, node_id, is_chain=True)
        else:
            parent_id = ids[tree_parent(position, arity)]
            topo.add_edge(parent_id, node_id, is_chain=True)
    return topo
