"""Dynamic-energy model using the paper's per-bit figures.

* network transport: 5 pJ/bit per hop (per link traversal);
* on-interposer hops inside a MetaCube are far shorter and unserialized
  — charged at a configurable fraction (default 1 pJ/bit);
* memory access: 12 pJ/bit for DRAM reads/writes and NVM reads,
  120 pJ/bit for NVM writes (Table 2).

Static/standby power is excluded, as in the paper.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.config import EnergyConfig, MemTechConfig, PacketConfig
from repro.results import EnergyReport

INTERPOSER_PJ_PER_BIT = 1.0


class EnergyModel:
    """Folds traffic counts into an :class:`EnergyReport`."""

    def __init__(
        self,
        energy_config: EnergyConfig,
        packet_config: PacketConfig,
        interposer_pj_per_bit: float = INTERPOSER_PJ_PER_BIT,
    ) -> None:
        self.energy_config = energy_config
        self.packet_config = packet_config
        self.interposer_pj_per_bit = interposer_pj_per_bit

    def report(
        self,
        external_bits_hops: int,
        interposer_bits_hops: int,
        accesses: Iterable[Tuple[MemTechConfig, int, int]],
    ) -> EnergyReport:
        """Build a report.

        ``accesses`` yields ``(tech, reads, writes)`` per cube; each
        access moves one payload (64 B line) worth of bits.
        """
        payload_bits = self.packet_config.payload_bytes * 8
        report = EnergyReport()
        report.network_pj = (
            external_bits_hops * self.energy_config.network_pj_per_bit_hop
        )
        report.interposer_pj = interposer_bits_hops * self.interposer_pj_per_bit
        for tech, reads, writes in accesses:
            report.memory_read_pj += reads * payload_bits * tech.read_energy_pj_per_bit
            report.memory_write_pj += (
                writes * payload_bits * tech.write_energy_pj_per_bit
            )
        return report
