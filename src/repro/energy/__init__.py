"""Dynamic-energy accounting (Section 6.3)."""

from repro.energy.model import EnergyModel

__all__ = ["EnergyModel"]
