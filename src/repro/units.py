"""Physical units and conversion helpers.

The entire simulator uses **integer picoseconds** for time and **bits**
for data sizes.  Keeping the event queue integral makes event ordering
exact and runs deterministic across platforms.
"""

from __future__ import annotations

from functools import lru_cache

# --- time ----------------------------------------------------------------
PS = 1
NS = 1_000 * PS
US = 1_000 * NS
MS = 1_000 * US


def ns(value: float) -> int:
    """Convert a (possibly fractional) nanosecond value to integer ps."""
    return int(round(value * NS))


def us(value: float) -> int:
    """Convert a microsecond value to integer ps."""
    return int(round(value * US))


def to_ns(ps_value: int) -> float:
    """Convert integer picoseconds back to float nanoseconds."""
    return ps_value / NS


# --- data sizes ------------------------------------------------------------
BIT = 1
BYTE = 8 * BIT
KB = 1024 * BYTE
MB = 1024 * KB
GB = 1024 * MB

KIB_BYTES = 1024
MIB_BYTES = 1024 * KIB_BYTES
GIB_BYTES = 1024 * MIB_BYTES
TIB_BYTES = 1024 * GIB_BYTES


def gib(value: float) -> int:
    """Capacity in bytes for a GiB value."""
    return int(value * GIB_BYTES)


def tib(value: float) -> int:
    """Capacity in bytes for a TiB value."""
    return int(value * TIB_BYTES)


# --- bandwidth -------------------------------------------------------------
def gbps_to_bits_per_ps(gbps: float) -> float:
    """Convert gigabits/second to bits/picosecond."""
    return gbps * 1e9 / 1e12


@lru_cache(maxsize=4096)
def serialization_ps(size_bits: int, lanes: int, lane_gbps: float) -> int:
    """Time to serialize ``size_bits`` over ``lanes`` at ``lane_gbps`` each.

    Returns an integer number of picoseconds, rounded up so a link is
    never modelled as faster than physically possible.  Memoized per
    ``(size_bits, lanes, lane_gbps)`` — a sweep uses only a handful of
    packet sizes but computes this on every link traversal.
    """
    bits_per_ps = gbps_to_bits_per_ps(lane_gbps) * lanes
    ticks = size_bits / bits_per_ps
    whole = int(ticks)
    if ticks > whole:
        whole += 1
    return whole


# --- energy ----------------------------------------------------------------
PJ = 1.0
NJ = 1_000 * PJ
UJ = 1_000 * NJ
MJ = 1_000 * UJ


def picojoules_to_microjoules(pj: float) -> float:
    return pj / UJ
