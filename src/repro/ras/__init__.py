"""RAS: runtime fault injection, link retry, graceful degradation.

The paper removes failed links *before* routes are computed (its
footnote 3; our ``failed_links`` config).  This package adds the runtime
half: seed-derived transient CRC errors with retry-buffer replay on
SerDes links, and scheduled permanent link/cube failures the system
survives by re-routing live — or, where the topology cannot reach a
cube any more, by failing the affected requests as counted host-level
errors and reporting availability on the result.  See ``docs/ras.md``.
"""

from repro.ras.injector import FaultInjector, LinkFaultState
from repro.ras.plan import FaultPlan

__all__ = ["FaultInjector", "FaultPlan", "LinkFaultState"]
