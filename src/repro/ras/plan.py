"""Fault plans: the configuration side of the RAS layer.

A :class:`FaultPlan` describes every fault a run will experience — it is
part of :class:`repro.config.SystemConfig` (the ``ras`` field) and hence
of the job content digest, so faulty runs cache and reproduce exactly
like healthy ones.  Two fault families exist:

* **transient bit errors** on SerDes links: each traversal flips a coin
  per bit (``bit_error_rate``, optionally overridden per edge); a failed
  CRC triggers a retry-buffer replay costing one extra serialization
  plus ``retry_penalty_ps`` (the HMC-style link retrain penalty),
* **permanent failures** at a scheduled simulated time: a link (or a
  whole cube, which kills all its links) dies mid-run and the system
  degrades instead of crashing — see ``docs/ras.md``.

Everything defaults to *off*; a default plan adds zero hot-path cost
(the link's ``faults`` slot stays ``None``) and leaves results
bit-identical to a build without this module.

This module deliberately imports only :mod:`repro.errors` and
:mod:`repro.units` so :mod:`repro.config` can depend on it without
cycles; the runtime machinery lives in :mod:`repro.ras.injector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigError
from repro.units import ns


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, seed-derived fault schedule for one simulation."""

    #: Per-bit transient error probability on every *external* SerDes
    #: link (interposer wires inside a MetaCube carry no SerDes and are
    #: exempt unless listed in ``link_error_rates``).
    bit_error_rate: float = 0.0
    #: Per-edge overrides: ``(node_a, node_b, bit_error_rate)``.  The
    #: pair is undirected and overrides the global rate for both
    #: directions (a zero silences one edge of a noisy plan).
    link_error_rates: Tuple[Tuple[int, int, float], ...] = ()
    #: Extra cost of one replay beyond the repeated serialization: the
    #: retry buffer rewinds and the lanes retrain (HMC-style).
    retry_penalty_ps: int = ns(8.0)
    #: Replay attempts drawn per traversal are capped here so a
    #: pathological error rate cannot livelock a link.
    max_replays: int = 8
    #: Scheduled permanent link failures: ``(node_a, node_b, time_ps)``.
    #: At ``time_ps`` the (undirected) edge dies: in-flight packets on it
    #: still deliver, then the edge carries nothing ever again.
    link_failures: Tuple[Tuple[int, int, int], ...] = ()
    #: Scheduled permanent cube failures: ``(cube_id, time_ps)``.  All
    #: edges incident to the cube die at once.
    cube_failures: Tuple[Tuple[int, int], ...] = ()

    @property
    def enabled(self) -> bool:
        """True if this plan can perturb a run at all."""
        return bool(
            self.bit_error_rate > 0.0
            or self.link_error_rates
            or self.link_failures
            or self.cube_failures
        )

    @property
    def has_permanent_failures(self) -> bool:
        return bool(self.link_failures or self.cube_failures)

    def validate(self) -> None:
        """Check the whole plan and report *every* violation at once.

        A hand-written plan with several mistakes gets one
        :class:`ConfigError` listing all of them with path-style
        locations (``ras.link_failures[2]: ...``) instead of a fix-one
        rerun-discover-the-next loop.
        """
        errors: List[str] = []
        if not 0.0 <= self.bit_error_rate < 1.0:
            errors.append("ras.bit_error_rate: must be in [0, 1)")
        if self.retry_penalty_ps < 0:
            errors.append("ras.retry_penalty_ps: cannot be negative")
        if self.max_replays < 1:
            errors.append("ras.max_replays: must be at least 1")
        seen_rates = set()
        for index, entry in enumerate(self.link_error_rates):
            path = f"ras.link_error_rates[{index}]"
            if len(entry) != 3:
                errors.append(f"{path}: {entry!r} must be (a, b, rate)")
                continue
            a, b, rate = entry
            if not _check_edge(errors, path, a, b):
                continue
            if not 0.0 <= rate < 1.0:
                errors.append(f"{path}: edge {a}-{b} rate must be in [0, 1)")
            key = frozenset((a, b))
            if key in seen_rates:
                errors.append(f"{path}: duplicate error rate for edge {a}-{b}")
            seen_rates.add(key)
        seen_failures = set()
        for index, entry in enumerate(self.link_failures):
            path = f"ras.link_failures[{index}]"
            if len(entry) != 3:
                errors.append(f"{path}: {entry!r} must be (a, b, time_ps)")
                continue
            a, b, time_ps = entry
            if not _check_edge(errors, path, a, b):
                continue
            if not isinstance(time_ps, int) or time_ps < 0:
                errors.append(
                    f"{path}: link failure time {time_ps!r} must be a "
                    "non-negative integer (picoseconds)"
                )
            key = frozenset((a, b))
            if key in seen_failures:
                errors.append(f"{path}: duplicate link failure {a}-{b}")
            seen_failures.add(key)
        seen_cubes = set()
        for index, entry in enumerate(self.cube_failures):
            path = f"ras.cube_failures[{index}]"
            if len(entry) != 2:
                errors.append(f"{path}: {entry!r} must be (cube_id, time_ps)")
                continue
            cube, time_ps = entry
            if not isinstance(cube, int) or cube < 1:
                errors.append(
                    f"{path}: cube failure id {cube!r} must be a "
                    "cube node id (>= 1)"
                )
                continue
            if not isinstance(time_ps, int) or time_ps < 0:
                errors.append(
                    f"{path}: cube failure time {time_ps!r} must be a "
                    "non-negative integer (picoseconds)"
                )
            if cube in seen_cubes:
                errors.append(f"{path}: duplicate cube failure {cube}")
            seen_cubes.add(cube)
        if errors:
            raise ConfigError("; ".join(errors))


def _check_edge(errors: List[str], path: str, a: object, b: object) -> bool:
    """Append edge-endpoint violations to ``errors``; True when clean."""
    clean = True
    for node in (a, b):
        if not isinstance(node, int) or node < 0:
            errors.append(
                f"{path}: endpoint {node!r} must be a non-negative node id"
            )
            clean = False
    if clean and a == b:
        errors.append(f"{path}: edge {a}-{b} is a self-loop")
        clean = False
    return clean
