"""Runtime fault injection: seeded error draws and failure scheduling.

The :class:`FaultInjector` is created by
:class:`repro.system.MemoryNetworkSystem` only when the config's
:class:`~repro.ras.plan.FaultPlan` is enabled; a disabled plan leaves
every link's ``faults`` slot ``None`` and the hot paths untouched.

Determinism: each link draws from its own :class:`RandomStream` seeded
by ``derive_seed(config.seed, "ras", link.name)``.  Within one
simulation the engine dispatches link sends in a deterministic order,
and the per-link streams are independent of each other, so the same
(seed, plan) pair produces bit-identical results in serial and parallel
runs — the property the RAS determinism tests pin via
:func:`repro.serialization.result_digest`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.ras.plan import FaultPlan
from repro.sim import Engine, RandomStream, StatsRegistry


class LinkFaultState:
    """Per-link transient-error state attached to ``Link.faults``."""

    __slots__ = ("stream", "ber", "retry_penalty_ps", "max_replays", "stats", "_probs")

    def __init__(
        self,
        stream: RandomStream,
        ber: float,
        retry_penalty_ps: int,
        max_replays: int,
        stats: StatsRegistry,
    ) -> None:
        self.stream = stream
        self.ber = ber
        self.retry_penalty_ps = retry_penalty_ps
        self.max_replays = max_replays
        self.stats = stats
        self._probs: Dict[int, float] = {}  # packet bits -> P(CRC failure)

    def draw_replays(self, size_bits: int) -> int:
        """Number of CRC-failed attempts before this packet got through."""
        p = self._probs.get(size_bits)
        if p is None:
            # one CRC covers the whole packet: it fails if any bit flipped
            p = self._probs[size_bits] = 1.0 - (1.0 - self.ber) ** size_bits
        replays = 0
        rand = self.stream.random
        while replays < self.max_replays and rand() < p:
            replays += 1
        if replays:
            self.stats.count("ras.crc_errors", replays)
        return replays


class FaultInjector:
    """Binds a :class:`FaultPlan` to a concrete system's links/engine."""

    def __init__(self, plan: FaultPlan, root_seed: int) -> None:
        self.plan = plan
        self.root_seed = root_seed
        self.stats = StatsRegistry()
        self._overrides: Dict[FrozenSet[int], float] = {
            frozenset((a, b)): rate for a, b, rate in plan.link_error_rates
        }

    # ------------------------------------------------------------------
    def rate_for(self, a: int, b: int, external: bool) -> float:
        """Effective bit-error rate of the (undirected) edge ``a``-``b``."""
        override = self._overrides.get(frozenset((a, b)))
        if override is not None:
            return override
        # The global rate models SerDes lane noise; interposer wires
        # inside a MetaCube package have no SerDes and are exempt.
        return self.plan.bit_error_rate if external else 0.0

    def bind_link(self, link, a: int, b: int, external: bool) -> None:
        """Attach per-link fault state when the edge has a nonzero rate."""
        rate = self.rate_for(a, b, external)
        if rate <= 0.0:
            return
        link.faults = LinkFaultState(
            stream=RandomStream(self.root_seed, "ras", link.name),
            ber=rate,
            retry_penalty_ps=self.plan.retry_penalty_ps,
            max_replays=self.plan.max_replays,
            stats=self.stats,
        )

    def schedule_failures(
        self, engine: Engine, on_link_failure, on_cube_failure
    ) -> None:
        """Arm the plan's permanent failures as absolute-time events."""
        for a, b, time_ps in self.plan.link_failures:
            engine.schedule_at(time_ps, on_link_failure, a, b)
        for cube, time_ps in self.plan.cube_failures:
            engine.schedule_at(time_ps, on_cube_failure, cube)

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """RAS counters for ``SimResult.extra`` (sorted, JSON-able)."""
        return {name: float(v) for name, v in sorted(self.stats.counters.items())}


__all__: Tuple[str, ...] = ("FaultInjector", "LinkFaultState")
