"""Route tables: deterministic shortest paths per traffic class.

The skip-list topology differentiates traffic (Section 4.2): read-class
packets may use every link, write-class packets are restricted to the
central chain.  Other topologies expose a single class.  Routes are
computed by breadth-first search with deterministic tie-breaking
(lowest-numbered neighbour first), mirroring Garnet's static shortest
path tables.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import RoutingError


class RouteClass(enum.IntEnum):
    READ = 0
    WRITE = 1


Path = Tuple[int, ...]


def bfs_paths(
    adjacency: Mapping[int, Sequence[int]], source: int
) -> Dict[int, Path]:
    """Shortest paths from ``source`` to every reachable node.

    Neighbours are visited in sorted order so path choice is stable.
    """
    paths: Dict[int, Path] = {source: (source,)}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        base = paths[node]
        for neighbor in sorted(adjacency.get(node, ())):
            if neighbor not in paths:
                paths[neighbor] = base + (neighbor,)
                frontier.append(neighbor)
    return paths


# ---------------------------------------------------------------------------
# BFS memoization: sweeps rebuild the same few topologies hundreds of
# times, and the adjacency -> path-tree computation is pure, so route
# trees are shared process-wide keyed by (canonical adjacency, source).
# ---------------------------------------------------------------------------
_AdjacencyKey = Tuple[Tuple[int, Tuple[int, ...]], ...]
_BFS_CACHE: Dict[Tuple[_AdjacencyKey, int], Dict[int, Path]] = {}
_BFS_CACHE_MAX = 512  # plenty for every topology x class a sweep can build


def _adjacency_key(adjacency: Mapping[int, Sequence[int]]) -> _AdjacencyKey:
    return tuple(
        (node, tuple(sorted(adjacency[node]))) for node in sorted(adjacency)
    )


def cached_bfs_paths(
    adjacency: Mapping[int, Sequence[int]], source: int
) -> Dict[int, Path]:
    """Memoized :func:`bfs_paths`; callers must not mutate the result."""
    key = (_adjacency_key(adjacency), source)
    paths = _BFS_CACHE.get(key)
    if paths is None:
        if len(_BFS_CACHE) >= _BFS_CACHE_MAX:
            _BFS_CACHE.clear()
        paths = bfs_paths(adjacency, source)
        _BFS_CACHE[key] = paths
    return paths


def clear_route_cache() -> None:
    """Drop all memoized BFS trees (tests, memory pressure)."""
    _BFS_CACHE.clear()


class RouteTable:
    """Precomputed host<->cube paths for each traffic class.

    ``allow_unreachable=True`` builds a *degraded* table (the RAS layer
    rebuilds routes live after a permanent failure): unreachable cubes
    are simply absent from the path maps, :meth:`is_reachable` reports
    them, and the distance statistics cover the reachable set only.
    """

    def __init__(
        self,
        adjacency_by_class: Mapping[RouteClass, Mapping[int, Sequence[int]]],
        host_id: int,
        cube_ids: Iterable[int],
        allow_unreachable: bool = False,
    ) -> None:
        self.host_id = host_id
        self.cube_ids = tuple(sorted(cube_ids))
        self._to_cube: Dict[RouteClass, Dict[int, Path]] = {}
        self._to_host: Dict[RouteClass, Dict[int, Path]] = {}
        # Cube -> cube paths (peer-to-peer copies) are resolved lazily
        # through the shared BFS memo, so keep the adjacency around.
        self._adjacency: Dict[RouteClass, Mapping[int, Sequence[int]]] = dict(
            adjacency_by_class
        )
        for cls, adjacency in adjacency_by_class.items():
            forward = cached_bfs_paths(adjacency, host_id)
            missing = [c for c in self.cube_ids if c not in forward]
            if missing and not allow_unreachable:
                raise RoutingError(
                    f"cubes {missing} unreachable from host for {cls.name} class"
                )
            reachable = [c for c in self.cube_ids if c in forward]
            self._to_cube[cls] = {c: forward[c] for c in reachable}
            # Links are bidirectional pairs, so the reverse path is valid.
            self._to_host[cls] = {
                c: tuple(reversed(forward[c])) for c in reachable
            }

    # ------------------------------------------------------------------
    def classes(self) -> List[RouteClass]:
        return sorted(self._to_cube)

    def _class_or_fallback(self, cls: RouteClass) -> RouteClass:
        if cls in self._to_cube:
            return cls
        return RouteClass.READ

    def route_to_cube(self, cube_id: int, cls: RouteClass) -> Path:
        cls = self._class_or_fallback(cls)
        try:
            return self._to_cube[cls][cube_id]
        except KeyError:
            raise RoutingError(f"no route to cube {cube_id}") from None

    def route_to_host(self, cube_id: int, cls: RouteClass) -> Path:
        cls = self._class_or_fallback(cls)
        try:
            return self._to_host[cls][cube_id]
        except KeyError:
            raise RoutingError(f"no route from cube {cube_id}") from None

    def route_between(self, src: int, dst: int, cls: RouteClass) -> Path:
        """Shortest path between two cubes for a traffic class.

        Used by the peer-to-peer relay: the path may transit the host
        router as a plain switch, but never terminates there.  Served
        from the process-wide BFS memo, so repeated copies between the
        same pair cost a dictionary lookup.
        """
        cls = self._class_or_fallback(cls)
        paths = cached_bfs_paths(self._adjacency[cls], src)
        path = paths.get(dst)
        if path is None:
            raise RoutingError(f"no route from cube {src} to cube {dst}")
        return path

    def p2p_reachable(
        self, src: int, dst: int, cls: RouteClass = RouteClass.READ
    ) -> bool:
        """True if a cube->cube path exists for this class."""
        cls = self._class_or_fallback(cls)
        return dst in cached_bfs_paths(self._adjacency[cls], src)

    def is_reachable(self, cube_id: int, cls: RouteClass = RouteClass.READ) -> bool:
        """True if the table has a path to ``cube_id`` for this class."""
        return cube_id in self._to_cube[self._class_or_fallback(cls)]

    def reachable_cubes(self, cls: RouteClass = RouteClass.READ) -> Tuple[int, ...]:
        table = self._to_cube[self._class_or_fallback(cls)]
        return tuple(c for c in self.cube_ids if c in table)

    def distance(self, cube_id: int, cls: RouteClass = RouteClass.READ) -> int:
        """Hop count from the host to ``cube_id`` for a traffic class."""
        return len(self.route_to_cube(cube_id, cls)) - 1

    def max_distance(self, cls: RouteClass = RouteClass.READ) -> int:
        reachable = self.reachable_cubes(cls)
        if not reachable:
            return 0
        return max(self.distance(c, cls) for c in reachable)

    def mean_distance(self, cls: RouteClass = RouteClass.READ) -> float:
        reachable = self.reachable_cubes(cls)
        if not reachable:
            return 0.0
        return sum(self.distance(c, cls) for c in reachable) / len(reachable)
