"""Recycling packet allocator with array-backed accounting.

Every transaction allocates two :class:`~repro.net.packet.Packet`
objects (request and response) that live for a few microseconds of
simulated time and then become garbage — at hundreds of thousands of
events per second that is steady allocator churn on the hottest path.
:class:`PacketPool` recycles the carcasses through a flat freelist:
a released packet is re-initialised in place on the next acquire, so
the object (and its slot storage) is reused while its identity-relevant
state — including a *fresh* ``pid`` from the global counter — is
indistinguishable from a newly constructed packet.  Result digests are
therefore byte-identical with and without recycling.

Bookkeeping is structure-of-arrays style: per-kind acquire/release
counters live in preallocated ``array('q')`` typed arrays indexed by
the integer :class:`~repro.net.packet.PacketKind` value, and are only
decoded to the kind-name taxonomy when :meth:`PacketPool.stats` is
exported.

Safety: ``release`` marks the packet ``freed`` and rejects double
frees; the invariant auditor (:mod:`repro.check`) walks the visible
resident population (router queues, controller response buffers) and
verifies that no resident packet is freed and that the pool's live
count covers everything it can see (packets in flight on links are
live but invisible, so the check is a lower bound — tolerant of RAS
drops by construction, since drops release through the same gate).
"""

from __future__ import annotations

from array import array
from typing import List, Optional

from repro.config import PacketConfig
from repro.errors import SimulationError
from repro.net.packet import Packet, PacketKind, Transaction

_NUM_KINDS = len(PacketKind)


class PacketPool:
    """Flat freelist of recycled packets plus typed counter arrays."""

    __slots__ = (
        "_free",
        "acquired",
        "recycled",
        "released",
        "kind_acquired",
        "kind_released",
    )

    def __init__(self) -> None:
        self._free: List[Packet] = []
        self.acquired = 0
        self.recycled = 0
        self.released = 0
        # Structure-of-arrays counters, indexed by int(PacketKind).
        self.kind_acquired = array("q", [0] * _NUM_KINDS)
        self.kind_released = array("q", [0] * _NUM_KINDS)

    # -- acquisition -------------------------------------------------------
    def acquire(
        self,
        kind: PacketKind,
        address: int,
        src: int,
        dest: int,
        size_bits: int,
        create_ps: int,
        transaction: Optional[Transaction],
    ) -> Packet:
        """A packet with constructor semantics (fresh pid included)."""
        self.acquired += 1
        self.kind_acquired[kind] += 1
        free = self._free
        if free:
            self.recycled += 1
            packet = free.pop()
            # Re-run the constructor in place: every slot (including a
            # fresh pid drawn from the same global counter) is reset, so
            # a recycled packet is indistinguishable from a new one.
            packet.__init__(
                kind, address, src, dest, size_bits, create_ps, transaction
            )
            return packet
        return Packet(kind, address, src, dest, size_bits, create_ps, transaction)

    def request_packet(
        self, config: PacketConfig, txn: Transaction, now_ps: int
    ) -> Packet:
        """Pooled equivalent of :func:`repro.net.packet.request_packet`."""
        kind = PacketKind.WRITE_REQ if txn.is_write else PacketKind.READ_REQ
        size = config.data_bits if kind.carries_data else config.control_bits
        return self.acquire(
            kind,
            txn.address,
            -1,
            txn.dest_cube if txn.dest_cube is not None else -1,
            size,
            now_ps,
            txn,
        )

    def response_packet(
        self, config: PacketConfig, request: Packet, now_ps: int
    ) -> Packet:
        """Pooled equivalent of :func:`repro.net.packet.response_packet`."""
        kind = request.kind.response_kind()
        size = config.data_bits if kind.carries_data else config.control_bits
        return self.acquire(
            kind,
            request.address,
            request.dest,
            request.src,
            size,
            now_ps,
            request.transaction,
        )

    # -- peer-to-peer relay legs -------------------------------------------
    def p2p_request_packet(
        self, config: PacketConfig, txn: Transaction, now_ps: int
    ) -> Packet:
        """The host's "read and forward" command to the source cube."""
        return self.acquire(
            PacketKind.P2P_REQ,
            txn.address,
            -1,  # host
            txn.dest_cube if txn.dest_cube is not None else -1,
            config.control_bits,
            now_ps,
            txn,
        )

    def p2p_xfer_packet(
        self, config: PacketConfig, request: Packet, now_ps: int
    ) -> Packet:
        """The copied line, source cube -> destination cube.

        Unlike :meth:`response_packet` the destination is the
        transaction's p2p target cube, not the requester, and the
        packet addresses the *mirrored* location at that cube.
        """
        txn = request.transaction
        packet = self.acquire(
            PacketKind.P2P_XFER,
            txn.address,
            request.dest,  # the source cube the line was read from
            txn.p2p_dest_cube,
            config.data_bits,
            now_ps,
            txn,
        )
        packet.location = txn.p2p_dest_location
        return packet

    def p2p_ack_packet(
        self, config: PacketConfig, request: Packet, now_ps: int
    ) -> Packet:
        """Completion notice, destination cube -> host."""
        return self.acquire(
            PacketKind.P2P_ACK,
            request.address,
            request.dest,  # the destination cube the line landed in
            -1,  # host
            config.control_bits,
            now_ps,
            request.transaction,
        )

    # -- release -----------------------------------------------------------
    def release(self, packet: Packet) -> None:
        """Return a packet whose last consumer is provably done with it."""
        if packet.freed:
            raise SimulationError(
                f"double release of packet #{packet.pid} into the pool"
            )
        packet.freed = True
        self.released += 1
        self.kind_released[packet.kind] += 1
        self._free.append(packet)

    # -- introspection -----------------------------------------------------
    @property
    def live(self) -> int:
        """Packets acquired and not yet released (resident + in flight)."""
        return self.acquired - self.released

    @property
    def freelist_size(self) -> int:
        return len(self._free)

    def stats(self) -> dict:
        """Counters decoded to the kind-name taxonomy (export only)."""
        return {
            "acquired": self.acquired,
            "recycled": self.recycled,
            "released": self.released,
            "live": self.live,
            "freelist": len(self._free),
            "by_kind": {
                kind.name: {
                    "acquired": self.kind_acquired[kind],
                    "released": self.kind_released[kind],
                }
                for kind in PacketKind
            },
        }
