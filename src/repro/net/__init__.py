"""Packet-level network substrate: packets, links, buffers, routers."""

from repro.net.packet import Packet, PacketKind
from repro.net.link import Link
from repro.net.buffers import InputQueue
from repro.net.pool import PacketPool
from repro.net.routing import RouteTable, RouteClass
from repro.net.router import Router

__all__ = [
    "Packet",
    "PacketKind",
    "Link",
    "InputQueue",
    "PacketPool",
    "RouteTable",
    "RouteClass",
    "Router",
]
