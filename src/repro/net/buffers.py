"""Finite input queues with credit-based backpressure."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import SimulationError
from repro.net.packet import Packet
from repro.obs.attribution import segment_code


class InputQueue:
    """A finite FIFO of packets at a router input port.

    ``upstream_link`` (set by the feeding :class:`~repro.net.link.Link`)
    identifies where to return a credit when a packet leaves the queue;
    local sources (memory controllers, host injectors) leave it None and
    may instead register ``on_drain`` to learn when space frees up.
    ``capacity=None`` models an infinite sink (the host's receive side).
    """

    __slots__ = (
        "name",
        "capacity",
        "_items",
        "_entry_times",
        "head_key",
        "upstream_link",
        "on_drain",
        "peak_occupancy",
        "total_wait_ps",
        "pushed",
        "pops",
        "popped",
        "removed_count",
        "tracer",
        "_seg_req",
        "_seg_resp",
        "_seg_xfer",
    )

    def __init__(self, name: str, capacity: Optional[int]) -> None:
        self.name = name
        self.capacity = capacity
        # Interned attribution labels (repro.obs): computed once here so
        # the pop path appends integer codes, not concatenated strings.
        self._seg_req = segment_code("req.queue." + name)
        self._seg_resp = segment_code("resp.queue." + name)
        # P2P data legs live in the mem phase: the copy is "in memory"
        # from the source-cube read until the destination-cube write.
        self._seg_xfer = segment_code("mem.xfer.queue." + name)
        self._items: Deque[Packet] = deque()
        self._entry_times: Deque[Optional[int]] = deque()
        # Cached output key (-1 = local, else next node id) of the head
        # packet, None when empty.  The router's arbitration scan reads
        # this instead of re-deriving route[hop] per queue per round; it
        # is maintained at every head transition (push-to-empty, pop,
        # remove) and refreshed by the RAS quiesce after it rewrites
        # queued routes in place.
        self.head_key: Optional[int] = None
        self.upstream_link = None
        self.on_drain = None
        self.peak_occupancy = 0
        # waiting-time accounting (the Section 3.2 parking-lot analysis)
        self.total_wait_ps = 0
        # conservation counters (repro.check): ``pushed`` and ``pops``
        # count every entry/exit; ``popped`` only the *timed* pops that
        # feed mean_wait_ps (untimed pops would skew the mean).
        self.pushed = 0
        self.pops = 0
        self.popped = 0
        self.removed_count = 0
        # observability (repro.obs): set by the system when tracing is on
        self.tracer = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    def has_space(self) -> bool:
        return self.capacity is None or len(self._items) < self.capacity

    def head(self) -> Packet:
        if not self._items:
            raise SimulationError(f"peek on empty queue {self.name}")
        return self._items[0]

    def push(self, packet: Packet, now_ps: Optional[int] = None) -> None:
        items = self._items
        if self.capacity is not None and len(items) >= self.capacity:
            raise SimulationError(
                f"queue {self.name} overflow (capacity {self.capacity}); "
                "credit accounting is broken"
            )
        items.append(packet)
        self._entry_times.append(now_ps)
        self.pushed += 1
        depth = len(items)
        if depth == 1:
            route = packet.route
            hop = packet.hop_index + 1
            self.head_key = route[hop] if hop < len(route) else -1
        if depth > self.peak_occupancy:
            self.peak_occupancy = depth
        if self.tracer is not None:
            self.tracer.queue_depth(self.name, now_ps, depth)

    def pop(self, now_ps: Optional[int] = None) -> Packet:
        if not self._items:
            raise SimulationError(f"pop on empty queue {self.name}")
        entered = self._entry_times.popleft()
        items = self._items
        packet = items.popleft()
        if items:
            head = items[0]
            route = head.route
            hop = head.hop_index + 1
            self.head_key = route[hop] if hop < len(route) else -1
        else:
            self.head_key = None
        self.pops += 1
        if entered is not None and now_ps is not None:
            self.total_wait_ps += now_ps - entered
            self.popped += 1
            txn = packet.transaction
            if txn is not None and txn.segments is not None and now_ps > entered:
                if packet.is_xfer:
                    code = self._seg_xfer
                elif packet.is_req:
                    code = self._seg_req
                else:
                    code = self._seg_resp
                txn.segments.append((code, entered, now_ps))
        if self.tracer is not None:
            self.tracer.queue_depth(self.name, now_ps, len(items))
        return packet

    def refresh_head_key(self) -> None:
        """Recompute :attr:`head_key` after an in-place route rewrite
        (RAS quiesce re-paths queued packets without popping them)."""
        items = self._items
        if items:
            head = items[0]
            route = head.route
            hop = head.hop_index + 1
            self.head_key = route[hop] if hop < len(route) else -1
        else:
            self.head_key = None

    def packets(self) -> "tuple":
        """Snapshot of queued packets, head first (RAS quiesce walk)."""
        return tuple(self._items)

    def remove(self, victims) -> int:
        """Drop every queued packet in ``victims`` (RAS quiesce).

        Entry times stay aligned with the surviving packets.  Credit
        return / ``on_drain`` notification is the caller's job — the
        system batches those until every queue has been walked, so a
        freed slot cannot re-enter a queue mid-walk.  Returns the number
        of packets removed.
        """
        if not victims:
            return 0
        kept = deque()
        kept_times = deque()
        removed = 0
        for packet, entered in zip(self._items, self._entry_times):
            if packet in victims:
                removed += 1
            else:
                kept.append(packet)
                kept_times.append(entered)
        self._items = kept
        self._entry_times = kept_times
        self.removed_count += removed
        self.refresh_head_key()
        return removed

    @property
    def mean_wait_ps(self) -> float:
        """Mean time packets spent waiting in this queue."""
        return self.total_wait_ps / self.popped if self.popped else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else self.capacity
        return f"InputQueue({self.name}, {len(self._items)}/{cap})"
