"""The per-package switch: input queues, output ports, arbitration.

Every node (host, memory cube, MetaCube interface chip) owns one
Router.  Packets sit in finite input queues; each output port runs an
arbiter that picks among the input queues whose head packet needs that
output.  Responses are prioritized over requests on shared links — the
deadlock-avoidance rule whose queuing side-effects Section 3.2 analyses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.arbitration.base import OutputArbiter
from repro.errors import SimulationError
from repro.net.buffers import InputQueue
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Engine

LOCAL = -1  # output key for "terminate at this node"


class OutputPort:
    """Abstract output: either a link to a neighbour or local delivery."""

    __slots__ = ()

    def can_accept(self, now_ps: int, packet: Packet) -> bool:
        raise NotImplementedError

    def dispatch(self, engine: Engine, packet: Packet, input_index: int) -> None:
        raise NotImplementedError

    def request_wakeup(self, engine: Engine) -> None:
        """A head packet is blocked on this port: arrange the one event
        that can unblock it.  Default is a no-op — non-exclusive ports
        are retried by their owner (the memory controller re-kicks the
        router when a slot frees)."""

    @property
    def exclusive(self) -> bool:
        """True if one dispatch occupies the port (links serialize)."""
        return False


class LinkOutput(OutputPort):
    """Forward packets over a point-to-point link."""

    __slots__ = ("link",)

    def __init__(self, link: Link) -> None:
        self.link = link

    def can_accept(self, now_ps: int, packet: Packet) -> bool:
        return self.link.can_send(now_ps)

    def dispatch(self, engine: Engine, packet: Packet, input_index: int) -> None:
        self.link.send(engine, packet)

    def request_wakeup(self, engine: Engine) -> None:
        link = self.link
        if link.dead:
            return  # RAS quiesce reroutes or drops the queued packets
        # Busy channel -> woken by its idle event; free channel with no
        # credit -> woken by the downstream credit return.  Either way
        # the channel's waiting set is the single wake-up registry.
        link.channel.wake_when_idle(engine, link)

    @property
    def exclusive(self) -> bool:
        return True


class LocalOutput(OutputPort):
    """Deliver packets into the node itself (cube memory / host sink).

    ``accept_fn(packet)`` checks buffer space; ``deliver_fn(engine,
    packet, input_index)`` performs the hand-off (and models any
    intra-package penalty, e.g. wrong-quadrant routing).
    """

    __slots__ = ("accept_fn", "deliver_fn")

    def __init__(
        self,
        accept_fn: Callable[[Packet], bool],
        deliver_fn: Callable[[Engine, Packet, int], None],
    ) -> None:
        self.accept_fn = accept_fn
        self.deliver_fn = deliver_fn

    def can_accept(self, now_ps: int, packet: Packet) -> bool:
        return self.accept_fn(packet)

    def dispatch(self, engine: Engine, packet: Packet, input_index: int) -> None:
        self.deliver_fn(engine, packet, input_index)


class Router:
    """Input-queued switch with per-output arbitration.

    Strictly event-driven: arbitration for an output runs only when
    something that could change its outcome happens — a packet arrives
    at a queue head bound for it, its channel goes idle, a credit comes
    back, or the local controller frees a slot.  A blocked head
    registers exactly one wake-up (:meth:`OutputPort.request_wakeup`)
    instead of being re-scanned on every unrelated event.
    """

    __slots__ = (
        "node_id",
        "name",
        "inputs",
        "outputs",
        "_arbiters",
        "_ports",
        "_arbiter_factory",
        "response_priority",
        "grants",
        "tracer",
    )

    def __init__(
        self,
        node_id: int,
        name: str,
        arbiter_factory: Callable[[], OutputArbiter],
        response_priority: bool = True,
    ) -> None:
        self.node_id = node_id
        self.name = name
        self.inputs: List[InputQueue] = []
        self.outputs: Dict[int, OutputPort] = {}
        self._arbiters: Dict[int, OutputArbiter] = {}
        # hot-path view: key -> (port, arbiter, link-or-None), one dict
        # hit instead of two lookups plus a type test per arbitration
        self._ports: Dict[int, tuple] = {}
        self._arbiter_factory = arbiter_factory
        self.response_priority = response_priority
        self.grants: Dict[int, int] = {}
        # observability (repro.obs): set by the system when tracing is on
        self.tracer = None

    # -- construction ----------------------------------------------------
    def add_input(self, queue: InputQueue) -> int:
        """Register an input queue; returns its stable input index."""
        self.inputs.append(queue)
        return len(self.inputs) - 1

    def add_output(self, key: int, port: OutputPort) -> None:
        if key in self.outputs:
            raise SimulationError(f"router {self.name}: duplicate output {key}")
        self.outputs[key] = port
        arbiter = self._arbiter_factory()
        self._arbiters[key] = arbiter
        self._ports[key] = (
            port, arbiter, port.link if type(port) is LinkOutput else None
        )
        self.grants.setdefault(key, 0)

    def arbiter_for(self, key: int) -> OutputArbiter:
        return self._arbiters[key]

    # -- routing ----------------------------------------------------------
    def _output_key(self, packet: Packet) -> int:
        if packet.at_destination:
            return LOCAL
        return packet.next_node

    # -- event entry points -------------------------------------------------
    def packet_arrived(self, engine: Engine, queue: InputQueue) -> None:
        """A packet was pushed into one of our input queues.

        Callers invoke this once per push.  Only a push that lands at
        the head can change any arbitration outcome, so only that case
        is tried: a push behind an existing head changes nothing — the
        head's output either dispatched it when it became head or holds
        a wake-up registration from when it blocked.
        """
        if len(queue._items) != 1:
            # empty: the RAS route guard swallowed the packet;
            # deeper: the pushed packet is parked behind the head
            return
        self._try_output(engine, queue.head_key)

    def output_ready(self, engine: Engine, key: int) -> None:
        """An output link went idle, got a credit back, or the local
        controller freed a slot."""
        self._try_output(engine, key)

    def has_response_head(self, key: int) -> bool:
        """True if any input head bound for ``key`` is a response.

        Used by shared channels to grant the response direction first
        (the paper's deadlock-avoidance priority, Section 3.2).
        """
        for queue in self.inputs:
            if queue.head_key == key and queue._items[0].is_resp:
                return True
        return False

    def kick(self, engine: Engine) -> None:
        """Attempt arbitration for every output with demand.

        Full rescan; the RAS quiesce path uses this to resynchronize
        after route tables and link liveness change underneath us.
        """
        needed = set()
        for queue in self.inputs:
            # Resynchronize the cached head keys too: the RAS quiesce
            # rewrites queued routes in place before kicking us.
            queue.refresh_head_key()
            if queue.head_key is not None:
                needed.add(queue.head_key)
        for key in needed:
            self._try_output(engine, key)

    # -- core arbitration loop ---------------------------------------------
    def _try_output(self, engine: Engine, key: int) -> None:
        entry = self._ports.get(key)
        if entry is None:
            raise SimulationError(
                f"router {self.name}: head packet needs unknown output {key}"
            )
        # The dominant port type is a link; its per-candidate accept
        # chain (port.can_accept -> link.can_send -> channel.is_free ->
        # credit check) is loop-invariant across one arbitration round,
        # so it flattens to three attribute tests done once per round.
        port, arbiter, link = entry
        inputs = self.inputs
        grants = self.grants
        retry: Optional[List[int]] = None
        while True:
            now = engine.now
            if link is not None:
                if (
                    link.dead
                    or now < link.channel._busy_until
                    or (link._credits is not None and link._credits <= 0)
                ):
                    # Blocked: if any head wants this output, sleep
                    # until the one transition that can unblock it
                    # (channel idle / credit return) instead of polling.
                    for queue in inputs:
                        if queue.head_key == key:
                            port.request_wakeup(engine)
                            break
                    break
            candidates: List[Tuple[int, Packet]] = []
            resp_count = 0
            demand = False
            for index, queue in enumerate(inputs):
                if queue.head_key != key:
                    continue
                items = queue._items
                if not items:
                    # Stale cache: only reachable when something mutated
                    # the deque behind pop()'s back — keep arbitration
                    # alive so the auditor can report it (queue.head_key
                    # / queue.accounting) instead of crashing here.
                    continue
                head = items[0]
                if link is None:
                    demand = True
                    if not port.can_accept(now, head):
                        continue
                candidates.append((index, head))
                if head.is_resp:
                    resp_count += 1
            if not candidates:
                if demand:
                    # Blocked local output (controller slot full): the
                    # owner re-kicks when a slot frees; registering is
                    # a no-op but kept for port-type symmetry.
                    port.request_wakeup(engine)
                break
            n_cand = len(candidates)
            if resp_count and resp_count != n_cand and self.response_priority:
                candidates = [c for c in candidates if c[1].is_resp]
            pos = arbiter.pick(now, candidates)
            if not 0 <= pos < len(candidates):
                raise SimulationError(
                    f"arbiter {arbiter.name} returned invalid index {pos}"
                )
            index, packet = candidates[pos]
            queue = inputs[index]
            popped = queue.pop(now)
            if popped is not packet:
                raise SimulationError("arbiter must select queue heads")
            arbiter.grants += 1
            grants[key] += 1
            if self.tracer is not None:
                self.tracer.router_grant(self.name, now, key, packet, len(candidates))
            if link is not None:
                link.send(engine, packet)
            else:
                port.dispatch(engine, packet, index)
            upstream = queue.upstream_link
            if upstream is not None:
                upstream.return_credit(engine)
            elif queue.on_drain is not None:
                queue.on_drain(engine)
            # The pop exposed a new head; if it needs a different
            # output, no future event will try that output for it —
            # queue it for arbitration once this one settles.
            new_key = queue.head_key
            head_same = new_key == key
            if not head_same and new_key is not None:
                if retry is None:
                    retry = [new_key]
                elif new_key not in retry:
                    retry.append(new_key)
            if link is not None and (
                now < link.channel._busy_until
                or (link._credits is not None and link._credits <= 0)
                or link.dead
            ):
                # The send serialized the channel (and may have spent
                # the last credit): this round is over.  Remaining
                # demand for this output is exactly the unpicked
                # candidates plus the popped queue's new head — no
                # rescan needed to rediscover it.  Re-entrant pushes
                # from return_credit/on_drain register their own
                # wake-ups via packet_arrived.
                if n_cand > 1 or head_same:
                    if not link.dead:
                        link.channel.wake_when_idle(engine, link)
                break
            # Local ports (and the zero-occupancy link edge) loop:
            # dispatch may have changed admission state, so rescan.
        if retry is not None:
            for other in retry:
                self._try_output(engine, other)
