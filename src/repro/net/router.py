"""The per-package switch: input queues, output ports, arbitration.

Every node (host, memory cube, MetaCube interface chip) owns one
Router.  Packets sit in finite input queues; each output port runs an
arbiter that picks among the input queues whose head packet needs that
output.  Responses are prioritized over requests on shared links — the
deadlock-avoidance rule whose queuing side-effects Section 3.2 analyses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.arbitration.base import OutputArbiter
from repro.errors import SimulationError
from repro.net.buffers import InputQueue
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Engine

LOCAL = -1  # output key for "terminate at this node"


class OutputPort:
    """Abstract output: either a link to a neighbour or local delivery."""

    def can_accept(self, now_ps: int, packet: Packet) -> bool:
        raise NotImplementedError

    def dispatch(self, engine: Engine, packet: Packet, input_index: int) -> None:
        raise NotImplementedError

    @property
    def exclusive(self) -> bool:
        """True if one dispatch occupies the port (links serialize)."""
        return False


class LinkOutput(OutputPort):
    """Forward packets over a point-to-point link."""

    def __init__(self, link: Link) -> None:
        self.link = link

    def can_accept(self, now_ps: int, packet: Packet) -> bool:
        return self.link.can_send(now_ps)

    def dispatch(self, engine: Engine, packet: Packet, input_index: int) -> None:
        self.link.send(engine, packet)

    @property
    def exclusive(self) -> bool:
        return True


class LocalOutput(OutputPort):
    """Deliver packets into the node itself (cube memory / host sink).

    ``accept_fn(packet)`` checks buffer space; ``deliver_fn(engine,
    packet, input_index)`` performs the hand-off (and models any
    intra-package penalty, e.g. wrong-quadrant routing).
    """

    def __init__(
        self,
        accept_fn: Callable[[Packet], bool],
        deliver_fn: Callable[[Engine, Packet, int], None],
    ) -> None:
        self.accept_fn = accept_fn
        self.deliver_fn = deliver_fn

    def can_accept(self, now_ps: int, packet: Packet) -> bool:
        return self.accept_fn(packet)

    def dispatch(self, engine: Engine, packet: Packet, input_index: int) -> None:
        self.deliver_fn(engine, packet, input_index)


class Router:
    """Input-queued switch with per-output arbitration."""

    def __init__(
        self,
        node_id: int,
        name: str,
        arbiter_factory: Callable[[], OutputArbiter],
        response_priority: bool = True,
    ) -> None:
        self.node_id = node_id
        self.name = name
        self.inputs: List[InputQueue] = []
        self.outputs: Dict[int, OutputPort] = {}
        self._arbiters: Dict[int, OutputArbiter] = {}
        self._arbiter_factory = arbiter_factory
        self.response_priority = response_priority
        self.grants: Dict[int, int] = {}
        # observability (repro.obs): set by the system when tracing is on
        self.tracer = None

    # -- construction ----------------------------------------------------
    def add_input(self, queue: InputQueue) -> int:
        """Register an input queue; returns its stable input index."""
        self.inputs.append(queue)
        return len(self.inputs) - 1

    def add_output(self, key: int, port: OutputPort) -> None:
        if key in self.outputs:
            raise SimulationError(f"router {self.name}: duplicate output {key}")
        self.outputs[key] = port
        self._arbiters[key] = self._arbiter_factory()

    def arbiter_for(self, key: int) -> OutputArbiter:
        return self._arbiters[key]

    # -- routing ----------------------------------------------------------
    def _output_key(self, packet: Packet) -> int:
        if packet.at_destination:
            return LOCAL
        return packet.next_node

    # -- event entry points -------------------------------------------------
    def packet_arrived(self, engine: Engine, _queue: InputQueue) -> None:
        """A packet was pushed into one of our input queues."""
        # Only the head packet of each queue is eligible; try every
        # output that some head currently needs (cheap: few queues).
        self.kick(engine)

    def output_ready(self, engine: Engine, key: int) -> None:
        """An output link went idle or received a credit back."""
        self._try_output(engine, key)

    def has_response_head(self, key: int) -> bool:
        """True if any input head bound for ``key`` is a response.

        Used by shared channels to grant the response direction first
        (the paper's deadlock-avoidance priority, Section 3.2).
        """
        for queue in self.inputs:
            if queue.is_empty:
                continue
            head = queue.head()
            if head.kind.is_response and self._output_key(head) == key:
                return True
        return False

    def kick(self, engine: Engine) -> None:
        """Attempt arbitration for every output with demand."""
        needed = set()
        for queue in self.inputs:
            if not queue.is_empty:
                needed.add(self._output_key(queue.head()))
        for key in needed:
            self._try_output(engine, key)

    # -- core arbitration loop ---------------------------------------------
    def _try_output(self, engine: Engine, key: int) -> None:
        port = self.outputs.get(key)
        if port is None:
            raise SimulationError(
                f"router {self.name}: head packet needs unknown output {key}"
            )
        arbiter = self._arbiters[key]
        while True:
            candidates: List[Tuple[int, Packet]] = []
            for index, queue in enumerate(self.inputs):
                if queue.is_empty:
                    continue
                head = queue.head()
                if self._output_key(head) != key:
                    continue
                if not port.can_accept(engine.now, head):
                    continue
                candidates.append((index, head))
            if not candidates:
                return
            if self.response_priority:
                responses = [c for c in candidates if c[1].kind.is_response]
                if responses:
                    candidates = responses
            pos = arbiter.pick(engine.now, candidates)
            if not 0 <= pos < len(candidates):
                raise SimulationError(
                    f"arbiter {arbiter.name} returned invalid index {pos}"
                )
            index, packet = candidates[pos]
            queue = self.inputs[index]
            popped = queue.pop(engine.now)
            if popped is not packet:
                raise SimulationError("arbiter must select queue heads")
            arbiter.record_grant()
            self.grants[key] = self.grants.get(key, 0) + 1
            if self.tracer is not None:
                self.tracer.router_grant(
                    self.name, engine.now, key, packet, len(candidates)
                )
            port.dispatch(engine, packet, index)
            if queue.upstream_link is not None:
                queue.upstream_link.return_credit(engine)
            elif queue.on_drain is not None:
                queue.on_drain(engine)
            if port.exclusive:
                return  # link busy until serialization completes
