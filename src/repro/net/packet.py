"""Memory-network packets.

Four packet kinds exist (Section 3.2): read requests and write
acknowledgments are small *control* packets; write requests and read
responses carry a cache line and are 5x larger *data* packets.

Peer-to-peer copies (NOM-style cube-to-cube DMA) add three more kinds
forming a ``req/xfer/ack`` relay: ``P2P_REQ`` (host -> source cube,
control), ``P2P_XFER`` (source cube -> destination cube, data) and
``P2P_ACK`` (destination cube -> host, control).  The xfer and ack
legs travel in the response class so they enjoy the same channel
priority as read data, keeping the relay deadlock-free with the
existing request/response progress argument.
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional, Tuple

from repro.config import PacketConfig


class PacketKind(enum.IntEnum):
    READ_REQ = 0
    WRITE_REQ = 1
    READ_RESP = 2
    WRITE_ACK = 3
    # Peer-to-peer copy relay (cube -> cube DMA).
    P2P_REQ = 4  # host -> source cube: "read and forward" command
    P2P_XFER = 5  # source cube -> destination cube: the copied line
    P2P_ACK = 6  # destination cube -> host: copy durable

    @property
    def is_request(self) -> bool:
        return self in (
            PacketKind.READ_REQ,
            PacketKind.WRITE_REQ,
            PacketKind.P2P_REQ,
        )

    @property
    def is_response(self) -> bool:
        return not self.is_request

    @property
    def carries_data(self) -> bool:
        """Data packets are write requests, read responses and p2p lines."""
        return self in (
            PacketKind.WRITE_REQ,
            PacketKind.READ_RESP,
            PacketKind.P2P_XFER,
        )

    @property
    def is_write_class(self) -> bool:
        """Write-class traffic (used for skip-list differentiated routing).

        All p2p legs route over the read class: the copy's latency is
        dominated by its data leg, which behaves like read data.
        """
        return self in (PacketKind.WRITE_REQ, PacketKind.WRITE_ACK)

    def response_kind(self) -> "PacketKind":
        if self is PacketKind.READ_REQ:
            return PacketKind.READ_RESP
        if self is PacketKind.WRITE_REQ:
            return PacketKind.WRITE_ACK
        if self is PacketKind.P2P_REQ:
            return PacketKind.P2P_XFER
        if self is PacketKind.P2P_XFER:
            return PacketKind.P2P_ACK
        raise ValueError(f"{self!r} is not a request kind")


_packet_ids = itertools.count()


class Packet:
    """One packet traversing the MN.

    ``route`` is the full node-id path (host included) assigned at
    injection (requests) or at the memory cube (responses); ``hop_index``
    points at the position of the node currently holding the packet.
    """

    __slots__ = (
        "pid",
        "kind",
        "is_req",
        "is_resp",
        "is_xfer",
        "location",
        "address",
        "src",
        "dest",
        "size_bits",
        "route",
        "hop_index",
        "create_ps",
        "inject_ps",
        "mem_arrive_ps",
        "mem_depart_ps",
        "complete_ps",
        "hops_traversed",
        "transaction",
        "source_tech",
        "obs_mark",
        "freed",
    )

    def __init__(
        self,
        kind: PacketKind,
        address: int,
        src: int,
        dest: int,
        size_bits: int,
        create_ps: int,
        transaction: Optional["Transaction"] = None,
    ) -> None:
        self.pid = next(_packet_ids)
        self.kind = kind
        # The request/response class is consulted on every arbitration
        # and every segment append; precomputed plain bools keep the
        # enum-property lookups off the hot path.
        self.is_req = kind <= PacketKind.WRITE_REQ or kind is PacketKind.P2P_REQ
        self.is_resp = not self.is_req
        # P2P data legs carry their own attribution labels (mem phase).
        self.is_xfer = kind is PacketKind.P2P_XFER
        # Memory placement this packet targets.  Equal to the owning
        # transaction's decoded location except for P2P_XFER packets,
        # which address the *destination* cube's mirrored location.
        self.location = transaction.location if transaction is not None else None
        self.address = address
        self.src = src
        self.dest = dest
        self.size_bits = size_bits
        self.route: List[int] = []
        self.hop_index = 0
        self.create_ps = create_ps
        self.inject_ps: Optional[int] = None
        self.mem_arrive_ps: Optional[int] = None
        self.mem_depart_ps: Optional[int] = None
        self.complete_ps: Optional[int] = None
        self.hops_traversed = 0
        self.transaction = transaction
        self.source_tech: Optional[str] = None  # tech of responding cube
        # Scratch timestamp for observability: marks when the packet
        # entered its current waiting stage (set only with attribution on).
        self.obs_mark: Optional[int] = None
        # Set by PacketPool.release; guards against double frees and
        # lets the auditor spot a freed packet still resident somewhere.
        self.freed = False

    # ------------------------------------------------------------------
    @property
    def current_node(self) -> int:
        return self.route[self.hop_index]

    @property
    def next_node(self) -> int:
        return self.route[self.hop_index + 1]

    @property
    def at_destination(self) -> bool:
        return self.hop_index == len(self.route) - 1

    @property
    def hops_remaining(self) -> int:
        return len(self.route) - 1 - self.hop_index

    def advance(self) -> None:
        self.hop_index += 1
        self.hops_traversed += 1

    def total_route_hops(self) -> int:
        return max(len(self.route) - 1, 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Packet(#{self.pid} {self.kind.name} addr=0x{self.address:x} "
            f"{self.src}->{self.dest} hop {self.hop_index}/{len(self.route) - 1})"
        )


class Transaction:
    """One memory transaction: a request packet and its response.

    Also carries the latency-breakdown bookkeeping used by Fig 5:
    ``to_memory`` (injection queue + request network), ``in_memory``
    (controller queue + array access), ``from_memory`` (response
    network).
    """

    __slots__ = (
        "tid",
        "address",
        "is_write",
        "is_p2p",
        "port_id",
        "dest_cube",
        "location",
        "p2p_dest_cube",
        "p2p_dest_location",
        "xfer_hops",
        "issue_ps",
        "start_ps",
        "inject_ps",
        "mem_arrive_ps",
        "mem_depart_ps",
        "complete_ps",
        "request_hops",
        "response_hops",
        "dest_tech",
        "row_hit",
        "read_seq",
        "failed",
        "segments",
        "claim_ps",
        "seg_mark",
        "seg_suppressed",
        "landing",
        "retries",
        "timed_out",
        "retry_mark",
    )

    _ids = itertools.count()

    def __init__(
        self,
        address: int,
        is_write: bool,
        port_id: int,
        issue_ps: int,
        is_p2p: bool = False,
    ):
        self.tid = next(Transaction._ids)
        self.address = address
        self.is_write = is_write
        # Peer-to-peer copy: read ``address`` at its home cube, write
        # the line to ``p2p_dest_cube``.  ``is_write`` stays False — the
        # directory treats the copy as a read of the source address.
        self.is_p2p = is_p2p
        self.port_id = port_id
        self.dest_cube: Optional[int] = None
        self.location = None  # decoded (cube, quadrant, bank, row)
        self.p2p_dest_cube: Optional[int] = None
        self.p2p_dest_location = None  # mirrored placement at the dest cube
        self.xfer_hops = 0  # hops taken by the P2P_XFER leg
        self.issue_ps = issue_ps
        self.start_ps: Optional[int] = None  # window grant (enters mem system)
        self.inject_ps: Optional[int] = None
        self.mem_arrive_ps: Optional[int] = None
        self.mem_depart_ps: Optional[int] = None
        self.complete_ps: Optional[int] = None
        self.request_hops = 0
        self.response_hops = 0
        self.dest_tech: Optional[str] = None
        self.row_hit: Optional[bool] = None
        self.read_seq: Optional[int] = None  # in-order retirement index
        # RAS: True once the host failed this transaction (its cube
        # became unreachable after a permanent failure).  Failed
        # transactions complete as counted errors, not latency samples.
        self.failed = False
        # Per-hop latency attribution (repro.obs): ``None`` keeps the hot
        # paths untouched; the host port sets it to ``[]`` when the
        # system's ObsConfig asks for attribution, and every component
        # the transaction visits then appends (label, start_ps, end_ps).
        self.segments: Optional[List[Tuple[str, int, int]]] = None
        # Overload (host-edge deadlines/retry; repro.host.port).  All
        # no-ops unless the config arms deadlines.  ``claim_ps`` is this
        # *attempt's* window-grant time (start_ps stays pinned at the
        # first grant so total_ps spans retries); ``seg_mark`` remembers
        # the segment count at the claim so a cancelled attempt's
        # partial segments can be truncated; ``landing`` is set the
        # instant a response is accepted, closing the race against a
        # deadline timer firing while the response crosses the chip;
        # ``timed_out`` distinguishes deadline-stale transactions from
        # RAS-failed ones on the response path.
        self.claim_ps: Optional[int] = None
        self.seg_mark = 0
        # suppressed_ps of a label-masked segment list at the claim,
        # restored with the seg_mark truncation on deadline cancel
        self.seg_suppressed = 0
        self.landing = False
        self.retries = 0
        self.timed_out = False
        self.retry_mark: Optional[int] = None  # timeout time, for host.retry

    # latency components (valid once complete) --------------------------
    # The breakdown clock starts when the request enters the memory
    # system (window grant at the coherence point), matching the paper's
    # per-request latency accounting; core-side stall time before the
    # grant shows up in runtime, not in the breakdown.
    @property
    def _t0(self) -> int:
        return self.start_ps if self.start_ps is not None else self.issue_ps

    @property
    def to_memory_ps(self) -> int:
        return (self.mem_arrive_ps or 0) - self._t0

    @property
    def in_memory_ps(self) -> int:
        return (self.mem_depart_ps or 0) - (self.mem_arrive_ps or 0)

    @property
    def from_memory_ps(self) -> int:
        return (self.complete_ps or 0) - (self.mem_depart_ps or 0)

    @property
    def total_ps(self) -> int:
        return (self.complete_ps or 0) - self._t0

    @property
    def core_stall_ps(self) -> int:
        """Core-side wait before the window grant (not in the breakdown)."""
        return self._t0 - self.issue_ps


def request_packet(
    config: PacketConfig, txn: Transaction, now_ps: int
) -> Packet:
    """Build the request packet for a transaction."""
    kind = PacketKind.WRITE_REQ if txn.is_write else PacketKind.READ_REQ
    size = config.data_bits if kind.carries_data else config.control_bits
    pkt = Packet(
        kind=kind,
        address=txn.address,
        src=-1,  # host; concrete node ids are assigned by the system
        dest=txn.dest_cube if txn.dest_cube is not None else -1,
        size_bits=size,
        create_ps=now_ps,
        transaction=txn,
    )
    return pkt


def response_packet(config: PacketConfig, request: Packet, now_ps: int) -> Packet:
    """Build the response for a delivered request (read data / write ack)."""
    kind = request.kind.response_kind()
    size = config.data_bits if kind.carries_data else config.control_bits
    pkt = Packet(
        kind=kind,
        address=request.address,
        src=request.dest,
        dest=request.src,
        size_bits=size,
        create_ps=now_ps,
        transaction=request.transaction,
    )
    return pkt
