"""Package-to-package links with SerDes timing and credits.

The paper's MNs use a *single* 16-bit link between two packages
(Section 5): requests and responses share its serialization bandwidth,
and responses are prioritized over requests "to prevent deadlocks from
older responses being blocked by newer requests" (Section 3.2) — the
root cause of the to-memory/from-memory latency asymmetry in Fig 5.

We model this with a :class:`SharedChannel` (the physical half-duplex
medium) carrying two :class:`Link` halves (one per direction).  Each
half owns the credit pool of its downstream input queue.  When the
channel goes idle it re-arbitrates between directions, granting a
direction with a response-class head packet first.  Setting
``full_duplex=True`` on the link config gives each direction its own
channel instead.

Cost per traversal:

* serialization time: ``size_bits / (lanes * lane_gbps)``,
* a fixed SerDes latency (2 ns by default, Section 5) for
  descrambling/deserializing at the receiving package,
* optional propagation delay.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config import LinkConfig
from repro.errors import SimulationError
from repro.net.buffers import InputQueue
from repro.net.packet import Packet
from repro.obs.attribution import segment_code
from repro.sim.engine import Engine
from repro.units import serialization_ps


class SharedChannel:
    """The physical medium: one serializer shared by its Link halves.

    Wake-ups are strictly demand-driven: a sender blocked on the busy
    channel registers itself via :meth:`wake_when_idle`, and the single
    idle event is armed only while someone is actually waiting.  An
    uncontended channel therefore schedules *no* idle/poll events at
    all — packets stream through with one delivery event each.
    """

    __slots__ = ("name", "_busy_until", "halves", "_waiting", "_idle_armed")

    def __init__(self, name: str) -> None:
        self.name = name
        self._busy_until = 0
        self.halves: List["Link"] = []
        self._waiting: List["Link"] = []
        self._idle_armed = False

    def is_free(self, now_ps: int) -> bool:
        return now_ps >= self._busy_until

    def occupy(self, engine: Engine, duration_ps: int) -> None:
        if not self.is_free(engine.now):
            raise SimulationError(f"channel {self.name} busy")
        self._busy_until = engine.now + duration_ps
        if self._waiting and not self._idle_armed:
            self._idle_armed = True
            engine.schedule_bound(duration_ps, self._became_idle)

    def wake_when_idle(self, engine: Engine, half: "Link") -> None:
        """A sender with a blocked head packet asks to be re-granted.

        Idempotent per half.  Arms the channel-idle event when the
        channel is busy; a credit-blocked sender on a free channel is
        woken by the credit return instead (:meth:`Link.return_credit`).
        """
        if half._waiting:
            return
        half._waiting = True
        self._waiting.append(half)
        if not self._idle_armed and engine.now < self._busy_until:
            self._idle_armed = True
            engine.schedule_at(self._busy_until, self._became_idle)

    def _became_idle(self, engine: Engine) -> None:
        self._idle_armed = False
        if not self.is_free(engine.now):
            # Someone re-occupied the channel at this exact instant and
            # ran *before* this event, so its occupy saw the stale
            # armed flag and skipped scheduling.  Re-arm here or the
            # waiters sleep forever (the lost-wakeup race: a waiter
            # blocked on the busy channel is only ever woken by this
            # event or a credit return).
            if self._waiting:
                self._idle_armed = True
                engine.schedule_at(self._busy_until, self._became_idle)
            return
        self.grant(engine)

    def grant(self, engine: Engine) -> None:
        """Re-arbitrate the idle channel between its waiting directions.

        A direction whose sender has a response-class packet at an
        eligible queue head wins (the paper's deadlock-avoidance
        priority, Section 3.2); ties keep registration order, which
        alternates naturally because a re-blocked sender re-registers at
        the back.  Waiters not reached before the channel is taken are
        re-registered so the next idle transition wakes them.
        """
        waiting = self._waiting
        if not waiting:
            return
        if len(waiting) > 1:
            waiting.sort(key=lambda half: not half.sender_has_response_head())
        self._waiting = []
        for half in waiting:
            half._waiting = False
        for position, half in enumerate(waiting):
            if not self.is_free(engine.now):
                # a packet took the channel; re-register the rest
                for missed in waiting[position:]:
                    self.wake_when_idle(engine, missed)
                return
            if half.on_idle is not None:
                half.on_idle(engine)


class Link:
    """One direction of a package-to-package connection."""

    __slots__ = (
        "name",
        "config",
        "channel",
        "dst_queue",
        "_credits",
        "_waiting",
        "_ser_cache",
        "_arrival_extra_ps",
        "_seg_wire_req",
        "_seg_wire_resp",
        "_seg_wire_xfer",
        "_seg_retry_req",
        "_seg_retry_resp",
        "_seg_retry_xfer",
        "on_idle",
        "on_delivery",
        "sender_has_response_head",
        "packets_carried",
        "bits_carried",
        "busy_ps",
        "tracer",
        "faults",
        "replays",
        "dead",
        "route_guard",
        "guard_drops",
    )

    def __init__(
        self,
        name: str,
        config: LinkConfig,
        dst_queue: InputQueue,
        channel: Optional[SharedChannel] = None,
    ) -> None:
        self.name = name
        self.config = config
        self.channel = channel if channel is not None else SharedChannel(name)
        self.channel.halves.append(self)
        self.dst_queue = dst_queue
        self._credits: Optional[int] = (
            dst_queue.capacity if dst_queue.capacity is not None else None
        )
        self._waiting = False  # registered in the channel's waiting set
        self._ser_cache: dict = {}  # size_bits -> serialization ps
        # fixed post-serialization latency, hoisted out of send()
        self._arrival_extra_ps = config.serdes_latency_ps + config.propagation_ps
        # Interned attribution labels (repro.obs): send() appends
        # integer codes instead of concatenating strings per packet.
        self._seg_wire_req = segment_code("req.wire." + name)
        self._seg_wire_resp = segment_code("resp.wire." + name)
        self._seg_retry_req = segment_code("req.retry." + name)
        self._seg_retry_resp = segment_code("resp.retry." + name)
        # P2P data legs are attributed to the mem phase (the copy is
        # "in memory" between the source read and the destination write).
        self._seg_wire_xfer = segment_code("mem.xfer.wire." + name)
        self._seg_retry_xfer = segment_code("mem.xfer.retry." + name)
        # Callbacks wired by the owning routers:
        # ``on_idle(engine)``     -> upstream router retries this output.
        # ``on_delivery(engine, queue)`` -> downstream router reacts to
        #                            the packet that just arrived.
        # ``sender_has_response_head()`` -> used by the shared channel to
        #                            prioritize the response direction.
        self.on_idle: Optional[Callable[[Engine], None]] = None
        self.on_delivery: Optional[Callable[[Engine, InputQueue], None]] = None
        self.sender_has_response_head: Callable[[], bool] = lambda: False
        # stats
        self.packets_carried = 0
        self.bits_carried = 0
        self.busy_ps = 0
        # observability (repro.obs): set by the system when tracing is on
        self.tracer = None
        # RAS (repro.ras): all four stay at their defaults unless a fault
        # plan is enabled — the zero-overhead-when-off guard.
        # ``faults`` -> per-link transient-error state (LinkFaultState),
        # ``dead``   -> permanently failed, accepts no new packets,
        # ``route_guard(engine, packet, link)`` -> delivery-time check
        #               that reroutes/drops packets whose remaining route
        #               crosses a dead edge; returns False to swallow.
        self.faults = None
        self.replays = 0
        self.dead = False
        self.route_guard = None
        # packets swallowed in-flight by the route guard (repro.check:
        # closes the wire-occupancy conservation equation under RAS)
        self.guard_drops = 0
        dst_queue.upstream_link = self

    # ------------------------------------------------------------------
    def serialization_delay_ps(self, packet: Packet) -> int:
        # Only a handful of packet sizes ever cross one link; memoize
        # per link so the hot path is a dict hit on an int key.
        ser = self._ser_cache.get(packet.size_bits)
        if ser is None:
            ser = serialization_ps(
                packet.size_bits, self.config.lanes, self.config.lane_gbps
            )
            self._ser_cache[packet.size_bits] = ser
        return ser

    def is_free(self, now_ps: int) -> bool:
        return self.channel.is_free(now_ps)

    def has_credit(self) -> bool:
        return self._credits is None or self._credits > 0

    def can_send(self, now_ps: int) -> bool:
        return not self.dead and self.is_free(now_ps) and self.has_credit()

    def fail(self) -> None:
        """Permanently kill this direction (RAS).  In-flight packets
        still deliver — the retry buffer drains — but nothing new is
        accepted: ``can_send`` is False forever after."""
        self.dead = True

    @property
    def credits(self) -> Optional[int]:
        return self._credits

    # ------------------------------------------------------------------
    def send(self, engine: Engine, packet: Packet) -> None:
        """Launch a packet; it arrives downstream after ser + SerDes.

        With a fault plan bound (``faults`` non-None) the traversal may
        suffer CRC failures: each one replays the packet from the retry
        buffer, costing one extra serialization plus the retrain
        penalty.  The channel stays occupied for the whole retry burst
        and the packet arrives correspondingly later.
        """
        if self.dead:
            raise SimulationError(f"link {self.name} is dead")
        if self._credits is not None and self._credits <= 0:
            raise SimulationError(f"link {self.name} has no credit")
        # Only a handful of packet sizes ever cross one link; memoize
        # the serialization time per link (dict hit on an int key).
        size_bits = packet.size_bits
        ser = self._ser_cache.get(size_bits)
        if ser is None:
            ser = self.serialization_delay_ps(packet)
        occupy_ps = ser
        retry_ps = 0
        faults = self.faults
        if faults is not None:
            replays = faults.draw_replays(size_bits)
            if replays:
                self.replays += replays
                retry_ps = replays * (ser + faults.retry_penalty_ps)
                occupy_ps += retry_ps
        # Channel occupy, inlined (the busy guard must stay: send() is
        # only reachable after can_send, but RAS quiesce re-kicks can
        # race a same-instant re-occupation).
        now = engine.now
        channel = self.channel
        if now < channel._busy_until:
            raise SimulationError(f"channel {channel.name} busy")
        channel._busy_until = now + occupy_ps
        if channel._waiting and not channel._idle_armed:
            channel._idle_armed = True
            engine.schedule_bound(occupy_ps, channel._became_idle)
        if self._credits is not None:
            self._credits -= 1
        self.packets_carried += 1
        self.bits_carried += size_bits
        self.busy_ps += occupy_ps
        arrival_delay = occupy_ps + self._arrival_extra_ps
        txn = packet.transaction
        if txn is not None and txn.segments is not None:
            if packet.is_xfer:
                seg_retry, seg_wire = self._seg_retry_xfer, self._seg_wire_xfer
            elif packet.is_req:
                seg_retry, seg_wire = self._seg_retry_req, self._seg_wire_req
            else:
                seg_retry, seg_wire = self._seg_retry_resp, self._seg_wire_resp
            if retry_ps:
                # failed attempts first, then the good serialization
                txn.segments.append((seg_retry, now, now + retry_ps))
            txn.segments.append((seg_wire, now + retry_ps, now + arrival_delay))
        if self.tracer is not None:
            self.tracer.link_send(self.name, now, ser, arrival_delay, packet)
            if retry_ps:
                self.tracer.link_retry(self.name, now, replays, retry_ps)
        engine.schedule_bound(arrival_delay, self._deliver, (packet,))

    def _deliver(self, engine: Engine, packet: Packet) -> None:
        packet.advance()
        guard = self.route_guard
        if guard is not None and not guard(engine, packet, self):
            self.guard_drops += 1
            return  # RAS: no route survives the failure; the guard dropped it
        self.dst_queue.push(packet, engine.now)
        if self.on_delivery is not None:
            self.on_delivery(engine, self.dst_queue)

    def return_credit(self, engine: Engine) -> None:
        """Called by the downstream router when a packet leaves its queue."""
        if self._credits is not None:
            self._credits += 1
        # Retrying immediately models an ideal credit wire; the 2 ns
        # SerDes latency already dominates real credit-return time.
        # With nobody registered as waiting there is nothing to wake.
        channel = self.channel
        if channel._waiting and channel.is_free(engine.now):
            channel.grant(engine)
