"""Port-local physical address mapping.

Addresses are interleaved across the port's cubes at a 256 B
granularity (Section 5), weighted by cube capacity so a 64 GB NVM cube
receives 4x the blocks of a 16 GB DRAM cube — this realizes the paper's
"uniformly interleaved by address" assumption where a 50%-capacity-NVM
MN sends 50% of requests to NVM.

The per-cube block stream is then mapped column -> bank -> row, so a
sequential stream enjoys row-buffer hits within a bank before moving to
the next bank.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import List, Sequence, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class Location:
    """Decoded placement of one address."""

    cube_index: int  # position in the address-map's cube order
    quadrant: int
    bank: int  # bank index *within the quadrant*
    row: int
    offset: int  # byte offset inside the interleave block


def smooth_weighted_order(weights: Sequence[int]) -> List[int]:
    """Smooth weighted round-robin pattern (one entry per weight unit).

    Interleaves heavy items among light ones instead of emitting long
    runs, the standard smooth-WRR used by load balancers.
    """
    if not weights or any(w <= 0 for w in weights):
        raise ConfigError("weights must be positive")
    current = [0] * len(weights)
    total = sum(weights)
    pattern: List[int] = []
    for _ in range(total):
        best = 0
        for index, weight in enumerate(weights):
            current[index] += weight
            if current[index] > current[best]:
                best = index
        current[best] -= total
        pattern.append(best)
    return pattern


class AddressMap:
    """Maps port-local addresses to (cube, quadrant, bank, row)."""

    def __init__(
        self,
        cube_capacities: Sequence[int],
        interleave_bytes: int,
        row_bytes: int,
        banks_per_stack: int,
        num_quadrants: int,
    ) -> None:
        if not cube_capacities:
            raise ConfigError("address map needs at least one cube")
        if interleave_bytes <= 0 or interleave_bytes & (interleave_bytes - 1):
            raise ConfigError("interleave must be a positive power of two")
        if row_bytes % interleave_bytes:
            raise ConfigError("row size must be a multiple of the interleave")
        self.capacities = list(cube_capacities)
        self.interleave_bytes = interleave_bytes
        self.row_bytes = row_bytes
        self.banks_per_stack = banks_per_stack
        self.num_quadrants = num_quadrants
        self.total_bytes = sum(cube_capacities)

        divisor = 0
        for capacity in cube_capacities:
            divisor = gcd(divisor, capacity)
        self.weights = [capacity // divisor for capacity in cube_capacities]
        pattern = smooth_weighted_order(self.weights)
        self.pattern = pattern
        self.pattern_len = len(pattern)
        # occurrence index of each slot within its cube's share
        occurrence: List[int] = []
        seen = [0] * len(cube_capacities)
        for cube in pattern:
            occurrence.append(seen[cube])
            seen[cube] += 1
        self._occurrence = occurrence
        self.blocks_per_row = row_bytes // interleave_bytes

    # ------------------------------------------------------------------
    def decode(self, address: int) -> Location:
        if not 0 <= address < self.total_bytes:
            raise ConfigError(
                f"address 0x{address:x} outside port space "
                f"(0x{self.total_bytes:x} bytes)"
            )
        block, offset = divmod(address, self.interleave_bytes)
        cycle, slot = divmod(block, self.pattern_len)
        cube = self.pattern[slot]
        local_block = cycle * self.weights[cube] + self._occurrence[slot]
        column_block = local_block % self.blocks_per_row
        bank_global = (local_block // self.blocks_per_row) % self.banks_per_stack
        row = local_block // (self.blocks_per_row * self.banks_per_stack)
        quadrant = bank_global % self.num_quadrants
        bank = bank_global // self.num_quadrants
        del column_block  # column position does not affect timing
        return Location(
            cube_index=cube, quadrant=quadrant, bank=bank, row=row, offset=offset
        )

    def cube_share(self, cube_index: int) -> float:
        """Fraction of addresses (and therefore requests) hitting a cube."""
        return self.weights[cube_index] / self.pattern_len
