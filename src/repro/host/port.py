"""The host memory port: closed-loop injection with a coherence stall.

Each port issues the workload's request stream subject to:

* a maximum-outstanding window (memory-level parallelism of the core),
* injection-queue space on the host router (backpressure from the MN),
* the directory rule (reads stall behind outstanding writes to the
  same line — required for skip-list consistency, Section 4.2).

Two Section 4.2/5.3 refinements live here because they are decisions
made "when injecting to the network":

* read-priority injection — reads may bypass queued writes at the port,
* write-burst hysteresis — while writes dominate the recent stream,
  write requests are routed over the short (read-class) paths.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, List, Optional, Sequence

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.host.address_map import AddressMap, Location
from repro.host.directory import Directory
from repro.net.buffers import InputQueue
from repro.net.packet import Packet, Transaction
from repro.net.pool import PacketPool
from repro.net.routing import RouteClass, RouteTable
from repro.net.router import Router
from repro.obs.attribution import MaskedSegments, SegmentMask, segment_code
from repro.sim.engine import Engine
from repro.sim.random import derive_seed
from repro.workloads.base import Request

# Interned attribution labels (repro.obs); the port's labels carry no
# location detail, so they are interned once at import.
_SEG_REQ_PORT = segment_code("req.port")
_SEG_REQ_INJECT = segment_code("req.inject")
_SEG_RESP_PORT = segment_code("resp.port")
# Overload dead-time labels: a cancelled attempt's span [claim, timeout]
# collapses to host.timeout.<kind>, and the backoff + re-queue wait
# [timeout, next claim] becomes host.retry.<kind>, so a retried request's
# segments still tile its end-to-end latency exactly (zero residual).
_KINDS = ("read", "write", "p2p")
_SEG_TIMEOUT = {kind: segment_code(f"host.timeout.{kind}") for kind in _KINDS}
_SEG_RETRY = {kind: segment_code(f"host.retry.{kind}") for kind in _KINDS}


def _kind_of(txn: Transaction) -> str:
    if txn.is_write:
        return "write"
    if txn.is_p2p:
        return "p2p"
    return "read"


class HostPort:
    """One memory port of the APU driving one MN."""

    def __init__(
        self,
        port_id: int,
        config: SystemConfig,
        workload: Iterator[Request],
        total_requests: int,
        address_map: AddressMap,
        cube_node_ids: Sequence[int],
        route_table: RouteTable,
        inject_queue: InputQueue,
        router: Router,
        on_transaction_done: Callable[[Engine, Transaction], None],
        window: Optional[int] = None,
        pool: Optional[PacketPool] = None,
        cube_techs: Optional[Sequence[str]] = None,
        open_loop: bool = False,
    ) -> None:
        self.port_id = port_id
        self.config = config
        self.workload = workload
        self.total_requests = total_requests
        self.address_map = address_map
        self.cube_node_ids = list(cube_node_ids)
        self.route_table = route_table
        self.inject_queue = inject_queue
        self.router = router
        self.on_transaction_done = on_transaction_done
        # Normally the system-wide shared pool; directly-constructed
        # ports (unit tests) get a private one.
        self.pool = pool if pool is not None else PacketPool()
        self.window = (
            config.host.max_outstanding_per_port
            if window is None
            else min(window, config.host.max_outstanding_per_port)
        )

        self.directory = Directory()
        self.pending: List[Transaction] = []  # generated, not yet injected
        # the same backlog split by kind, for room-gated selection scans
        self._pending_reads: List[Transaction] = []
        self._pending_writes: List[Transaction] = []
        self._pending_p2p: List[Transaction] = []
        self.outstanding_reads = 0
        self.outstanding_writes = 0
        # Peer-to-peer copies run on the DMA engine's queue, sized like
        # the store buffer: copies leave the core's critical path once
        # issued, so they must not consume read MLP.
        self.outstanding_p2p = 0
        # Destination-cube selection for p2p copies (config.p2p_pattern).
        # ``cube_techs`` aligns with ``cube_node_ids``; the "promote"
        # pattern moves lines to the opposite technology tier.
        self.cube_techs = list(cube_techs) if cube_techs is not None else None
        self._tech_cubes = {}
        if self.cube_techs is not None:
            for index, tech in enumerate(self.cube_techs):
                self._tech_cubes.setdefault(tech, []).append(index)
        # in-order read retirement (wavefront semantics)
        self._read_seq = 0
        self._retire_head = 0
        self._completed_reads = set()
        self.issued = 0
        self.completed = 0
        self.generated = 0
        # Maintained eagerly (see _update_done): the engine's stop
        # predicate reads this once per event, so it must be a plain
        # attribute, not a property recomputing the sum.
        self.done = total_requests <= 0
        # per-kind conservation counters (repro.check): at end of run
        # generated_k == completed_k + failed_k must hold for each kind
        self.generated_reads = 0
        self.generated_writes = 0
        self.generated_p2p = 0
        self.completed_reads = 0
        self.completed_writes = 0
        self.completed_p2p = 0
        self.failed_reads = 0
        self.failed_writes = 0
        self.failed_p2p = 0
        # RAS: requests failed as host-level errors (dest cube became
        # unreachable after a permanent failure) and responses that beat
        # the failure across the cut after their transaction was already
        # errored (conservatively ignored; see docs/ras.md).
        self.failed = 0
        self.late_responses = 0
        self._degraded = False
        # Only runs with scheduled permanent failures pay for tracking
        # in-network transactions (needed to error them on reroute).
        self._track_outstanding = config.ras.has_permanent_failures
        self._outstanding_txns = set()
        # observability: transactions born at this port carry segment
        # lists only when attribution is on (repro.obs).  With
        # attribution_sample = N, a deterministic 1-in-N stride of the
        # generation sequence carries them instead; the phase derives
        # from the config seed so reruns sample identical transactions,
        # and the schedule itself never changes (sampled-out runs are
        # bit-identical to attribution-off ones).
        self._attribution = config.obs.attribution
        self._attr_sample = config.obs.attribution_sample
        self._attr_phase = 0
        if self._attr_sample > 1:
            self._attr_phase = derive_seed(
                config.seed, "obs.attribution", str(port_id)
            ) % self._attr_sample
        self._attr_mask = None
        if config.obs.attribution_labels is not None:
            self._attr_mask = SegmentMask(config.obs.attribution_labels)
        self.attribution_sampled = 0  # exact count of sampled-in txns
        # write-burst hysteresis state (Section 5.3)
        self._recent_writes: Deque[bool] = deque(maxlen=config.hysteresis_window)
        self.write_burst_mode = False
        self.burst_mode_toggles = 0

        # Overload robustness (config.overload + open-loop arrivals).
        # ``open_loop`` bypasses the MLP window / store-buffer gating so
        # offered load can exceed capacity (the arrival process, not the
        # completion rate, paces injection).  All state below is inert
        # for closed-loop runs with a default OverloadConfig.
        self.open_loop = open_loop
        overload = config.overload
        self._deadline_ps = overload.deadline_ps
        self._max_retries = overload.max_retries
        self._retry_backoff_ps = overload.retry_backoff_ps
        self._shed_high = overload.shed_high
        self._shed_low = overload.shed_low
        self._shedding = False  # hysteresis state: admission closed
        self._overload = open_loop or overload.enabled
        self.tracer = None  # set by the system when tracing is on
        # event counters: deadline expiries and re-issues (per attempt)
        self.timeouts = 0
        self.timeout_reads = 0
        self.timeout_writes = 0
        self.timeout_p2p = 0
        self.retries = 0
        self.retried_reads = 0
        self.retried_writes = 0
        self.retried_p2p = 0
        # disposition counters: each generated request ends in exactly
        # one of completed / failed / timed_out / shed
        self.timed_out = 0
        self.timed_out_reads = 0
        self.timed_out_writes = 0
        self.timed_out_p2p = 0
        self.shed = 0
        self.shed_reads = 0
        self.shed_writes = 0
        self.shed_p2p = 0
        # responses of deadline-cancelled attempts, dropped on arrival
        self.stale_responses = 0
        # high-water mark of pending + outstanding (the shed bound)
        self.peak_backlog = 0

        self._at_port: Deque[Transaction] = deque()  # crossed the chip, not injected
        inject_queue.on_drain = lambda engine: self._pump(engine)

    # -- generation ---------------------------------------------------------
    def start(self, engine: Engine) -> None:
        engine.schedule(0, self._next_arrival)

    def _next_arrival(self, engine: Engine) -> None:
        if self.generated >= self.total_requests:
            return
        try:
            request = next(self.workload)
        except StopIteration:
            raise WorkloadError(
                f"workload exhausted after {self.generated} of "
                f"{self.total_requests} requests"
            ) from None
        txn = Transaction(
            address=request.address,
            is_write=request.is_write,
            port_id=self.port_id,
            issue_ps=engine.now,
            is_p2p=request.is_p2p,
        )
        if self._attribution and (
            self._attr_sample == 1
            or self.generated % self._attr_sample == self._attr_phase
        ):
            txn.segments = (
                [] if self._attr_mask is None
                else MaskedSegments(self._attr_mask)
            )
            self.attribution_sampled += 1
        txn.location = self.address_map.decode(request.address)
        txn.dest_cube = self.cube_node_ids[txn.location.cube_index]
        if request.is_write:
            self.generated_writes += 1
        elif request.is_p2p:
            self._assign_p2p_dest(txn)
            self.generated_p2p += 1
        else:
            self.generated_reads += 1
        self.generated += 1
        self._observe_for_hysteresis(request.is_write)
        if self._overload and not self._admit():
            # Admission is closed (hysteresis above shed_high): the
            # request is counted as shed, never enqueued.  This is what
            # bounds the backlog and turns collapse into a plateau.
            self._shed_txn(engine, txn)
        else:
            self.pending.append(txn)
            if request.is_write:
                self._pending_writes.append(txn)
            elif request.is_p2p:
                self._pending_p2p.append(txn)
            else:
                self._pending_reads.append(txn)
            if self._deadline_ps:
                engine.schedule(self._deadline_ps, self._deadline_expired, txn)
            self.try_inject(engine)
        if self._overload:
            backlog = len(self.pending) + self.outstanding
            if backlog > self.peak_backlog:
                self.peak_backlog = backlog
        if self.generated < self.total_requests:
            engine.schedule(max(request.gap_ps, 0), self._next_arrival)

    # -- p2p destination selection ------------------------------------------
    def _assign_p2p_dest(self, txn: Transaction) -> None:
        """Pick the copy's destination cube per ``config.p2p_pattern``.

        Deterministic functions of the source placement and address
        only — no RNG draws — so destination choice is digest-stable by
        construction across engines and run orders.
        """
        num_cubes = len(self.cube_node_ids)
        src = txn.location.cube_index
        pattern = self.config.p2p_pattern
        if pattern == "shuffle":
            # the farthest rotation: stresses bisection links
            dest = (src + (num_cubes + 1) // 2) % num_cubes
        elif pattern == "promote":
            dest = self._promote_dest(src, txn.address)
        else:  # "neighbor": next cube in address-map order
            dest = (src + 1) % num_cubes
        txn.p2p_dest_cube = self.cube_node_ids[dest]
        loc = txn.location
        # The line lands at the mirrored placement of the destination
        # cube (same quadrant/bank/row indices, different package).
        txn.p2p_dest_location = Location(
            cube_index=dest,
            quadrant=loc.quadrant,
            bank=loc.bank,
            row=loc.row,
            offset=loc.offset,
        )

    def _promote_dest(self, src: int, address: int) -> int:
        """Hot-page promotion: move lines to the opposite memory tier.

        NVM-resident lines promote to a DRAM cube (and DRAM lines
        demote to NVM, modeling the eviction that makes room), spread
        across the target tier by page number.  Falls back to the
        neighbor pattern when the MN has a single technology.
        """
        techs = self.cube_techs
        if techs is None:
            return (src + 1) % len(self.cube_node_ids)
        target_tier = "DRAM" if techs[src] != "DRAM" else "NVM"
        candidates = self._tech_cubes.get(target_tier)
        if not candidates:
            return (src + 1) % len(self.cube_node_ids)
        page = address >> 12  # 4 KiB pages
        return candidates[page % len(candidates)]

    # -- hysteresis ------------------------------------------------------------
    def _observe_for_hysteresis(self, is_write: bool) -> None:
        if not self.config.write_skip_hysteresis:
            return
        self._recent_writes.append(is_write)
        if len(self._recent_writes) < self._recent_writes.maxlen:
            return
        fraction = sum(self._recent_writes) / len(self._recent_writes)
        if not self.write_burst_mode and fraction >= self.config.hysteresis_hi:
            self.write_burst_mode = True
            self.burst_mode_toggles += 1
        elif self.write_burst_mode and fraction <= self.config.hysteresis_lo:
            self.write_burst_mode = False
            self.burst_mode_toggles += 1

    # -- injection ---------------------------------------------------------------
    def _has_room(self, txn: Transaction) -> bool:
        """Reads use the MLP window; writes use the store buffer.

        Writes leave the core's critical path once issued (Section 4.2),
        so they must not consume read MLP — this is what lets the
        skip-list push writes onto longer paths without stalling reads.
        Peer-to-peer copies ride the DMA engine's queue, sized like the
        store buffer, for the same reason.
        """
        if txn.is_write:
            return self.outstanding_writes < self.config.host.store_buffer_entries
        if txn.is_p2p:
            return self.outstanding_p2p < self.config.host.store_buffer_entries
        return self.outstanding_reads < self.window

    def _select_next(
        self, read_room: bool, write_room: bool, p2p_room: bool = False
    ) -> Optional[Transaction]:
        """Pick the next pending transaction to inject.

        The backlog is kept split by kind (``_pending_reads`` /
        ``_pending_writes`` / ``_pending_p2p``, all in generation order)
        so that when one window is full — the common case is a full read
        window over a read-heavy backlog — the scan skips the other
        kinds' piles wholesale instead of filtering them element by
        element.  Selection is unchanged: first eligible read (when
        read-priority injection is on), else the first eligible
        transaction in generation order; p2p copies count as
        non-priority traffic, like writes.
        """
        can_issue = self.directory.can_issue
        if not self._pending_p2p:
            # two-kind fast paths (p2p-free backlog, the common case)
            if not read_room:
                for txn in self._pending_writes:
                    if can_issue(txn.address, True):
                        return txn
                return None
            if not write_room:
                for txn in self._pending_reads:
                    if can_issue(txn.address, False):
                        return txn
                return None
            read_priority = self.config.host.read_priority_injection
            first_eligible = None
            for txn in self.pending:
                is_write = txn.is_write
                if not can_issue(txn.address, is_write):
                    continue
                if read_priority:
                    if not is_write:
                        return txn  # first eligible read bypasses writes
                    if first_eligible is None:
                        first_eligible = txn
                else:
                    return txn
            return first_eligible
        # general scan: every kind gated by its own window.  A p2p copy
        # claims the directory as a *read* of its source address.
        read_priority = self.config.host.read_priority_injection
        first_eligible = None
        for txn in self.pending:
            if txn.is_write:
                if not write_room or not can_issue(txn.address, True):
                    continue
            elif txn.is_p2p:
                if not p2p_room or not can_issue(txn.address, False):
                    continue
            else:
                if not read_room or not can_issue(txn.address, False):
                    continue
                if read_priority:
                    return txn  # first eligible read bypasses the rest
            if not read_priority:
                return txn
            if first_eligible is None:
                first_eligible = txn
        return first_eligible

    def try_inject(self, engine: Engine) -> None:
        host = self.config.host
        open_loop = self.open_loop
        while self.pending:
            if open_loop:
                # Open-loop arrivals model an external population, not a
                # finite-MLP core: the window never gates injection and
                # only network backpressure (and the directory) throttles.
                read_room = write_room = True
                p2p_room = bool(self._pending_p2p)
            else:
                read_room = self.outstanding_reads < self.window
                write_room = self.outstanding_writes < host.store_buffer_entries
                if self._pending_p2p:
                    p2p_room = self.outstanding_p2p < host.store_buffer_entries
                    if not read_room and not write_room and not p2p_room:
                        return  # no window slot of any kind is free
                else:
                    p2p_room = False
                    if not read_room and not write_room:
                        return  # no window slot of either kind is free
            txn = self._select_next(read_room, write_room, p2p_room)
            if txn is None:
                return  # everything pending is blocked or out of room
            self.pending.remove(txn)
            if txn.is_write:
                self._pending_writes.remove(txn)
            elif txn.is_p2p:
                self._pending_p2p.remove(txn)
            else:
                self._pending_reads.remove(txn)
            if self._degraded and not self._reachable(txn):
                self._fail_unissued(engine, txn)
                continue
            # claim_ps is this attempt's grant; start_ps stays pinned at
            # the *first* grant so total_ps spans retries.
            txn.claim_ps = engine.now
            if txn.start_ps is None:
                txn.start_ps = engine.now
            seg = txn.segments
            if seg is not None:
                if txn.retry_mark is not None:
                    # backoff + re-queue wait of a retried request
                    seg.append((_SEG_RETRY[_kind_of(txn)], txn.retry_mark,
                                engine.now))
                    txn.retry_mark = None
                txn.seg_mark = len(seg)
                txn.seg_suppressed = getattr(seg, "suppressed_ps", 0)
            if not txn.is_write and not txn.is_p2p:
                txn.read_seq = self._read_seq
                self._read_seq += 1
            # The request crosses the on-chip path from the coherence
            # point to the memory port before entering the MN.  The
            # window slot and directory entry are claimed now, so
            # ordering decisions happen at the coherence point.
            self.directory.issued(txn.address, txn.is_write)
            if txn.is_write:
                self.outstanding_writes += 1
            elif txn.is_p2p:
                self.outstanding_p2p += 1
            else:
                self.outstanding_reads += 1
            if self._track_outstanding:
                self._outstanding_txns.add(txn)
            engine.schedule(self.config.host.port_latency_ps, self._reach_port, txn)

    def _reach_port(self, engine: Engine, txn: Transaction) -> None:
        self._at_port.append(txn)
        self._pump(engine)

    def _pump(self, engine: Engine) -> None:
        while self._at_port and self.inject_queue.has_space():
            txn = self._at_port.popleft()
            if txn.failed:
                continue  # errored by a topology change while queued here
            self._inject(engine, txn)

    def _inject(self, engine: Engine, txn: Transaction) -> None:
        txn.inject_ps = engine.now
        seg = txn.segments
        if seg is not None:
            reached_port = txn.claim_ps + self.config.host.port_latency_ps
            seg.append((_SEG_REQ_PORT, txn.claim_ps, reached_port))
            if engine.now > reached_port:
                seg.append((_SEG_REQ_INJECT, reached_port, engine.now))
        if txn.is_p2p:
            packet = self.pool.p2p_request_packet(self.config.packet, txn, engine.now)
        else:
            packet = self.pool.request_packet(self.config.packet, txn, engine.now)
        packet.src = self.route_table.host_id
        packet.dest = txn.dest_cube
        route_class = self._route_class_for(txn)
        packet.route = list(self.route_table.route_to_cube(txn.dest_cube, route_class))
        packet.hop_index = 0
        self.issued += 1
        self.inject_queue.push(packet, engine.now)
        self.router.packet_arrived(engine, self.inject_queue)

    def _route_class_for(self, txn: Transaction) -> RouteClass:
        if not txn.is_write:
            return RouteClass.READ
        if self.write_burst_mode:
            # During write bursts the skip paths are re-opened to writes.
            return RouteClass.READ
        return RouteClass.WRITE

    @staticmethod
    def _reach_class_for(txn: Transaction) -> RouteClass:
        """The class whose reachability decides a transaction's fate.

        Writes must complete over the WRITE class regardless of burst
        mode: the acknowledgment always routes (and a mid-run reroute
        always re-paths write-class packets) over the strict write
        adjacency, so a cube only write-reachable via skip links counts
        as unreachable for writes — the skip-list WRITE-class error case.
        """
        return RouteClass.WRITE if txn.is_write else RouteClass.READ

    def _reachable(self, txn: Transaction) -> bool:
        """Can this transaction still complete over the current table?

        Regular transactions need the host<->cube round trip; a p2p copy
        additionally needs the cube->cube transfer leg and the ack path
        from the destination cube back to the host.
        """
        table = self.route_table
        if not table.is_reachable(txn.dest_cube, self._reach_class_for(txn)):
            return False
        if txn.is_p2p:
            return table.p2p_reachable(
                txn.dest_cube, txn.p2p_dest_cube, RouteClass.READ
            ) and table.is_reachable(txn.p2p_dest_cube, RouteClass.READ)
        return True

    # -- completion --------------------------------------------------------------
    def on_response(self, engine: Engine, packet: Packet) -> None:
        txn = packet.transaction
        if txn is None:
            raise WorkloadError("response packet without a transaction")
        if txn.failed:
            if txn.timed_out:
                # Response of a deadline-cancelled attempt: the request
                # was already retried or abandoned, so the data is stale.
                self.stale_responses += 1
            else:
                # The response crossed the cut just before the failure
                # hit; the transaction was already errored (its
                # slot/directory state is long released), so the late
                # data is dropped.
                self.late_responses += 1
            self.pool.release(packet)
            return
        txn.response_hops = packet.hops_traversed
        # The packet's job ends here — completion rides the transaction.
        self.pool.release(packet)
        if self._deadline_ps:
            # The response is accepted *now*: a deadline timer firing
            # while it crosses the chip back to the core must not cancel
            # the attempt out from under it.
            txn.landing = True
        # the response still has to cross the chip back to the core
        engine.schedule(self.config.host.port_latency_ps, self._complete, txn)

    def _complete(self, engine: Engine, txn: Transaction) -> None:
        if txn.failed:
            if txn.timed_out:
                self.stale_responses += 1
            else:
                self.late_responses += 1
            return
        txn.complete_ps = engine.now
        if txn.segments is not None:
            seg_start = engine.now - self.config.host.port_latency_ps
            txn.segments.append((_SEG_RESP_PORT, seg_start, engine.now))
        self._release_claims(txn)
        self.completed += 1
        if txn.is_write:
            self.completed_writes += 1
        elif txn.is_p2p:
            self.completed_p2p += 1
        else:
            self.completed_reads += 1
        self._update_done()
        self.on_transaction_done(engine, txn)
        self.try_inject(engine)

    def _release_claims(self, txn: Transaction) -> None:
        """Free the directory entry and window/store-buffer slot."""
        self.directory.completed(txn.address, txn.is_write)
        if txn.is_write:
            self.outstanding_writes -= 1
        elif txn.is_p2p:
            self.outstanding_p2p -= 1
        elif self.config.host.inorder_retire:
            # the slot frees only when all older reads are also back
            self._completed_reads.add(txn.read_seq)
            while self._retire_head in self._completed_reads:
                self._completed_reads.discard(self._retire_head)
                self._retire_head += 1
                self.outstanding_reads -= 1
        else:
            self.outstanding_reads -= 1
        if self._track_outstanding:
            self._outstanding_txns.discard(txn)

    # -- overload: admission control, deadlines, retry ---------------------------
    def _admit(self) -> bool:
        """Hysteresis admission check over pending + outstanding.

        Admission closes when the backlog reaches ``shed_high`` and
        reopens only once it has drained to ``shed_low``, so the gate
        does not flap around the watermark.  With shedding enabled the
        backlog is bounded by ``shed_high`` (checked by
        ``overload.backlog`` in repro.check).
        """
        if not self._shed_high:
            return True
        backlog = len(self.pending) + self.outstanding
        if self._shedding:
            if backlog <= self._shed_low:
                self._shedding = False
                return True
            return False
        if backlog >= self._shed_high:
            self._shedding = True
            return False
        return True

    def _shed_txn(self, engine: Engine, txn: Transaction) -> None:
        """Refuse admission: the request terminates as shed, unserved."""
        txn.failed = True  # terminal marker: never a latency sample
        txn.complete_ps = engine.now
        self.shed += 1
        if txn.is_write:
            self.shed_writes += 1
        elif txn.is_p2p:
            self.shed_p2p += 1
        else:
            self.shed_reads += 1
        if self.tracer is not None:
            self.tracer.host_shed(engine.now, txn.tid)
        self._update_done()
        self.on_transaction_done(engine, txn)

    def _deadline_expired(self, engine: Engine, txn: Transaction) -> None:
        """The end-to-end deadline of one attempt fired.

        No-op when the attempt already resolved (completed, errored, or
        its response was accepted and is crossing the chip).  An
        unclaimed attempt — still waiting for admission at the host
        edge — abandons terminally: the client gave up while queued.  A
        claimed attempt is cancelled (claims released, in-flight packets
        become stale) and retried after exponential backoff, until the
        retry budget is spent.
        """
        if txn.complete_ps is not None or txn.failed or txn.landing:
            return
        kind = _kind_of(txn)
        self.timeouts += 1
        if txn.is_write:
            self.timeout_writes += 1
        elif txn.is_p2p:
            self.timeout_p2p += 1
        else:
            self.timeout_reads += 1
        if self.tracer is not None:
            self.tracer.host_timeout(engine.now, txn.tid, txn.retries)
        if txn.claim_ps is None:
            self._remove_pending(txn)
            self._abandon(engine, txn)
            return
        # Cancel the attempt in service.  The transaction object stays
        # marked failed+timed_out so every stale path — _pump skip,
        # response drop, RAS sweeps — ignores it; the *logical* request
        # lives on in the retry clone.  The attempt's partial segments
        # collapse to one host.timeout span so the history still tiles.
        seg = txn.segments
        if seg is not None:
            del seg[txn.seg_mark:]
            if type(seg) is not list:
                # roll the masked list's dropped-span tally back to the
                # claim too: the truncated spans no longer count
                seg.suppressed_ps = txn.seg_suppressed
            seg.append((_SEG_TIMEOUT[kind], txn.claim_ps, engine.now))
        self._release_claims(txn)
        txn.failed = True
        txn.timed_out = True
        if txn.retries < self._max_retries:
            clone = self._clone_for_retry(engine, txn)
            backoff = self._retry_backoff_ps << txn.retries
            engine.schedule(backoff, self._reissue, clone)
        else:
            self._abandon(engine, txn)
        self.try_inject(engine)

    def _remove_pending(self, txn: Transaction) -> None:
        self.pending.remove(txn)
        if txn.is_write:
            self._pending_writes.remove(txn)
        elif txn.is_p2p:
            self._pending_p2p.remove(txn)
        else:
            self._pending_reads.remove(txn)

    def _abandon(self, engine: Engine, txn: Transaction) -> None:
        """Terminal timed-out disposition for one logical request."""
        txn.failed = True
        txn.timed_out = True
        txn.complete_ps = engine.now
        self.timed_out += 1
        if txn.is_write:
            self.timed_out_writes += 1
        elif txn.is_p2p:
            self.timed_out_p2p += 1
        else:
            self.timed_out_reads += 1
        self._update_done()
        self.on_transaction_done(engine, txn)

    def _clone_for_retry(self, engine: Engine, txn: Transaction) -> Transaction:
        """A fresh attempt object carrying the logical request's history.

        The timed-out original keeps its identity for any packets still
        in flight (they resolve as stale); the clone inherits the pinned
        ``start_ps`` and the segment history, so latency and attribution
        span every attempt.
        """
        clone = Transaction(
            address=txn.address,
            is_write=txn.is_write,
            port_id=txn.port_id,
            issue_ps=txn.issue_ps,
            is_p2p=txn.is_p2p,
        )
        clone.location = txn.location
        clone.dest_cube = txn.dest_cube
        clone.p2p_dest_cube = txn.p2p_dest_cube
        clone.p2p_dest_location = txn.p2p_dest_location
        clone.start_ps = txn.start_ps
        clone.retries = txn.retries + 1
        clone.retry_mark = engine.now
        clone.segments = txn.segments
        # Stale packets of the cancelled attempt must not write into the
        # live history.
        txn.segments = None
        return clone

    def _reissue(self, engine: Engine, clone: Transaction) -> None:
        """Re-queue a retry clone after its backoff elapsed.

        Retries pass the same admission gate as fresh arrivals — a
        refused retry abandons terminally, which is what keeps the
        backlog bound exact under shedding.
        """
        if clone.failed:
            return  # errored while backing off (topology change)
        if self._overload and not self._admit():
            self._abandon(engine, clone)
            return
        self.retries += 1
        if clone.is_write:
            self.retried_writes += 1
        elif clone.is_p2p:
            self.retried_p2p += 1
        else:
            self.retried_reads += 1
        if self.tracer is not None:
            self.tracer.host_retry(engine.now, clone.tid, clone.retries)
        self.pending.append(clone)
        if clone.is_write:
            self._pending_writes.append(clone)
        elif clone.is_p2p:
            self._pending_p2p.append(clone)
        else:
            self._pending_reads.append(clone)
        if self._deadline_ps:
            engine.schedule(self._deadline_ps, self._deadline_expired, clone)
        self.try_inject(engine)
        if self._overload:
            backlog = len(self.pending) + self.outstanding
            if backlog > self.peak_backlog:
                self.peak_backlog = backlog

    # -- RAS degradation ---------------------------------------------------------
    def _fail_common(self, engine: Engine, txn: Transaction) -> None:
        txn.failed = True
        txn.complete_ps = engine.now  # the host learns of the error now
        self.failed += 1
        if txn.is_write:
            self.failed_writes += 1
        elif txn.is_p2p:
            self.failed_p2p += 1
        else:
            self.failed_reads += 1
        self._update_done()
        self.on_transaction_done(engine, txn)

    def _fail_unissued(self, engine: Engine, txn: Transaction) -> None:
        """Error a transaction that never claimed a slot (still pending)."""
        self._fail_common(engine, txn)

    def fail_issued(self, engine: Engine, txn: Transaction) -> None:
        """Error a claimed transaction (at the port or in the network).

        Idempotent: the topology-change sweep and the packet-drop path
        can both reach the same transaction.
        """
        if txn.failed or txn.complete_ps is not None:
            return
        self._release_claims(txn)
        self._fail_common(engine, txn)

    def adopt_route_table(self, route_table: RouteTable) -> None:
        """A permanent failure rebuilt the routes: adopt the degraded
        table.  Called *before* the system's quiesce walk so that any
        injection it triggers already uses live routes — a stale route
        whose first hop is dead would deadlock the inject queue.
        """
        self.route_table = route_table
        self._degraded = True

    def fail_unreachable(self, engine: Engine) -> None:
        """Error every transaction whose cube the degraded table cannot
        reach (counted host-level errors, not latency samples).

        Transactions to still-reachable cubes are untouched — their
        packets were rerouted by the system's quiesce walk.
        """
        still_pending = []
        for txn in self.pending:
            if self._reachable(txn):
                still_pending.append(txn)
            else:
                self._fail_unissued(engine, txn)
        self.pending = still_pending
        self._pending_reads = [
            t for t in still_pending if not t.is_write and not t.is_p2p
        ]
        self._pending_writes = [t for t in still_pending if t.is_write]
        self._pending_p2p = [t for t in still_pending if t.is_p2p]
        for txn in list(self._outstanding_txns):
            if not self._reachable(txn):
                self.fail_issued(engine, txn)
        # Failed at-port transactions are skipped by _pump; freed slots
        # may admit pending work immediately.
        self._pump(engine)
        self.try_inject(engine)

    @property
    def outstanding(self) -> int:
        return self.outstanding_reads + self.outstanding_writes + self.outstanding_p2p

    def _update_done(self) -> None:
        """Refresh the cached termination flag after a completion/error.

        Every generated request ends in exactly one disposition:
        completed, failed (RAS), timed out (deadline, retries spent), or
        shed (admission refused).
        """
        self.done = (
            self.completed + self.failed + self.timed_out + self.shed
            >= self.total_requests
        )
