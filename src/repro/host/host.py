"""The host node: router wiring for the processor side of one MN."""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.net.buffers import InputQueue
from repro.net.packet import Packet, PacketKind
from repro.net.router import LOCAL, LocalOutput, Router
from repro.sim.engine import Engine


class HostNode:
    """Owns the host router's injection queue and response sink.

    Input 0 is the port's injection queue; link inputs are added by the
    system builder as edges are wired.  Responses terminate here and are
    handed to the port (the receive side is an infinite sink: the host
    always drains the network, which keeps the MN deadlock-free).
    """

    def __init__(
        self,
        router: Router,
        inject_queue_depth: int,
        queue_cls: type = InputQueue,
    ) -> None:
        self.router = router
        self.inject_queue = queue_cls("host.inject", inject_queue_depth)
        index = router.add_input(self.inject_queue)
        assert index == 0, "host injection queue must be input 0"
        self._on_response: Optional[Callable[[Engine, Packet], None]] = None
        router.add_output(LOCAL, LocalOutput(self._accept, self._deliver))

    def attach_port(self, on_response: Callable[[Engine, Packet], None]) -> None:
        self._on_response = on_response

    def _accept(self, packet: Packet) -> bool:
        return True  # infinite sink

    def _deliver(self, engine: Engine, packet: Packet, input_index: int) -> None:
        if self._on_response is None:
            raise RuntimeError("host received a response before attach_port()")
        if packet.kind is PacketKind.P2P_XFER:
            # Copied lines travel cube -> cube; they may transit the host
            # router as a switch but must never terminate at its port.
            raise SimulationError(
                f"p2p transfer packet #{packet.pid} leaked to the host port "
                f"(route {packet.route})"
            )
        self._on_response(engine, packet)
