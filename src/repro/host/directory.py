"""The coherence ordering point at the host port.

Memory traffic beyond the system port is past the coherence point
(Section 4.2).  For the skip-list's divergent read/write paths to be
safe, the directory must stall a read to an address that has an
outstanding write until the write acknowledgment returns — we model
exactly that rule.  Writes to an address with an outstanding write are
likewise ordered.
"""

from __future__ import annotations

from typing import Dict


class Directory:
    """Tracks outstanding writes per (line) address."""

    def __init__(self, line_bytes: int = 64) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a positive power of two")
        self.line_bytes = line_bytes
        self._pending_writes: Dict[int, int] = {}
        self.stalled_reads = 0

    def _line(self, address: int) -> int:
        return address // self.line_bytes

    def can_issue(self, address: int, is_write: bool) -> bool:
        """A request may issue unless an older write to its line is live."""
        blocked = self._line(address) in self._pending_writes
        if blocked and not is_write:
            self.stalled_reads += 1
        return not blocked

    def issued(self, address: int, is_write: bool) -> None:
        if is_write:
            line = self._line(address)
            self._pending_writes[line] = self._pending_writes.get(line, 0) + 1

    def completed(self, address: int, is_write: bool) -> None:
        if is_write:
            line = self._line(address)
            remaining = self._pending_writes.get(line, 0) - 1
            if remaining > 0:
                self._pending_writes[line] = remaining
            else:
                self._pending_writes.pop(line, None)

    @property
    def outstanding_writes(self) -> int:
        return sum(self._pending_writes.values())
