"""Host (APU) model: ports, address interleaving, coherence point."""

from repro.host.address_map import AddressMap, Location
from repro.host.directory import Directory
from repro.host.port import HostPort
from repro.host.host import HostNode

__all__ = ["AddressMap", "Location", "Directory", "HostPort", "HostNode"]
