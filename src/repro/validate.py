"""Built-in model self-checks.

``run_self_check(config)`` exercises a configuration end-to-end and
verifies first-principles invariants — useful after changing timing
parameters, adding a topology, or porting the package.  Each check
returns a :class:`CheckResult`; ``python -m repro selfcheck`` runs them
from the shell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import SystemConfig
from repro.system import MemoryNetworkSystem
from repro.units import serialization_ps
from repro.workloads import Request, WorkloadSpec

_CHECK_SPEC = WorkloadSpec(
    name="SELFCHECK",
    read_fraction=0.7,
    mean_gap_ns=3.0,
    locality_lines=4.0,
    mlp=16,
)


@dataclass(frozen=True)
class CheckResult:
    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        return f"[{marker}] {self.name}: {self.detail}"


def _single_read_latency_check(config: SystemConfig) -> CheckResult:
    """An isolated read to the nearest cube matches the analytic value."""
    system = MemoryNetworkSystem(
        config, _CHECK_SPEC, requests=1, workload_iter=iter([Request(0, False, 0)])
    )
    seen: List = []
    original = system._transaction_done

    def capture(engine, txn):
        seen.append(txn)
        original(engine, txn)

    system.port.on_transaction_done = capture
    system.run()
    txn = seen[0]
    link = config.link
    hops = system.route_table.distance(txn.dest_cube)
    control = serialization_ps(config.packet.control_bits, link.lanes, link.lane_gbps)
    data = serialization_ps(config.packet.data_bits, link.lanes, link.lane_gbps)
    per_hop = link.serdes_latency_ps + link.propagation_ps
    tech = config.dram if txn.dest_tech == "DRAM" else config.nvm
    expected = (
        2 * config.host.port_latency_ps
        + hops * (control + data + 2 * per_hop)
        + tech.trcd_ps
        + tech.tcl_ps
    )
    slack = abs(txn.total_ps - expected)
    # allow the wrong-quadrant penalty and interposer-link differences
    budget = config.cube.wrong_quadrant_penalty_ps + 2 * per_hop * hops
    passed = slack <= budget
    return CheckResult(
        "single_read_latency",
        passed,
        f"measured {txn.total_ps} ps vs analytic {expected} ps "
        f"(slack {slack}, budget {budget})",
    )


def _conservation_check(config: SystemConfig) -> CheckResult:
    """Every injected request completes; memory sees each exactly once."""
    requests = 300
    system = MemoryNetworkSystem(config, _CHECK_SPEC, requests=requests)
    result = system.run()
    accesses = sum(
        cube.total_reads() + cube.total_writes() for cube in system.cubes.values()
    )
    passed = result.transactions == requests and accesses == requests
    return CheckResult(
        "conservation",
        passed,
        f"{result.transactions}/{requests} transactions, {accesses} accesses",
    )


def _traffic_share_check(config: SystemConfig) -> CheckResult:
    """Per-cube traffic matches the capacity-weighted interleave."""
    requests = 1200
    system = MemoryNetworkSystem(config, _CHECK_SPEC, requests=requests)
    system.run()
    worst = 0.0
    for index, cube_id in enumerate(system.cube_node_ids):
        cube = system.cubes[cube_id]
        share = (cube.total_reads() + cube.total_writes()) / requests
        expected = system.address_map.cube_share(index)
        worst = max(worst, abs(share - expected))
    passed = worst < 0.05
    return CheckResult(
        "traffic_share",
        passed,
        f"max |observed-expected| cube share = {worst:.3f} (< 0.05)",
    )


def _route_sanity_check(config: SystemConfig) -> CheckResult:
    """Routes are loop-free, start at the host, end at their cube."""
    system = MemoryNetworkSystem(config, _CHECK_SPEC, requests=1)
    table = system.route_table
    problems = []
    for cube in system.topology.cube_ids():
        for cls in table.classes():
            route = table.route_to_cube(cube, cls)
            if route[0] != 0 or route[-1] != cube or len(set(route)) != len(route):
                problems.append((cube, cls.name))
    return CheckResult(
        "route_sanity",
        not problems,
        "all routes loop-free" if not problems else f"bad routes: {problems}",
    )


def _energy_check(config: SystemConfig) -> CheckResult:
    """Energy accounting is positive and component-consistent."""
    system = MemoryNetworkSystem(config, _CHECK_SPEC, requests=200)
    result = system.run()
    energy = result.energy
    consistent = (
        energy.total_pj
        == energy.network_pj
        + energy.interposer_pj
        + energy.memory_read_pj
        + energy.memory_write_pj
    )
    passed = consistent and energy.total_pj > 0
    return CheckResult(
        "energy_accounting",
        passed,
        f"total {energy.total_pj / 1e6:.2f} uJ, components consistent={consistent}",
    )


CHECKS: List[Callable[[SystemConfig], CheckResult]] = [
    _route_sanity_check,
    _single_read_latency_check,
    _conservation_check,
    _traffic_share_check,
    _energy_check,
]


def run_self_check(config: Optional[SystemConfig] = None) -> List[CheckResult]:
    """Run all checks against a configuration (default: paper baseline)."""
    config = config or SystemConfig()
    config.validate()
    return [check(config) for check in CHECKS]


def all_passed(results: List[CheckResult]) -> bool:
    return all(result.passed for result in results)
