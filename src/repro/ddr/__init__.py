"""Conventional DDR bus model (Section 2.1 motivation, Table 1)."""

from repro.ddr.bus import DdrBusModel, DDR3, DDR4

__all__ = ["DdrBusModel", "DDR3", "DDR4"]
