"""The capacity/bandwidth trade-off of multi-drop DDR buses.

Table 1 of the paper: as DIMMs-per-channel (DPC) grows, electrical
loading forces the bus clock down.  This module reproduces that table
and quantifies the resulting capacity-vs-bandwidth frontier that
motivates memory networks (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class DdrGeneration:
    """One DDR generation's DPC -> max bus clock (MHz) schedule."""

    name: str
    pins_per_channel: int
    bus_width_bits: int
    speed_by_dpc: Tuple[Tuple[int, int], ...]  # (dpc, MHz)

    def max_speed_mhz(self, dimms_per_channel: int) -> int:
        if dimms_per_channel < 1:
            raise ConfigError("need at least one DIMM")
        best = None
        for dpc, mhz in self.speed_by_dpc:
            if dpc <= dimms_per_channel:
                best = mhz
        if best is None:
            raise ConfigError("no speed entry for this DPC")
        supported = max(dpc for dpc, _ in self.speed_by_dpc)
        if dimms_per_channel > supported:
            raise ConfigError(
                f"{self.name} supports at most {supported} DIMMs per channel"
            )
        # speeds are listed per exact DPC; pick the matching entry
        for dpc, mhz in self.speed_by_dpc:
            if dpc == dimms_per_channel:
                return mhz
        raise ConfigError(f"no entry for {dimms_per_channel} DPC")


# Table 1 of the paper (DDR3 from [10], DDR4 from [15]).
DDR3 = DdrGeneration(
    name="DDR3",
    pins_per_channel=240,
    bus_width_bits=64,
    speed_by_dpc=((1, 1333), (2, 1066), (3, 800)),
)

DDR4 = DdrGeneration(
    name="DDR4",
    pins_per_channel=288,
    bus_width_bits=64,
    speed_by_dpc=((1, 2133), (2, 2133), (3, 1866)),
)


class DdrBusModel:
    """Bandwidth/capacity accounting for a multi-channel DDR system."""

    def __init__(self, generation: DdrGeneration, dimm_capacity_gib: int = 32):
        if dimm_capacity_gib <= 0:
            raise ConfigError("DIMM capacity must be positive")
        self.generation = generation
        self.dimm_capacity_gib = dimm_capacity_gib

    def channel_bandwidth_gbs(self, dimms_per_channel: int) -> float:
        """Peak bandwidth of one channel in GB/s (DDR: 2 transfers/clock)."""
        mhz = self.generation.max_speed_mhz(dimms_per_channel)
        transfers_per_second = mhz * 1e6 * 2
        return transfers_per_second * self.generation.bus_width_bits / 8 / 1e9

    def system(
        self, channels: int, dimms_per_channel: int
    ) -> Dict[str, float]:
        """Capacity/bandwidth/pins summary for a full system."""
        if channels < 1:
            raise ConfigError("need at least one channel")
        bandwidth = self.channel_bandwidth_gbs(dimms_per_channel) * channels
        capacity = self.dimm_capacity_gib * dimms_per_channel * channels
        pins = self.generation.pins_per_channel * channels
        return {
            "channels": channels,
            "dimms_per_channel": dimms_per_channel,
            "capacity_gib": capacity,
            "bandwidth_gbs": bandwidth,
            "pins": pins,
            "gbs_per_pin": bandwidth / pins,
        }

    def frontier(self, channels: int) -> List[Dict[str, float]]:
        """The capacity-vs-bandwidth frontier as DPC grows."""
        supported = sorted({dpc for dpc, _ in self.generation.speed_by_dpc})
        return [self.system(channels, dpc) for dpc in supported]


def table1_rows() -> List[Tuple[int, int, int]]:
    """(DPC, DDR3 MHz, DDR4 MHz) rows exactly as in Table 1."""
    return [
        (dpc, DDR3.max_speed_mhz(dpc), DDR4.max_speed_mhz(dpc)) for dpc in (1, 2, 3)
    ]
