"""Full-system (all-ports) simulation.

The paper's ports serve disjoint address slices (Section 2.3), so the
full machine is N independent MNs fed by per-port shares of the
workload.  :func:`simulate_all_ports` runs every port's MN (each with
an independently seeded request stream) and composes the results:

* system runtime = the slowest port's runtime (ports run concurrently),
* latency statistics and energies merge across ports.

Running all ports multiplies simulation cost by the port count; the
per-port run used everywhere else is statistically equivalent for
uniformly interleaved traffic, which this module lets you verify
(`port_balance` reports the cross-port runtime spread).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import SystemConfig
from repro.results import EnergyReport, SimResult, TransactionCollector
from repro.sim.random import derive_seed
from repro.system import MemoryNetworkSystem
from repro.workloads import SyntheticWorkload, WorkloadSpec


@dataclass
class MultiPortResult:
    """Composition of per-port simulation results."""

    config_label: str
    workload: str
    per_port: List[SimResult]

    @property
    def num_ports(self) -> int:
        return len(self.per_port)

    @property
    def runtime_ps(self) -> int:
        """The system finishes when its slowest port does."""
        return max(result.runtime_ps for result in self.per_port)

    @property
    def total_transactions(self) -> int:
        return sum(result.transactions for result in self.per_port)

    @property
    def requests_failed(self) -> int:
        """RAS: host-level errors summed across ports."""
        return sum(result.requests_failed for result in self.per_port)

    @property
    def availability(self) -> float:
        """System-wide fraction of requests served (request-weighted)."""
        served = sum(
            result.requests_served or result.collector.count
            for result in self.per_port
        )
        total = served + self.requests_failed
        return served / total if total else 1.0

    @property
    def energy(self) -> EnergyReport:
        merged = EnergyReport()
        for result in self.per_port:
            merged.network_pj += result.energy.network_pj
            merged.interposer_pj += result.energy.interposer_pj
            merged.memory_read_pj += result.energy.memory_read_pj
            merged.memory_write_pj += result.energy.memory_write_pj
        return merged

    def merged_collector(self) -> TransactionCollector:
        """Cross-port aggregate: stats, histograms and segments merged.

        Latency histograms merge bucket-wise (``Histogram.merge``), so
        the composed collector reports system-wide tail percentiles, not
        just means.
        """
        merged = TransactionCollector()
        for result in self.per_port:
            merged.merge(result.collector)
        return merged

    def port_balance(self) -> float:
        """Max/min runtime ratio across ports (1.0 = perfectly balanced)."""
        runtimes = [result.runtime_ps for result in self.per_port]
        return max(runtimes) / max(min(runtimes), 1)


def simulate_all_ports(
    config: SystemConfig,
    workload: WorkloadSpec,
    requests_per_port: int = 1000,
) -> MultiPortResult:
    """Simulate every memory port's MN and compose the results."""
    config.validate()
    per_port: List[SimResult] = []
    for port in range(config.host.num_ports):
        seed = derive_seed(config.seed, workload.name, f"port{port}")
        # a probe system resolves the per-port address space size
        probe = MemoryNetworkSystem(config, workload, requests=1)
        stream = SyntheticWorkload(
            workload,
            probe.address_map.total_bytes,
            seed,
            num_ports=config.host.num_ports,
        )
        system = MemoryNetworkSystem(
            config, workload, requests=requests_per_port, workload_iter=stream
        )
        per_port.append(system.run())
    return MultiPortResult(
        config_label=config.label(),
        workload=workload.name,
        per_port=per_port,
    )
