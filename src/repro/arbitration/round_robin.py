"""Locally-fair round-robin arbitration (the paper's baseline).

Each input queue is serviced in uniform rotation regardless of how many
downstream cubes feed it — the source of the "parking lot problem"
analysed in Section 3.2.
"""

from __future__ import annotations

from typing import List

from repro.arbitration.base import ArbiterContext, Candidate, OutputArbiter


class RoundRobinArbiter(OutputArbiter):
    name = "round_robin"

    def __init__(self, context: ArbiterContext) -> None:
        super().__init__(context)
        self._pointer = 0

    def pick(self, now_ps: int, candidates: List[Candidate]) -> int:
        # Choose the first candidate whose input index is >= the
        # rotating pointer (wrapping), then advance the pointer past it.
        if len(candidates) == 1:
            # Uncontended round: same outcome as the scan below.  The
            # pointer still advances — that is part of the arbitration
            # state and must not depend on the engine backend.
            self._pointer = candidates[0][0] + 1
            return 0
        best_pos = 0
        best_rank = None
        for pos, (index, _packet) in enumerate(candidates):
            rank = (index - self._pointer) % 1024
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_pos = pos
        self._pointer = candidates[best_pos][0] + 1
        return best_pos
