"""Arbiter interface and shared context."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.net.packet import Packet, PacketKind

# One candidate per input queue: (stable input index, head packet).
Candidate = Tuple[int, Packet]


@dataclass
class ArbiterContext:
    """Static knowledge available to arbiters.

    The paper stores this as "a very small hardware lookup table"
    (Section 4.1, ~8 bytes): per-node distance to the host, plus — for
    the enhanced scheme — the memory technology at each node and an
    equivalent-hop bonus reflecting the slower NVM array.
    """

    distance_to_host: Mapping[int, int] = field(default_factory=dict)
    tech_of_node: Mapping[int, str] = field(default_factory=dict)
    nvm_bonus_hops: float = 0.0
    write_weight_factor: float = 0.25
    # router-specific static weights for the global oracle scheme:
    # input index -> number of cubes upstream of that input.
    subtree_weights: Dict[int, int] = field(default_factory=dict)

    def origin_node(self, packet: Packet) -> int:
        """The memory cube a packet's age is anchored to.

        For responses this is the cube that produced them; for requests
        the destination cube (both derivable from the header flit).
        """
        if packet.is_resp:
            return packet.src
        return packet.dest

    def origin_distance(self, packet: Packet) -> int:
        return self.distance_to_host.get(self.origin_node(packet), 0)

    def origin_is_nvm(self, packet: Packet) -> bool:
        return self.tech_of_node.get(self.origin_node(packet)) == "NVM"


class OutputArbiter(abc.ABC):
    """Per-output-port input selection policy.

    ``pick`` receives the non-empty candidate list (input queues whose
    head packet requires this output and which are currently eligible)
    and returns the *position within the candidate list* of the winner.
    """

    name = "abstract"

    def __init__(self, context: ArbiterContext) -> None:
        self.context = context
        self.grants = 0

    @abc.abstractmethod
    def pick(self, now_ps: int, candidates: List[Candidate]) -> int:
        """Return the index (into ``candidates``) of the winning input."""

    def record_grant(self) -> None:
        self.grants += 1


class WeightedDeficitMixin:
    """Deterministic weighted selection via per-input deficit counters.

    Each arbitration round every candidate's counter grows by its
    weight; the largest counter wins and is reset.  Service frequency is
    therefore proportional to weight, with round-robin tie-breaking.
    """

    def __init__(self) -> None:
        self._deficit: Dict[int, float] = {}
        self._rr_pointer = 0

    def weighted_pick(
        self, candidates: List[Candidate], weights: List[float]
    ) -> int:
        best_pos = -1
        best_key: Tuple[float, int] = (float("-inf"), 0)
        n = len(candidates)
        for pos, ((index, _packet), weight) in enumerate(zip(candidates, weights)):
            deficit = self._deficit.get(index, 0.0) + max(weight, 1e-9)
            self._deficit[index] = deficit
            # tie-break: round-robin order after the last winner
            rr_rank = -((index - self._rr_pointer) % 1024)
            key = (deficit, rr_rank)
            if key > best_key:
                best_key = key
                best_pos = pos
        winner_index = candidates[best_pos][0]
        self._deficit[winner_index] = 0.0
        self._rr_pointer = winner_index + 1
        return best_pos
