"""Globally-weighted round-robin (idealized baseline from Section 4.1).

The paper's first alternative: weight each input port by the number of
downstream cubes whose traffic must eventually flow through it.  This
requires global knowledge, which the paper deems impractical; we model
it with static subtree weights computed at build time (exact for the
steady state of uniformly interleaved traffic) and use it in ablations.
"""

from __future__ import annotations

from typing import List

from repro.arbitration.base import (
    ArbiterContext,
    Candidate,
    OutputArbiter,
    WeightedDeficitMixin,
)


class GlobalWeightedArbiter(OutputArbiter, WeightedDeficitMixin):
    name = "global_weighted"

    def __init__(self, context: ArbiterContext) -> None:
        OutputArbiter.__init__(self, context)
        WeightedDeficitMixin.__init__(self)

    def pick(self, now_ps: int, candidates: List[Candidate]) -> int:
        weights = [
            float(self.context.subtree_weights.get(index, 1))
            for index, _packet in candidates
        ]
        return self.weighted_pick(candidates, weights)
