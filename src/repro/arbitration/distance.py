"""Distance-based arbitration (Section 4.1) and its enhanced form (5.3).

The key observation: messages anchored to farther cubes have longer
end-to-end latencies and are therefore likely to be the oldest messages
contending at a router.  Distance is derived from the header flit
(source/destination) plus a small static table — no timestamp bits are
needed.

The *naive* scheme weights purely by hop distance.  Section 5.1 shows
this mispredicts age when NVM cubes sit close to the host (NVM-F): the
slow array makes nearby responses old, but distance says they are
young.  The *enhanced* scheme therefore augments the lookup table with
the technology of the message's origin (converting the extra array
latency into equivalent hops) and deprioritizes write-class traffic.
"""

from __future__ import annotations

from typing import List

from repro.arbitration.base import (
    ArbiterContext,
    Candidate,
    OutputArbiter,
    WeightedDeficitMixin,
)


class DistanceArbiter(OutputArbiter, WeightedDeficitMixin):
    """Weighted round-robin with weight = topological distance."""

    name = "distance"

    def __init__(self, context: ArbiterContext) -> None:
        OutputArbiter.__init__(self, context)
        WeightedDeficitMixin.__init__(self)

    def weight_of(self, packet) -> float:
        return 1.0 + self.context.origin_distance(packet)

    def pick(self, now_ps: int, candidates: List[Candidate]) -> int:
        weights = [self.weight_of(packet) for _index, packet in candidates]
        return self.weighted_pick(candidates, weights)


class EnhancedDistanceArbiter(DistanceArbiter):
    """Distance arbitration made topology- and technology-aware.

    Additions over :class:`DistanceArbiter` (Section 5.3):

    * the lookup table knows each node's memory technology, so messages
      anchored to NVM cubes gain ``nvm_bonus_hops`` equivalent hops of
      weight (their array latency makes them older than distance alone
      suggests);
    * write-class packets are scaled down by ``write_weight_factor`` so
      off-critical-path writes can be further delayed.
    """

    name = "distance_enhanced"

    def weight_of(self, packet) -> float:
        weight = 1.0 + self.context.origin_distance(packet)
        if self.context.origin_is_nvm(packet):
            weight += self.context.nvm_bonus_hops
        if packet.kind.is_write_class:
            weight *= self.context.write_weight_factor
        return weight
