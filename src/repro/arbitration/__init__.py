"""Router output arbitration schemes.

The paper's baseline is a locally-fair round-robin that causes the
"parking lot problem" (Section 3.2/4.1).  The contribution is
distance-based arbitration — using a message's topological distance as
a proxy for its age — later *enhanced* with awareness of request type
and of the memory technology at the message's source (Section 5.3).
Two idealized baselines from the Section 4.1 discussion (true-age and
globally weighted round-robin) are provided for ablations.
"""

from repro.arbitration.base import ArbiterContext, OutputArbiter
from repro.arbitration.round_robin import RoundRobinArbiter
from repro.arbitration.distance import DistanceArbiter, EnhancedDistanceArbiter
from repro.arbitration.age import AgeArbiter
from repro.arbitration.global_weighted import GlobalWeightedArbiter
from repro.arbitration.factory import make_arbiter_factory

__all__ = [
    "ArbiterContext",
    "OutputArbiter",
    "RoundRobinArbiter",
    "DistanceArbiter",
    "EnhancedDistanceArbiter",
    "AgeArbiter",
    "GlobalWeightedArbiter",
    "make_arbiter_factory",
]
