"""True age-based arbitration (idealized baseline from Section 4.1).

The paper rejects this scheme as impractical — flit headers lack spare
bits for a timestamp — but it is the gold standard distance-based
arbitration approximates, so we keep it for ablation studies.
"""

from __future__ import annotations

from typing import List

from repro.arbitration.base import ArbiterContext, Candidate, OutputArbiter


class AgeArbiter(OutputArbiter):
    name = "age"

    def pick(self, now_ps: int, candidates: List[Candidate]) -> int:
        best_pos = 0
        best_age = -1
        for pos, (_index, packet) in enumerate(candidates):
            txn = packet.transaction
            born = txn.issue_ps if txn is not None else packet.create_ps
            age = now_ps - born
            if age > best_age:
                best_age = age
                best_pos = pos
        return best_pos
