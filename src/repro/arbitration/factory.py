"""Construct per-output arbiters by configured scheme name."""

from __future__ import annotations

from typing import Callable

from repro import config as cfg
from repro.arbitration.age import AgeArbiter
from repro.arbitration.base import ArbiterContext, OutputArbiter
from repro.arbitration.distance import DistanceArbiter, EnhancedDistanceArbiter
from repro.arbitration.global_weighted import GlobalWeightedArbiter
from repro.arbitration.round_robin import RoundRobinArbiter
from repro.errors import ConfigError

_SCHEMES = {
    cfg.ARBITER_ROUND_ROBIN: RoundRobinArbiter,
    cfg.ARBITER_DISTANCE: DistanceArbiter,
    cfg.ARBITER_DISTANCE_ENHANCED: EnhancedDistanceArbiter,
    cfg.ARBITER_AGE: AgeArbiter,
    cfg.ARBITER_GLOBAL_WEIGHTED: GlobalWeightedArbiter,
}


def make_arbiter_factory(
    scheme: str, context: ArbiterContext
) -> Callable[[], OutputArbiter]:
    """Return a zero-argument factory producing fresh arbiter instances.

    Each router output gets its own instance so rotation pointers and
    deficit counters are independent, as in hardware.
    """
    try:
        klass = _SCHEMES[scheme]
    except KeyError:
        raise ConfigError(f"unknown arbitration scheme {scheme!r}") from None
    return lambda: klass(context)
