"""Result serialization: SimResult -> plain dict / JSON and back-of-book
reporting helpers.

Simulation campaigns (sweeps, nightly regressions) need results that
outlive the process; this module flattens :class:`SimResult` into
JSON-serializable dictionaries and writes experiment bundles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.results import SimResult


def result_to_dict(result: SimResult) -> Dict[str, object]:
    """Flatten a result into a JSON-serializable dictionary."""
    breakdown = result.collector.all
    return {
        "config": result.config_label,
        "workload": result.workload,
        "runtime_ps": result.runtime_ps,
        "transactions": result.transactions,
        "reads": result.collector.reads,
        "writes": result.collector.writes,
        "latency": {
            "to_memory_ns": breakdown.to_memory_ns,
            "in_memory_ns": breakdown.in_memory_ns,
            "from_memory_ns": breakdown.from_memory_ns,
            "total_ns": breakdown.total_ns,
        },
        "hops": {
            "request_mean": result.collector.request_hops.mean,
            "response_mean": result.collector.response_hops.mean,
        },
        "row_hit_rate": result.row_hit_rate,
        "nvm_access_fraction": (
            result.collector.nvm_accesses / result.transactions
            if result.transactions
            else 0.0
        ),
        "energy_pj": {
            "network": result.energy.network_pj,
            "interposer": result.energy.interposer_pj,
            "memory_read": result.energy.memory_read_pj,
            "memory_write": result.energy.memory_write_pj,
            "total": result.energy.total_pj,
        },
        "topology": {
            "mean_distance": result.mean_distance,
            "max_distance": result.max_distance,
        },
        "stalled_reads": result.stalled_reads,
        "events_processed": result.events_processed,
    }


def save_results(
    results: List[SimResult], path: Union[str, Path], indent: int = 2
) -> None:
    """Write a list of results as a JSON array."""
    payload = [result_to_dict(result) for result in results]
    Path(path).write_text(json.dumps(payload, indent=indent) + "\n")


def load_results(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load previously saved result dictionaries (data, not SimResults)."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a JSON array of results")
    return payload


def compare_summary(
    baseline: Dict[str, object], candidate: Dict[str, object]
) -> Dict[str, float]:
    """Headline deltas between two saved results (same workload)."""
    if baseline["workload"] != candidate["workload"]:
        raise ValueError("results compare different workloads")
    speedup = baseline["runtime_ps"] / candidate["runtime_ps"] - 1.0
    base_energy = baseline["energy_pj"]["total"] or 1.0
    return {
        "speedup_percent": speedup * 100.0,
        "latency_delta_ns": (
            candidate["latency"]["total_ns"] - baseline["latency"]["total_ns"]
        ),
        "energy_ratio": candidate["energy_pj"]["total"] / base_energy,
    }
