"""Result serialization: SimResult -> plain dict / JSON and back-of-book
reporting helpers.

Simulation campaigns (sweeps, nightly regressions) need results that
outlive the process; this module flattens :class:`SimResult` into
JSON-serializable dictionaries and writes experiment bundles.

Two representations exist:

* :func:`result_to_dict` — a *report* view (means, rates, totals) for
  human consumption and cross-run comparison.  Lossy.
* :func:`result_to_state` / :func:`result_from_state` — a *lossless*
  round-trip of every aggregate a :class:`SimResult` carries, used by
  the runner's disk cache and by determinism checks
  (:func:`result_digest`).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.results import EnergyReport, LatencyBreakdown, SimResult, TransactionCollector
from repro.sim.stats import Histogram, RunningStat

#: Bump whenever the state schema (or anything that feeds it) changes in
#: a way that invalidates previously persisted results.
#: v2: latency-component histograms on every breakdown, per-segment
#: attribution histograms on the collector (the repro.obs layer).
#: v3: RAS availability accounting (requests_failed / requests_served)
#: and fault-injection counters in ``extra`` (the repro.ras layer).
#: v4: peer-to-peer copy accounting (p2p count, p2p_breakdown,
#: xfer_hops) on the collector.
RESULT_STATE_VERSION = 4


def result_to_dict(result: SimResult) -> Dict[str, object]:
    """Flatten a result into a JSON-serializable dictionary."""
    breakdown = result.collector.all
    return {
        "config": result.config_label,
        "workload": result.workload,
        "runtime_ps": result.runtime_ps,
        "transactions": result.transactions,
        "reads": result.collector.reads,
        "writes": result.collector.writes,
        "p2p": result.collector.p2p,
        "latency": {
            "to_memory_ns": breakdown.to_memory_ns,
            "in_memory_ns": breakdown.in_memory_ns,
            "from_memory_ns": breakdown.from_memory_ns,
            "total_ns": breakdown.total_ns,
            "tails_ns": breakdown.tails_ns(),
        },
        "hops": {
            "request_mean": result.collector.request_hops.mean,
            "response_mean": result.collector.response_hops.mean,
            "xfer_mean": result.collector.xfer_hops.mean,
        },
        "row_hit_rate": result.row_hit_rate,
        "nvm_access_fraction": (
            result.collector.nvm_accesses / result.transactions
            if result.transactions
            else 0.0
        ),
        "energy_pj": {
            "network": result.energy.network_pj,
            "interposer": result.energy.interposer_pj,
            "memory_read": result.energy.memory_read_pj,
            "memory_write": result.energy.memory_write_pj,
            "total": result.energy.total_pj,
        },
        "topology": {
            "mean_distance": result.mean_distance,
            "max_distance": result.max_distance,
        },
        "stalled_reads": result.stalled_reads,
        "events_processed": result.events_processed,
        "requests_failed": result.requests_failed,
        "availability": result.availability,
    }


# ---------------------------------------------------------------------------
# Lossless state round-trip (runner disk cache, determinism checks)
# ---------------------------------------------------------------------------
def _stat_to_state(stat: RunningStat) -> Dict[str, object]:
    return {
        "count": stat.count,
        "mean": stat._mean,
        "m2": stat._m2,
        "min": stat.min,
        "max": stat.max,
        "total": stat.total,
    }


def _stat_from_state(state: Dict[str, object]) -> RunningStat:
    # Values are passed through verbatim: JSON preserves the int/float
    # distinction, and coercing here would make a round-tripped result
    # hash differently from the freshly computed one.
    stat = RunningStat()
    stat.count = state["count"]
    stat._mean = state["mean"]
    stat._m2 = state["m2"]
    stat.min = state["min"]
    stat.max = state["max"]
    stat.total = state["total"]
    return stat


def _hist_to_state(hist: Histogram) -> Dict[str, object]:
    # Buckets are stored sparsely as [index, count] pairs: latency
    # histograms have 1024 buckets of which a handful are populated.
    return {
        "bucket_width": hist.bucket_width,
        "num_buckets": len(hist.buckets),
        "buckets": [[i, n] for i, n in enumerate(hist.buckets) if n],
        "underflow": hist.underflow,
        "overflow": hist.overflow,
        "stat": _stat_to_state(hist.stat),
    }


def _hist_from_state(state: Dict[str, object]) -> Histogram:
    hist = Histogram(state["bucket_width"], state["num_buckets"])
    for index, n in state["buckets"]:
        hist.buckets[index] = n
    hist.underflow = state["underflow"]
    hist.overflow = state["overflow"]
    hist.stat = _stat_from_state(state["stat"])
    return hist


def _breakdown_to_state(breakdown: LatencyBreakdown) -> Dict[str, object]:
    return {
        "to_memory": _stat_to_state(breakdown.to_memory),
        "in_memory": _stat_to_state(breakdown.in_memory),
        "from_memory": _stat_to_state(breakdown.from_memory),
        "to_memory_hist": _hist_to_state(breakdown.to_memory_hist),
        "in_memory_hist": _hist_to_state(breakdown.in_memory_hist),
        "from_memory_hist": _hist_to_state(breakdown.from_memory_hist),
        "total_hist": _hist_to_state(breakdown.total_hist),
    }


def _breakdown_from_state(state: Dict[str, object]) -> LatencyBreakdown:
    return LatencyBreakdown(
        to_memory=_stat_from_state(state["to_memory"]),
        in_memory=_stat_from_state(state["in_memory"]),
        from_memory=_stat_from_state(state["from_memory"]),
        to_memory_hist=_hist_from_state(state["to_memory_hist"]),
        in_memory_hist=_hist_from_state(state["in_memory_hist"]),
        from_memory_hist=_hist_from_state(state["from_memory_hist"]),
        total_hist=_hist_from_state(state["total_hist"]),
    )


def _collector_to_state(collector: TransactionCollector) -> Dict[str, object]:
    return {
        "reads": collector.reads,
        "writes": collector.writes,
        "p2p": collector.p2p,
        "all": _breakdown_to_state(collector.all),
        "read_breakdown": _breakdown_to_state(collector.read_breakdown),
        "write_breakdown": _breakdown_to_state(collector.write_breakdown),
        "p2p_breakdown": _breakdown_to_state(collector.p2p_breakdown),
        "request_hops": _stat_to_state(collector.request_hops),
        "response_hops": _stat_to_state(collector.response_hops),
        "xfer_hops": _stat_to_state(collector.xfer_hops),
        "row_hits": collector.row_hits,
        "nvm_accesses": collector.nvm_accesses,
        "last_complete_ps": collector.last_complete_ps,
        "segments": {
            label: _hist_to_state(hist)
            for label, hist in sorted(collector.segments.items())
        },
    }


def _collector_from_state(state: Dict[str, object]) -> TransactionCollector:
    collector = TransactionCollector()
    collector.reads = state["reads"]
    collector.writes = state["writes"]
    collector.p2p = state["p2p"]
    collector.all = _breakdown_from_state(state["all"])
    collector.read_breakdown = _breakdown_from_state(state["read_breakdown"])
    collector.write_breakdown = _breakdown_from_state(state["write_breakdown"])
    collector.p2p_breakdown = _breakdown_from_state(state["p2p_breakdown"])
    collector.request_hops = _stat_from_state(state["request_hops"])
    collector.response_hops = _stat_from_state(state["response_hops"])
    collector.xfer_hops = _stat_from_state(state["xfer_hops"])
    collector.row_hits = state["row_hits"]
    collector.nvm_accesses = state["nvm_accesses"]
    collector.last_complete_ps = state["last_complete_ps"]
    collector.segments = {
        label: _hist_from_state(hist_state)
        for label, hist_state in state.get("segments", {}).items()
    }
    return collector


def result_to_state(result: SimResult) -> Dict[str, object]:
    """Lossless, JSON-serializable dump of a :class:`SimResult`."""
    return {
        "version": RESULT_STATE_VERSION,
        "config_label": result.config_label,
        "workload": result.workload,
        "runtime_ps": result.runtime_ps,
        "collector": _collector_to_state(result.collector),
        "energy": {
            "network_pj": result.energy.network_pj,
            "interposer_pj": result.energy.interposer_pj,
            "memory_read_pj": result.energy.memory_read_pj,
            "memory_write_pj": result.energy.memory_write_pj,
        },
        "mean_distance": result.mean_distance,
        "max_distance": result.max_distance,
        "stalled_reads": result.stalled_reads,
        "burst_mode_toggles": result.burst_mode_toggles,
        "events_processed": result.events_processed,
        "requests_failed": result.requests_failed,
        "requests_served": result.requests_served,
        "extra": dict(result.extra),
    }


def result_from_state(state: Dict[str, object]) -> SimResult:
    """Rebuild a :class:`SimResult` from :func:`result_to_state` output."""
    version = state.get("version")
    if version != RESULT_STATE_VERSION:
        raise ValueError(
            f"result state version {version!r} != {RESULT_STATE_VERSION}"
        )
    energy = state["energy"]
    return SimResult(
        config_label=state["config_label"],
        workload=state["workload"],
        runtime_ps=state["runtime_ps"],
        collector=_collector_from_state(state["collector"]),
        energy=EnergyReport(
            network_pj=energy["network_pj"],
            interposer_pj=energy["interposer_pj"],
            memory_read_pj=energy["memory_read_pj"],
            memory_write_pj=energy["memory_write_pj"],
        ),
        mean_distance=state["mean_distance"],
        max_distance=state["max_distance"],
        stalled_reads=state["stalled_reads"],
        burst_mode_toggles=state["burst_mode_toggles"],
        events_processed=state["events_processed"],
        requests_failed=state.get("requests_failed", 0),
        requests_served=state.get("requests_served", 0),
        extra=dict(state["extra"]),
    )


def result_digest(result: SimResult) -> str:
    """Stable content hash of a result's full state.

    Two runs that produced bit-identical aggregates hash identically, so
    this is the equality check used by the serial/parallel/cached
    determinism tests.
    """
    payload = json.dumps(
        result_to_state(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def save_results(
    results: List[SimResult], path: Union[str, Path], indent: int = 2
) -> None:
    """Write a list of results as a JSON array."""
    payload = [result_to_dict(result) for result in results]
    Path(path).write_text(json.dumps(payload, indent=indent) + "\n")


def load_results(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load previously saved result dictionaries (data, not SimResults)."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a JSON array of results")
    return payload


def compare_summary(
    baseline: Dict[str, object], candidate: Dict[str, object]
) -> Dict[str, float]:
    """Headline deltas between two saved results (same workload)."""
    if baseline["workload"] != candidate["workload"]:
        raise ValueError("results compare different workloads")
    speedup = baseline["runtime_ps"] / candidate["runtime_ps"] - 1.0
    base_energy = baseline["energy_pj"]["total"] or 1.0
    return {
        "speedup_percent": speedup * 100.0,
        "latency_delta_ns": (
            candidate["latency"]["total_ns"] - baseline["latency"]["total_ns"]
        ),
        "energy_ratio": candidate["energy_pj"]["total"] / base_energy,
    }
