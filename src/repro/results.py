"""Simulation results: per-run aggregates and latency breakdowns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.net.packet import Transaction
from repro.obs.attribution import UNATTRIBUTED, make_segment_histogram, sum_by_label
from repro.sim.stats import Histogram, RunningStat
from repro.units import to_ns

#: Histogram shape for the latency-component distributions: 2 ns buckets
#: over a ~2 us in-range window.  Longer latencies land in the overflow
#: counter; percentiles then clamp to the observed max (see
#: :meth:`repro.sim.stats.Histogram.percentile_detail`).
LATENCY_HIST_BUCKET_PS = 2_000
LATENCY_HIST_NUM_BUCKETS = 1024


def make_latency_histogram() -> Histogram:
    return Histogram(LATENCY_HIST_BUCKET_PS, LATENCY_HIST_NUM_BUCKETS)


@dataclass
class LatencyBreakdown:
    """The Fig 5 decomposition: to-memory / in-memory / from-memory.

    Each component keeps a Welford :class:`RunningStat` *and* a
    fixed-width :class:`Histogram` (plus one for the end-to-end total),
    so the breakdown reports tail percentiles alongside means.
    """

    to_memory: RunningStat = field(default_factory=RunningStat)
    in_memory: RunningStat = field(default_factory=RunningStat)
    from_memory: RunningStat = field(default_factory=RunningStat)
    to_memory_hist: Histogram = field(default_factory=make_latency_histogram)
    in_memory_hist: Histogram = field(default_factory=make_latency_histogram)
    from_memory_hist: Histogram = field(default_factory=make_latency_histogram)
    total_hist: Histogram = field(default_factory=make_latency_histogram)

    def add(self, txn: Transaction) -> None:
        to_ps = txn.to_memory_ps
        in_ps = txn.in_memory_ps
        from_ps = txn.from_memory_ps
        self.to_memory.add(to_ps)
        self.in_memory.add(in_ps)
        self.from_memory.add(from_ps)
        self.to_memory_hist.add(to_ps)
        self.in_memory_hist.add(in_ps)
        self.from_memory_hist.add(from_ps)
        self.total_hist.add(to_ps + in_ps + from_ps)

    def merge(self, other: "LatencyBreakdown") -> None:
        """Fold another breakdown into this one (multi-port composition)."""
        self.to_memory.merge(other.to_memory)
        self.in_memory.merge(other.in_memory)
        self.from_memory.merge(other.from_memory)
        self.to_memory_hist.merge(other.to_memory_hist)
        self.in_memory_hist.merge(other.in_memory_hist)
        self.from_memory_hist.merge(other.from_memory_hist)
        self.total_hist.merge(other.total_hist)

    def percentile_ns(self, component: str, fraction: float) -> float:
        """Percentile (ns) of one component's latency distribution."""
        hist: Histogram = getattr(self, f"{component}_hist")
        return to_ns(hist.percentile(fraction))

    def tails_ns(self) -> Dict[str, Dict[str, float]]:
        """p50/p95/p99 (ns) for each component and the total."""
        out: Dict[str, Dict[str, float]] = {}
        for component in ("to_memory", "in_memory", "from_memory", "total"):
            hist: Histogram = getattr(self, f"{component}_hist")
            out[component] = {
                "p50": to_ns(hist.percentile(0.50)),
                "p95": to_ns(hist.percentile(0.95)),
                "p99": to_ns(hist.percentile(0.99)),
            }
        return out

    @property
    def to_memory_ns(self) -> float:
        return to_ns(self.to_memory.mean)

    @property
    def in_memory_ns(self) -> float:
        return to_ns(self.in_memory.mean)

    @property
    def from_memory_ns(self) -> float:
        return to_ns(self.from_memory.mean)

    @property
    def total_ns(self) -> float:
        return self.to_memory_ns + self.in_memory_ns + self.from_memory_ns

    def fractions(self) -> Dict[str, float]:
        total = self.total_ns or 1.0
        return {
            "to_memory": self.to_memory_ns / total,
            "in_memory": self.in_memory_ns / total,
            "from_memory": self.from_memory_ns / total,
        }


class TransactionCollector:
    """Streams completed transactions into aggregate statistics.

    When latency attribution is on (``config.obs.attribution``),
    transactions arrive carrying per-hop segments; the collector folds
    each transaction's per-label duration sums into ``segments``, a dict
    of label -> :class:`Histogram`, giving every segment a mean and tail
    percentiles.  Per-transaction time no segment claimed accumulates
    under :data:`repro.obs.attribution.UNATTRIBUTED` — a nonzero mean
    there indicates an instrumentation gap.
    """

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.p2p = 0
        self.all = LatencyBreakdown()
        self.read_breakdown = LatencyBreakdown()
        self.write_breakdown = LatencyBreakdown()
        self.p2p_breakdown = LatencyBreakdown()
        self.request_hops = RunningStat()
        self.response_hops = RunningStat()
        self.xfer_hops = RunningStat()
        self.row_hits = 0
        self.nvm_accesses = 0
        self.last_complete_ps = 0
        self.segments: Dict[str, Histogram] = {}

    def add(self, txn: Transaction) -> None:
        if txn.is_p2p:
            self.p2p += 1
            self.p2p_breakdown.add(txn)
            self.xfer_hops.add(txn.xfer_hops)
        elif txn.is_write:
            self.writes += 1
            self.write_breakdown.add(txn)
        else:
            self.reads += 1
            self.read_breakdown.add(txn)
        self.all.add(txn)
        self.request_hops.add(txn.request_hops)
        self.response_hops.add(txn.response_hops)
        if txn.row_hit:
            self.row_hits += 1
        if txn.dest_tech == "NVM":
            self.nvm_accesses += 1
        if txn.complete_ps and txn.complete_ps > self.last_complete_ps:
            self.last_complete_ps = txn.complete_ps
        if txn.segments is not None:
            self._add_segments(txn)

    def _add_segments(self, txn: Transaction) -> None:
        sums = sum_by_label(txn.segments)
        covered = 0
        segments = self.segments
        for label, duration_ps in sums.items():
            covered += duration_ps
            hist = segments.get(label)
            if hist is None:
                hist = segments[label] = make_segment_histogram()
            hist.add(duration_ps)
        # Label-masked lists (repro.obs.attribution.MaskedSegments)
        # count the spans they dropped, so the residual below stays a
        # pure instrumentation-gap signal under masking too.
        covered += getattr(txn.segments, "suppressed_ps", 0)
        residual = txn.total_ps - covered
        hist = segments.get(UNATTRIBUTED)
        if hist is None:
            hist = segments[UNATTRIBUTED] = make_segment_histogram()
        hist.add(residual)

    def merge(self, other: "TransactionCollector") -> None:
        """Fold another collector into this one (multi-port composition)."""
        self.reads += other.reads
        self.writes += other.writes
        self.p2p += other.p2p
        self.row_hits += other.row_hits
        self.nvm_accesses += other.nvm_accesses
        self.all.merge(other.all)
        self.read_breakdown.merge(other.read_breakdown)
        self.write_breakdown.merge(other.write_breakdown)
        self.p2p_breakdown.merge(other.p2p_breakdown)
        self.request_hops.merge(other.request_hops)
        self.response_hops.merge(other.response_hops)
        self.xfer_hops.merge(other.xfer_hops)
        if other.last_complete_ps > self.last_complete_ps:
            self.last_complete_ps = other.last_complete_ps
        for label, hist in other.segments.items():
            into = self.segments.get(label)
            if into is None:
                into = self.segments[label] = Histogram(
                    hist.bucket_width, len(hist.buckets)
                )
            into.merge(hist)

    @property
    def count(self) -> int:
        return self.reads + self.writes + self.p2p


@dataclass
class EnergyReport:
    """Dynamic energy totals in picojoules (Section 6.3 accounting)."""

    network_pj: float = 0.0
    interposer_pj: float = 0.0
    memory_read_pj: float = 0.0
    memory_write_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.network_pj
            + self.interposer_pj
            + self.memory_read_pj
            + self.memory_write_pj
        )


@dataclass
class SimResult:
    """Everything a single simulation run reports."""

    config_label: str
    workload: str
    runtime_ps: int
    collector: TransactionCollector
    energy: EnergyReport
    mean_distance: float
    max_distance: float
    stalled_reads: int = 0
    burst_mode_toggles: int = 0
    events_processed: int = 0
    # RAS: requests errored at the host because a permanent failure made
    # their cube unreachable, and requests served end-to-end including
    # warm-up (the collector only holds post-warm-up samples).  Healthy
    # runs report failed=0 and availability 1.0.
    requests_failed: int = 0
    requests_served: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    # -- headline metrics ----------------------------------------------------
    @property
    def runtime_ns(self) -> float:
        return to_ns(self.runtime_ps)

    @property
    def transactions(self) -> int:
        return self.collector.count

    @property
    def availability(self) -> float:
        """Fraction of issued requests served (1.0 for healthy runs)."""
        served = self.requests_served or self.collector.count
        total = served + self.requests_failed
        return served / total if total else 1.0

    @property
    def mean_latency_ns(self) -> float:
        return self.collector.all.total_ns

    @property
    def p50_latency_ns(self) -> float:
        return self.collector.all.percentile_ns("total", 0.50)

    @property
    def p95_latency_ns(self) -> float:
        return self.collector.all.percentile_ns("total", 0.95)

    @property
    def p99_latency_ns(self) -> float:
        return self.collector.all.percentile_ns("total", 0.99)

    @property
    def read_fraction(self) -> float:
        if self.collector.count == 0:
            return 0.0
        return self.collector.reads / self.collector.count

    @property
    def row_hit_rate(self) -> float:
        if self.collector.count == 0:
            return 0.0
        return self.collector.row_hits / self.collector.count

    # -- overload metrics (nonzero only for overload/open-loop runs) ---------
    @property
    def requests_timed_out(self) -> int:
        """Requests abandoned at their deadline (retry budget spent)."""
        return int(self.extra.get("overload.timed_out", 0.0))

    @property
    def requests_shed(self) -> int:
        """Requests refused admission at the host edge."""
        return int(self.extra.get("overload.shed", 0.0))

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of generated requests lost to deadlines or shedding."""
        generated = self.extra.get("overload.generated", 0.0)
        if not generated:
            return 0.0
        return (self.requests_timed_out + self.requests_shed) / generated

    @property
    def goodput_rps(self) -> float:
        """Requests completed per second of simulated time.

        For open-loop runs this is the served rate to plot against the
        offered rate: past saturation it plateaus (shedding on) or the
        run degenerates into backlog growth (shedding off).
        """
        if self.runtime_ps <= 0:
            return 0.0
        return self.requests_served / (self.runtime_ps * 1e-12)

    # -- fleet extras schema -------------------------------------------------
    def per_kind_counts(self) -> Dict[str, int]:
        """Exact per-kind request counters, the fleet aggregation schema.

        This is the one place that names the integer counters a
        fleet-level fold consumes (:mod:`repro.fleet`) and that the
        fleet conservation invariant re-sums
        (:func:`repro.check.check_fleet_conservation`): per kind, the
        sum over a fleet's shards must equal the fleet totals exactly.
        Keys absent from a run (no p2p, no overload) report zero.
        """
        return {
            "reads": self.collector.reads,
            "writes": self.collector.writes,
            "p2p": self.collector.p2p,
            "served": self.requests_served or self.collector.count,
            "failed": self.requests_failed,
            "timed_out": self.requests_timed_out,
            "shed": self.requests_shed,
            "row_hits": self.collector.row_hits,
            "nvm_accesses": self.collector.nvm_accesses,
        }

    def speedup_over(self, baseline: "SimResult") -> float:
        """Relative speedup vs a baseline run (0.0 == same runtime)."""
        if self.runtime_ps <= 0:
            return 0.0
        return baseline.runtime_ps / self.runtime_ps - 1.0

    def summary(self) -> str:
        breakdown = self.collector.all
        return (
            f"{self.config_label:>18} {self.workload:<10} "
            f"runtime={self.runtime_ns / 1000.0:9.2f}us "
            f"lat={breakdown.total_ns:7.1f}ns "
            f"(to={breakdown.to_memory_ns:6.1f} in={breakdown.in_memory_ns:6.1f} "
            f"from={breakdown.from_memory_ns:6.1f}) "
            f"rowhit={self.row_hit_rate * 100.0:4.1f}%"
        )


def speedup_percent(result: SimResult, baseline: SimResult) -> float:
    """Speedup of ``result`` over ``baseline`` in percent."""
    return result.speedup_over(baseline) * 100.0
