"""Simulation results: per-run aggregates and latency breakdowns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.net.packet import Transaction
from repro.sim.stats import RunningStat
from repro.units import to_ns


@dataclass
class LatencyBreakdown:
    """The Fig 5 decomposition: to-memory / in-memory / from-memory."""

    to_memory: RunningStat = field(default_factory=RunningStat)
    in_memory: RunningStat = field(default_factory=RunningStat)
    from_memory: RunningStat = field(default_factory=RunningStat)

    def add(self, txn: Transaction) -> None:
        self.to_memory.add(txn.to_memory_ps)
        self.in_memory.add(txn.in_memory_ps)
        self.from_memory.add(txn.from_memory_ps)

    @property
    def to_memory_ns(self) -> float:
        return to_ns(self.to_memory.mean)

    @property
    def in_memory_ns(self) -> float:
        return to_ns(self.in_memory.mean)

    @property
    def from_memory_ns(self) -> float:
        return to_ns(self.from_memory.mean)

    @property
    def total_ns(self) -> float:
        return self.to_memory_ns + self.in_memory_ns + self.from_memory_ns

    def fractions(self) -> Dict[str, float]:
        total = self.total_ns or 1.0
        return {
            "to_memory": self.to_memory_ns / total,
            "in_memory": self.in_memory_ns / total,
            "from_memory": self.from_memory_ns / total,
        }


class TransactionCollector:
    """Streams completed transactions into aggregate statistics."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.all = LatencyBreakdown()
        self.read_breakdown = LatencyBreakdown()
        self.write_breakdown = LatencyBreakdown()
        self.request_hops = RunningStat()
        self.response_hops = RunningStat()
        self.row_hits = 0
        self.nvm_accesses = 0
        self.last_complete_ps = 0

    def add(self, txn: Transaction) -> None:
        if txn.is_write:
            self.writes += 1
            self.write_breakdown.add(txn)
        else:
            self.reads += 1
            self.read_breakdown.add(txn)
        self.all.add(txn)
        self.request_hops.add(txn.request_hops)
        self.response_hops.add(txn.response_hops)
        if txn.row_hit:
            self.row_hits += 1
        if txn.dest_tech == "NVM":
            self.nvm_accesses += 1
        if txn.complete_ps and txn.complete_ps > self.last_complete_ps:
            self.last_complete_ps = txn.complete_ps

    @property
    def count(self) -> int:
        return self.reads + self.writes


@dataclass
class EnergyReport:
    """Dynamic energy totals in picojoules (Section 6.3 accounting)."""

    network_pj: float = 0.0
    interposer_pj: float = 0.0
    memory_read_pj: float = 0.0
    memory_write_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.network_pj
            + self.interposer_pj
            + self.memory_read_pj
            + self.memory_write_pj
        )


@dataclass
class SimResult:
    """Everything a single simulation run reports."""

    config_label: str
    workload: str
    runtime_ps: int
    collector: TransactionCollector
    energy: EnergyReport
    mean_distance: float
    max_distance: float
    stalled_reads: int = 0
    burst_mode_toggles: int = 0
    events_processed: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    # -- headline metrics ----------------------------------------------------
    @property
    def runtime_ns(self) -> float:
        return to_ns(self.runtime_ps)

    @property
    def transactions(self) -> int:
        return self.collector.count

    @property
    def mean_latency_ns(self) -> float:
        return self.collector.all.total_ns

    @property
    def read_fraction(self) -> float:
        if self.collector.count == 0:
            return 0.0
        return self.collector.reads / self.collector.count

    @property
    def row_hit_rate(self) -> float:
        if self.collector.count == 0:
            return 0.0
        return self.collector.row_hits / self.collector.count

    def speedup_over(self, baseline: "SimResult") -> float:
        """Relative speedup vs a baseline run (0.0 == same runtime)."""
        if self.runtime_ps <= 0:
            return 0.0
        return baseline.runtime_ps / self.runtime_ps - 1.0

    def summary(self) -> str:
        breakdown = self.collector.all
        return (
            f"{self.config_label:>18} {self.workload:<10} "
            f"runtime={self.runtime_ns / 1000.0:9.2f}us "
            f"lat={breakdown.total_ns:7.1f}ns "
            f"(to={breakdown.to_memory_ns:6.1f} in={breakdown.in_memory_ns:6.1f} "
            f"from={breakdown.from_memory_ns:6.1f}) "
            f"rowhit={self.row_hit_rate * 100.0:4.1f}%"
        )


def speedup_percent(result: SimResult, baseline: SimResult) -> float:
    """Speedup of ``result`` over ``baseline`` in percent."""
    return result.speedup_over(baseline) * 100.0
