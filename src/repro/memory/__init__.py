"""Memory cube internals: banks, timing models, controllers, the cube."""

from repro.memory.timing import AccessPlan, TimingModel
from repro.memory.bank import Bank
from repro.memory.controller import QuadrantController
from repro.memory.cube import MemoryCube

__all__ = [
    "AccessPlan",
    "TimingModel",
    "Bank",
    "QuadrantController",
    "MemoryCube",
]
