"""A single memory bank: decoupled array and row-buffer resources.

Two occupancy windows model the paper's technology assumptions:

* ``array_busy_until`` — the cell array: activations (row misses) wait
  for it; it covers tRAS and the write-recovery time tWR (320 ns for
  PCM, Table 2).
* ``buffer_busy_until`` — the row-buffer / column path: row-buffer hits
  only wait for this short window.  This realizes the "decoupled
  sensing and buffering" advantage of NVMs (Section 2.4): reads hitting
  an open row proceed while a slow array write completes behind them.

A bank may hold several open rows (``num_row_buffers``): DRAM has one,
PCM-style NVM several (buffer reorganization, Lee et al. ISCA'09 — the
paper's reference [28]).  Rows are evicted LRU.
"""

from __future__ import annotations

from collections import OrderedDict


class Bank:
    __slots__ = (
        "array_busy_until",
        "buffer_busy_until",
        "num_row_buffers",
        "_open_rows",
        "accesses",
        "row_hits",
    )

    def __init__(self, num_row_buffers: int = 1) -> None:
        if num_row_buffers < 1:
            raise ValueError("need at least one row buffer")
        self.array_busy_until = 0
        self.buffer_busy_until = 0
        self.num_row_buffers = num_row_buffers
        self._open_rows: "OrderedDict[int, None]" = OrderedDict()
        self.accesses = 0
        self.row_hits = 0

    # -- scheduling queries ----------------------------------------------
    def would_hit(self, row: int) -> bool:
        return row in self._open_rows

    @property
    def open_row(self):
        """Most recently used open row (None if all buffers are closed)."""
        if not self._open_rows:
            return None
        return next(reversed(self._open_rows))

    @property
    def any_row_open(self) -> bool:
        return bool(self._open_rows)

    @property
    def buffers_full(self) -> bool:
        return len(self._open_rows) >= self.num_row_buffers

    def earliest_start(self, now_ps: int, row: int) -> int:
        """Earliest time an access to ``row`` could begin."""
        if self.would_hit(row):
            return max(now_ps, self.buffer_busy_until)
        return max(now_ps, self.array_busy_until, self.buffer_busy_until)

    def ready_for(self, now_ps: int, row: int) -> bool:
        return self.earliest_start(now_ps, row) <= now_ps

    # -- state updates ------------------------------------------------------
    def note_access(self, row: int, hit: bool) -> None:
        self.accesses += 1
        if hit:
            self.row_hits += 1
            self._open_rows.move_to_end(row)
        else:
            if self.buffers_full:
                self._open_rows.popitem(last=False)  # evict LRU
            self._open_rows[row] = None

    def push_array_busy(self, until_ps: int) -> None:
        if until_ps > self.array_busy_until:
            self.array_busy_until = until_ps

    def push_buffer_busy(self, until_ps: int) -> None:
        if until_ps > self.buffer_busy_until:
            self.buffer_busy_until = until_ps

    def refresh(self, now_ps: int, duration_ps: int) -> None:
        """Refresh closes the row buffers and occupies the whole bank."""
        start = max(now_ps, self.array_busy_until)
        self.array_busy_until = start + duration_ps
        self.buffer_busy_until = max(self.buffer_busy_until, self.array_busy_until)
        self._open_rows.clear()

    # kept for compatibility with older call sites/tests
    @property
    def busy_until(self) -> int:
        return max(self.array_busy_until, self.buffer_busy_until)
