"""Access-latency computation for one memory technology.

Open-page policy over the two-resource bank model:

* row hit: waits only for the row buffer; costs tCL,
* row miss with an open row: tRP (precharge) + tRCD (activate) + tCL,
* row miss on a closed bank: tRCD + tCL,
* tRAS keeps the *array* occupied after an activate (DRAM),
* writes add the write-recovery time tWR to *array* occupancy — the
  dominant term for PCM-like NVM (320 ns, Table 2).  Thanks to the
  decoupled row buffer, later row-buffer hits proceed anyway; only the
  next activation of the bank pays for the write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MemTechConfig
from repro.memory.bank import Bank


@dataclass(frozen=True)
class AccessPlan:
    """Resolved timing of one bank access."""

    start_ps: int  # when the access begins
    data_ready_ps: int  # when read data / write completion is available
    array_free_ps: int  # when the cell array can take the next activation
    buffer_free_ps: int  # when the row buffer can take the next column op
    row_hit: bool


class TimingModel:
    """Computes :class:`AccessPlan` for a technology's parameters."""

    def __init__(self, tech: MemTechConfig) -> None:
        self.tech = tech

    def plan(self, bank: Bank, now_ps: int, row: int, is_write: bool) -> AccessPlan:
        tech = self.tech
        hit = bank.would_hit(row)
        start = bank.earliest_start(now_ps, row)
        if hit:
            data_ready = start + tech.tcl_ps
            array_free = bank.array_busy_until
        else:
            if bank.buffers_full:
                # evicting a victim row needs a precharge first
                activation = start + tech.trp_ps
            else:
                activation = start
            data_ready = activation + tech.trcd_ps + tech.tcl_ps
            array_free = data_ready
            if tech.tras_ps:
                array_free = max(array_free, activation + tech.tras_ps)
        if is_write:
            # Write recovery occupies the array.  Overlapping hit-writes
            # coalesce in the row buffer rather than queueing tWRs.
            array_free = max(array_free, data_ready + tech.write_recovery_ps())
        return AccessPlan(
            start_ps=start,
            data_ready_ps=data_ready,
            array_free_ps=array_free,
            buffer_free_ps=data_ready,
            row_hit=hit,
        )

    def apply(self, bank: Bank, plan: AccessPlan, row: int) -> None:
        """Commit a plan onto the bank's state."""
        bank.note_access(row, plan.row_hit)
        bank.push_array_busy(plan.array_free_ps)
        bank.push_buffer_busy(plan.buffer_free_ps)
