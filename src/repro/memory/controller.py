"""Per-quadrant memory controller.

The controller owns the quadrant's banks, a finite request queue
(backpressure into the cube's switch), and a response path into the
cube router's local input port.  Scheduling is first-ready FCFS: the
oldest request whose bank is free issues; younger requests may bypass a
bank conflict (bank-level parallelism, which Fig 14's capacity study
depends on).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config import PacketConfig
from repro.memory.bank import Bank
from repro.memory.timing import AccessPlan, TimingModel
from repro.net.buffers import InputQueue
from repro.net.packet import Packet, PacketKind
from repro.net.pool import PacketPool
from repro.net.router import LOCAL, Router
from repro.obs.attribution import segment_code
from repro.sim.engine import Engine


class QuadrantController:
    """One of the four independent controllers inside a memory cube."""

    def __init__(
        self,
        name: str,
        timing: TimingModel,
        num_banks: int,
        queue_depth: int,
        inject_queue: InputQueue,
        router: Router,
        route_response: Callable[[Packet], None],
        packet_config: PacketConfig,
        refresh_offset_ps: int = 0,
        scheduling: str = "fcfs",
        pool: Optional[PacketPool] = None,
    ) -> None:
        self.name = name
        self.timing = timing
        self.banks: List[Bank] = [
            Bank(num_row_buffers=timing.tech.row_buffers) for _ in range(num_banks)
        ]
        self.queue_depth = queue_depth
        self.inject_queue = inject_queue
        self.router = router
        self.route_response = route_response
        self.packet_config = packet_config
        # Normally the system-wide shared pool; directly-constructed
        # controllers (unit tests) get a private one.
        self.pool = pool if pool is not None else PacketPool()
        self.refresh_offset_ps = refresh_offset_ps
        if scheduling not in ("fcfs", "frfcfs"):
            raise ValueError(f"unknown scheduling policy {scheduling!r}")
        self.scheduling = scheduling
        # Interned attribution labels (repro.obs): the issue/inject hot
        # paths append integer codes, not per-event f-strings.
        self._seg_queue = segment_code(f"mem.queue.{name}")
        self._seg_array = segment_code(f"mem.array.{name}")
        self._seg_stall = segment_code(f"resp.stall.{name}")
        # P2P data legs stall in the mem phase (source cube waiting to
        # forward the copied line toward the destination cube).
        self._seg_stall_xfer = segment_code(f"mem.xfer.stall.{name}")

        self._queue: List[Packet] = []
        self._reserved = 0
        self._pending_responses: List[Packet] = []
        self._next_wake_ps: Optional[int] = None
        self._refresh_due_ps: Optional[int] = None
        self._refresh_armed = False
        # counters
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.refreshes = 0
        # observability (repro.obs): set by the system when tracing is on
        self.tracer = None
        inject_queue.on_drain = self._inject_drained

    # -- admission ---------------------------------------------------------
    def can_accept(self) -> bool:
        return len(self._queue) + self._reserved < self.queue_depth

    def reserve(self) -> None:
        self._reserved += 1

    def start_refresh(self, engine: Engine) -> None:
        tech = self.timing.tech
        if tech.needs_refresh:
            self._refresh_due_ps = self.refresh_offset_ps
            self._refresh_armed = True
            engine.schedule(self.refresh_offset_ps, self._refresh)

    # -- request path --------------------------------------------------------
    def receive(self, engine: Engine, packet: Packet) -> None:
        if self._refresh_due_ps is not None and not self._refresh_armed:
            # Dormant: replay the refresh ticks skipped while the queue
            # was empty (banks were untouched, so the lazy replay is
            # exact), then go back to eager ticking.
            now = engine.now
            while self._refresh_due_ps <= now:
                self._refresh_tick(self._refresh_due_ps)
            self._refresh_armed = True
            engine.schedule_at(self._refresh_due_ps, self._refresh)
        self._reserved -= 1
        if packet.transaction.segments is not None:
            packet.obs_mark = engine.now  # queue-wait clock starts here
        self._queue.append(packet)
        self._kick(engine)

    def _kick(self, engine: Engine) -> None:
        now = engine.now
        issued_any = False
        if self.scheduling == "fcfs":
            # strict in-order: the head must issue before anything else
            while self._queue:
                packet = self._queue[0]
                location = packet.location
                bank = self.banks[location.bank]
                if not bank.ready_for(now, location.row):
                    break
                del self._queue[0]
                self._issue(engine, packet, bank, location.row)
                issued_any = True
        else:
            issued = True
            while issued:
                issued = False
                for position, packet in enumerate(self._queue):
                    location = packet.location
                    bank = self.banks[location.bank]
                    if bank.ready_for(now, location.row):
                        del self._queue[position]
                        self._issue(engine, packet, bank, location.row)
                        issued = True
                        issued_any = True
                        break
        self._arm_wakeup(engine)
        if issued_any:
            # Each issue freed an admission slot; wake any router head
            # that was blocked on local delivery (the event-driven
            # router no longer polls us on unrelated arrivals).
            self.router.output_ready(engine, LOCAL)

    def _issue(self, engine: Engine, packet: Packet, bank: Bank, row: int) -> None:
        txn = packet.transaction
        # A P2P_XFER leg writes the copied line at the destination cube;
        # every other leg follows the transaction's own kind (a P2P_REQ
        # is a read of the source address, txn.is_write is False).
        is_write = txn.is_write or packet.is_xfer
        plan = self.timing.plan(bank, engine.now, row, is_write)
        self.timing.apply(bank, plan, row)
        if txn.segments is not None:
            now = engine.now
            mark = packet.obs_mark
            if mark is not None and now > mark:
                txn.segments.append((self._seg_queue, mark, now))
            txn.segments.append((self._seg_array, now, plan.data_ready_ps))
        if self.tracer is not None:
            self.tracer.mem_access(
                self.name, engine.now, plan.data_ready_ps, plan.row_hit, is_write
            )
        engine.schedule_bound(
            plan.data_ready_ps - engine.now, self._complete, (packet, plan)
        )

    def _complete(self, engine: Engine, packet: Packet, plan: AccessPlan) -> None:
        txn = packet.transaction
        kind = packet.kind
        if kind >= PacketKind.P2P_REQ:
            # p2p relay leg.  The source-side read forwards the copied
            # line toward the destination cube; the destination-side
            # write acknowledges the host.  The transaction only leaves
            # "memory" when the destination write is durable.
            if packet.is_xfer:
                txn.mem_depart_ps = engine.now
                txn.row_hit = plan.row_hit
                txn.dest_tech = self.timing.tech.name
                self.writes += 1
                response = self.pool.p2p_ack_packet(
                    self.packet_config, packet, engine.now
                )
            else:  # P2P_REQ: the source-side read
                self.reads += 1
                response = self.pool.p2p_xfer_packet(
                    self.packet_config, packet, engine.now
                )
        else:
            txn.mem_depart_ps = engine.now
            txn.row_hit = plan.row_hit
            txn.dest_tech = self.timing.tech.name
            if txn.is_write:
                self.writes += 1
            else:
                self.reads += 1
            response = self.pool.response_packet(
                self.packet_config, packet, engine.now
            )
        if plan.row_hit:
            self.row_hits += 1
        response.source_tech = self.timing.tech.name
        if txn.segments is not None:
            response.obs_mark = engine.now  # inject-stall clock starts here
        # The request carcass is dead once the response exists; recycle
        # it before the injection cascade below can allocate.
        self.pool.release(packet)
        # route_response returns False only when a RAS permanent failure
        # cut this cube off from its target — the packet is then lost
        # (the host errors the transaction on its side).
        if self.route_response(response) is not False:
            self._pending_responses.append(response)
            self._try_inject(engine)
        else:
            self.pool.release(response)
        self._kick(engine)

    # -- response path ---------------------------------------------------------
    def _try_inject(self, engine: Engine) -> None:
        while self._pending_responses and self.inject_queue.has_space():
            response = self._pending_responses.pop(0)
            txn = response.transaction
            if txn.segments is not None:
                mark = response.obs_mark
                if mark is not None and engine.now > mark:
                    seg = (
                        self._seg_stall_xfer if response.is_xfer else self._seg_stall
                    )
                    txn.segments.append((seg, mark, engine.now))
            self.inject_queue.push(response, engine.now)
            self.router.packet_arrived(engine, self.inject_queue)

    def _inject_drained(self, engine: Engine) -> None:
        self._try_inject(engine)

    def sweep_responses(self, keep_or_fix: Callable[[Packet], bool]) -> int:
        """RAS quiesce: re-path or drop responses queued for injection.

        ``keep_or_fix`` may rewrite a response's route in place; a False
        return drops it.  Returns the number of responses dropped.
        """
        kept = []
        dropped = 0
        for response in self._pending_responses:
            if keep_or_fix(response):
                kept.append(response)
            else:
                dropped += 1
                self.pool.release(response)
        self._pending_responses = kept
        return dropped

    # -- wakeups -------------------------------------------------------------
    def _arm_wakeup(self, engine: Engine) -> None:
        if not self._queue:
            return
        now = engine.now
        earliest = None
        scan = self._queue[:1] if self.scheduling == "fcfs" else self._queue
        for packet in scan:
            location = packet.location
            bank = self.banks[location.bank]
            start = bank.earliest_start(now, location.row)
            if start > now and (earliest is None or start < earliest):
                earliest = start
        if earliest is None:
            return
        if self._next_wake_ps is not None and now < self._next_wake_ps <= earliest:
            return  # an adequate wakeup is already armed
        self._next_wake_ps = earliest
        engine.schedule_at(earliest, self._wake)

    def _wake(self, engine: Engine) -> None:
        if self._next_wake_ps is not None and engine.now >= self._next_wake_ps:
            self._next_wake_ps = None
        self._kick(engine)

    # -- refresh ---------------------------------------------------------------
    # Banks refresh in rotating groups (per-bank refresh as in HBM), so
    # at any instant only a fraction of the quadrant is unavailable and
    # bank-level parallelism hides most of the cost.  Ticks fire eagerly
    # only while requests are queued; a quiescent controller schedules
    # nothing and replays the missed ticks when the next request arrives
    # (exact, because idle banks are never touched in between).
    REFRESH_GROUPS = 8

    def _refresh_tick(self, tick_ps: int) -> None:
        """Apply the refresh tick due at ``tick_ps`` and advance the due
        time.  ``bank.refresh`` starts at ``max(tick_ps, busy_until)``,
        so replaying a tick after its due time gives the same bank state
        as applying it on time."""
        tech = self.timing.tech
        groups = min(self.REFRESH_GROUPS, len(self.banks))
        group = self.refreshes % groups
        duration = tech.refresh_duration_ps
        for index in range(group, len(self.banks), groups):
            self.banks[index].refresh(tick_ps, duration)
        self.refreshes += 1
        self._refresh_due_ps = tick_ps + tech.refresh_interval_ps // groups

    def _refresh(self, engine: Engine) -> None:
        self._refresh_armed = False
        self._refresh_tick(engine.now)
        if self._queue:
            self._refresh_armed = True
            engine.schedule_at(self._refresh_due_ps, self._refresh)
        # else dormant: receive() replays missed ticks and re-arms

    # -- introspection ------------------------------------------------------------
    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def pending_responses(self) -> int:
        return len(self._pending_responses)
