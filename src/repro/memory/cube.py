"""The memory cube: a router plus four quadrant controllers.

Mirrors the paper's baseline cube (Section 2.2): a logic die with
SerDes links and a switch, four quadrants of banks above it, and a 1 ns
penalty for requests that arrive on a link belonging to a different
quadrant than their target (Section 5).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config import CubeConfig, MemTechConfig, PacketConfig
from repro.memory.controller import QuadrantController
from repro.net.pool import PacketPool
from repro.memory.timing import TimingModel
from repro.net.buffers import InputQueue
from repro.net.packet import Packet
from repro.net.router import Router, LocalOutput, LOCAL
from repro.obs.attribution import segment_code
from repro.sim.engine import Engine

LOCAL_INPUTS = 4  # response-injection queues, one per quadrant


class MemoryCube:
    """One memory package in the MN."""

    def __init__(
        self,
        node_id: int,
        tech: MemTechConfig,
        cube_config: CubeConfig,
        packet_config: PacketConfig,
        router: Router,
        route_response: Callable[[Packet], None],
        bank_scale: float = 1.0,
        pool: Optional[PacketPool] = None,
        queue_cls: type = InputQueue,
    ) -> None:
        self.node_id = node_id
        self.tech = tech
        self.config = cube_config
        self.router = router
        timing = TimingModel(tech)
        banks_per_quadrant = max(1, int(cube_config.banks_per_quadrant * bank_scale))
        self.controllers: List[QuadrantController] = []
        for quadrant in range(cube_config.num_quadrants):
            inject = queue_cls(
                f"cube{node_id}.q{quadrant}.inject", cube_config.controller_queue_depth
            )
            index = router.add_input(inject)
            assert index == quadrant, "local queues must be inputs 0..3"
            offset = 0
            if tech.needs_refresh:
                # stagger refreshes across cubes and quadrants
                stride = tech.refresh_interval_ps // (cube_config.num_quadrants + 1)
                offset = (node_id * 3 + quadrant) * stride % tech.refresh_interval_ps
            controller = QuadrantController(
                name=f"cube{node_id}.q{quadrant}",
                timing=timing,
                num_banks=banks_per_quadrant,
                queue_depth=cube_config.controller_queue_depth,
                inject_queue=inject,
                router=router,
                route_response=route_response,
                packet_config=packet_config,
                refresh_offset_ps=offset,
                scheduling=cube_config.scheduling,
                pool=pool,
            )
            self.controllers.append(controller)
        router.add_output(LOCAL, LocalOutput(self._accept, self._deliver))
        # Interned attribution label (repro.obs)
        self._seg_xbar = segment_code(f"mem.xbar.cube{node_id}")

    # ------------------------------------------------------------------
    def start(self, engine: Engine) -> None:
        for controller in self.controllers:
            controller.start_refresh(engine)

    def _quadrant_of(self, packet: Packet) -> int:
        # packet.location mirrors transaction.location except on a
        # P2P_XFER leg, which targets this (destination) cube's placement
        return packet.location.quadrant

    def _accept(self, packet: Packet) -> bool:
        return self.controllers[self._quadrant_of(packet)].can_accept()

    def _deliver(self, engine: Engine, packet: Packet, input_index: int) -> None:
        quadrant = self._quadrant_of(packet)
        txn = packet.transaction
        if txn.mem_arrive_ps is None:
            txn.mem_arrive_ps = engine.now
            txn.request_hops = packet.hops_traversed
        elif packet.is_xfer:
            # second arrival of a p2p relay: the copied line reached the
            # destination cube
            txn.xfer_hops = packet.hops_traversed
        controller = self.controllers[quadrant]
        controller.reserve()
        arrival_port = max(input_index - LOCAL_INPUTS, 0) % self.config.num_quadrants
        penalty = 0
        if arrival_port != quadrant:
            penalty = self.config.wrong_quadrant_penalty_ps
        if penalty:
            if txn.segments is not None:
                txn.segments.append(
                    (self._seg_xbar, engine.now, engine.now + penalty)
                )
            engine.schedule(penalty, controller.receive, packet)
        else:
            controller.receive(engine, packet)

    # -- introspection ----------------------------------------------------
    def total_reads(self) -> int:
        return sum(c.reads for c in self.controllers)

    def total_writes(self) -> int:
        return sum(c.writes for c in self.controllers)

    def total_row_hits(self) -> int:
        return sum(c.row_hits for c in self.controllers)
