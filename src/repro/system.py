"""System assembly: build one memory network and run a workload on it.

:class:`MemoryNetworkSystem` is the package's main entry point.  It
instantiates the configured topology, wires routers/links/cubes/host,
drives the workload to completion, and returns a :class:`SimResult`.

A system models **one host port's MN**.  Ports serve disjoint address
slices (Section 2.3), so the per-port run is representative of the full
machine; the configured port count still sets the per-port capacity
(hence cube count) and the per-port share of the workload's offered
load.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

from repro.arbitration import ArbiterContext, make_arbiter_factory
from repro.config import SystemConfig
from repro.energy import EnergyModel
from repro.errors import RoutingError, SimulationError, TopologyError
from repro.host import AddressMap, HostNode, HostPort
from repro.memory import MemoryCube
from repro.net.buffers import InputQueue
from repro.net.link import Link, SharedChannel
from repro.net.packet import Packet, PacketKind, Transaction
from repro.net.pool import PacketPool
from repro.net.router import LinkOutput, Router
from repro.net.routing import RouteClass, RouteTable, cached_bfs_paths
from repro.ras import FaultInjector
from repro.results import SimResult, TransactionCollector
from repro.sim import Engine, derive_seed
from repro.topology import Topology, build_topology
from repro.topology.base import HOST_ID, LinkKind, NodeKind
from repro.units import serialization_ps
from repro.workloads import Request, SyntheticWorkload, WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import TraceRecorder


class MemoryNetworkSystem:
    """One fully-wired MN simulation instance (single use)."""

    def __init__(
        self,
        config: SystemConfig,
        workload: WorkloadSpec,
        requests: int = 2000,
        workload_iter: Optional[Iterator[Request]] = None,
        engine: Optional[Engine] = None,
        audit: Optional[bool] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.workload_spec = workload
        self.requests = requests
        # An explicit engine selects the scheduler implementation (the
        # determinism-equivalence suite runs both); results are
        # bit-identical either way, so the choice is not part of the
        # job digest.
        self.engine = engine if engine is not None else Engine()
        # The native backend compiles the network inner loop too: every
        # input queue in the fabric is the C implementation (push/pop/
        # head-key maintenance in C, identical semantics and counters).
        # The pure-Python schedulers keep the pure-Python queue, so the
        # wheel baseline stays an honest comparison point.
        self._queue_cls = InputQueue
        self._router_cls = Router
        if getattr(self.engine, "scheduler", None) == "native":
            from repro.sim.native import native_queue_class, native_router_class

            self._queue_cls = native_queue_class()
            self._router_cls = native_router_class()
        self.topology: Topology = build_topology(config)
        self.route_table = RouteTable(
            self.topology.adjacency_by_class(),
            HOST_ID,
            self.topology.cube_ids(),
        )
        self.collector = TransactionCollector()
        # One shared recycling allocator for every packet in the system
        # (host requests and cube responses).  Recycled packets draw
        # fresh pids from the global counter, so pooling is invisible to
        # result digests; see repro.net.pool.
        self.packet_pool = PacketPool()

        self._links: List[Tuple[Link, LinkKind]] = []
        self._routers: Dict[int, Router] = {}
        self._link_input_index: Dict[Tuple[int, int], int] = {}
        self._link_by_pair: Dict[Tuple[int, int], Link] = {}
        self.cubes: Dict[int, MemoryCube] = {}

        self._build_routers()
        self._wire_edges()
        self._fill_subtree_weights()
        self._build_address_map()
        self._build_port(workload, requests, workload_iter)
        self.tracer = self._attach_tracer()
        # RAS (repro.ras): ``_ras`` stays None unless a fault plan is
        # enabled, keeping every hot-path check a no-op.
        self._ras: Optional[FaultInjector] = None
        self._dead_edges: set = set()
        self._live_adjacency = None
        self._guarded = False
        self._attach_ras()
        self._warmup_count = int(requests * config.warmup_fraction)
        self._completed_count = 0
        self._started = False
        # Invariant audits (repro.check): like the engine choice, audit
        # enablement is not part of the config — audits verify a run
        # without changing it, so audited and unaudited runs share job
        # digests.  ``None`` defers to the ambient flag / REPRO_AUDIT.
        self.auditor = None
        if audit is None:
            from repro.check import audits_enabled

            audit = audits_enabled()
        if audit:
            from repro.check import InvariantAuditor

            self.auditor = InvariantAuditor(self)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _arbiter_context(self) -> ArbiterContext:
        distance = {
            cube: self.route_table.distance(cube, RouteClass.READ)
            for cube in self.topology.cube_ids()
        }
        tech = {
            cube: self.topology.tech_of(cube) for cube in self.topology.cube_ids()
        }
        link = self.config.link
        hop_ps = link.serdes_latency_ps + serialization_ps(
            self.config.packet.data_bits, link.lanes, link.lane_gbps
        )
        dram, nvm = self.config.dram, self.config.nvm
        nvm_extra_ps = (nvm.trcd_ps + nvm.tcl_ps) - (dram.trcd_ps + dram.tcl_ps)
        bonus = max(nvm_extra_ps / hop_ps, 0.0) if hop_ps else 0.0
        return ArbiterContext(
            distance_to_host=distance,
            tech_of_node=tech,
            nvm_bonus_hops=bonus,
        )

    def _build_routers(self) -> None:
        for node in sorted(self.topology.nodes):
            spec = self.topology.nodes[node]
            context = self._arbiter_context()  # per-router arbiter state
            factory = make_arbiter_factory(self.config.arbiter, context)
            router = self._router_cls(
                node_id=node,
                name=f"{spec.kind.name.lower()}{node}",
                arbiter_factory=factory,
            )
            self._routers[node] = router
            if spec.kind == NodeKind.HOST:
                self.host_node = HostNode(
                    router,
                    self.config.host.inject_queue_depth,
                    queue_cls=self._queue_cls,
                )
            elif spec.kind == NodeKind.CUBE:
                tech = self.config.dram if spec.tech == "DRAM" else self.config.nvm
                self.cubes[node] = MemoryCube(
                    node_id=node,
                    tech=tech,
                    cube_config=self.config.cube,
                    packet_config=self.config.packet,
                    router=router,
                    route_response=self._route_response,
                    bank_scale=self.config.capacity_scale,
                    pool=self.packet_pool,
                    queue_cls=self._queue_cls,
                )
            # SWITCH nodes are pure routers: no local output needed.

    def _wire_edges(self) -> None:
        for edge in self.topology.edges:
            link_config = (
                self.config.interposer_link
                if edge.link_kind == LinkKind.INTERPOSER
                else self.config.link
            )
            # One shared serializer per edge unless full duplex is asked
            # for (Section 5: a single link joins two packages).
            shared = None
            if not link_config.full_duplex:
                shared = SharedChannel(f"{edge.a}<->{edge.b}")
            for src, dst in ((edge.a, edge.b), (edge.b, edge.a)):
                queue = self._queue_cls(
                    f"n{dst}.from{src}", link_config.input_buffer_packets
                )
                dst_router = self._routers[dst]
                index = dst_router.add_input(queue)
                self._link_input_index[(src, dst)] = index
                link = Link(f"{src}->{dst}", link_config, queue, channel=shared)
                src_router = self._routers[src]
                src_router.add_output(dst, LinkOutput(link))
                link.on_idle = self._make_output_ready(src_router, dst)
                link.on_delivery = dst_router.packet_arrived
                link.sender_has_response_head = self._make_response_peek(
                    src_router, dst
                )
                self._link_by_pair[(src, dst)] = link
                self._links.append((link, edge.link_kind))

    @staticmethod
    def _make_response_peek(router: Router, key: int) -> Callable[[], bool]:
        def peek() -> bool:
            return router.has_response_head(key)

        return peek

    @staticmethod
    def _make_output_ready(router: Router, key: int) -> Callable[[Engine], None]:
        def callback(engine: Engine) -> None:
            router.output_ready(engine, key)

        return callback

    def _fill_subtree_weights(self) -> None:
        """Static weights for the global-weighted arbiter ablation."""
        for cube in self.topology.cube_ids():
            path = self.route_table.route_to_host(cube, RouteClass.READ)
            for upstream, downstream in zip(path, path[1:]):
                index = self._link_input_index.get((upstream, downstream))
                if index is None:
                    continue
                router = self._routers[downstream]
                for key in router.outputs:
                    context = router.arbiter_for(key).context
                    context.subtree_weights[index] = (
                        context.subtree_weights.get(index, 0) + 1
                    )

    def _build_address_map(self) -> None:
        cube_ids = self.topology.cube_ids()
        scale = self.config.capacity_scale
        capacities = []
        for cube in cube_ids:
            tech = self.config.dram if self.topology.tech_of(cube) == "DRAM" else (
                self.config.nvm
            )
            capacities.append(int(tech.capacity_bytes * scale))
        self.address_map = AddressMap(
            cube_capacities=capacities,
            interleave_bytes=self.config.host.interleave_bytes,
            row_bytes=self.config.cube.row_bytes,
            banks_per_stack=max(
                1, int(self.config.cube.banks_per_stack * scale)
            ),
            num_quadrants=self.config.cube.num_quadrants,
        )
        self.cube_node_ids = cube_ids

    def _build_port(
        self,
        workload: WorkloadSpec,
        requests: int,
        workload_iter: Optional[Iterator[Request]],
    ) -> None:
        if workload_iter is None:
            # Note: the seed deliberately excludes the MN configuration so
            # every config sees the *same* request stream for a workload —
            # speedups then compare like against like.
            seed = derive_seed(self.config.seed, workload.name)
            workload_iter = SyntheticWorkload(
                spec=workload,
                port_capacity_bytes=self.address_map.total_bytes,
                seed=seed,
                num_ports=self.config.host.num_ports,
            )
        self.port = HostPort(
            port_id=0,
            config=self.config,
            workload=workload_iter,
            total_requests=requests,
            address_map=self.address_map,
            cube_node_ids=self.cube_node_ids,
            route_table=self.route_table,
            inject_queue=self.host_node.inject_queue,
            router=self._routers[HOST_ID],
            on_transaction_done=self._transaction_done,
            window=workload.mlp,
            pool=self.packet_pool,
            cube_techs=[self.topology.tech_of(c) for c in self.cube_node_ids],
            open_loop=workload.is_open_loop,
        )
        self.host_node.attach_port(self.port.on_response)

    def _attach_tracer(self) -> Optional["TraceRecorder"]:
        """Hook a TraceRecorder into engine/links/routers/queues.

        Returns None (and touches nothing) unless ``config.obs.trace``
        is set — the zero-overhead-when-off guard leaves every hot-path
        ``tracer`` attribute as its default ``None``.
        """
        obs = self.config.obs
        if not obs.trace:
            return None
        from repro.obs import TraceRecorder

        sample = obs.trace_sample
        # Phase derived from the config seed: reproducible from the
        # config alone, decorrelated from event alignment at the start
        # of the run (phase 0 would always keep the very first event).
        phase = derive_seed(self.config.seed, "obs.trace") % sample if sample > 1 else 0
        tracer = TraceRecorder(obs.trace_ring, sample=sample, sample_phase=phase)
        if obs.trace_engine_events:
            self.engine.set_tracer(tracer)
        self.port.tracer = tracer
        for link, _kind in self._links:
            link.tracer = tracer
        for router in self._routers.values():
            router.tracer = tracer
            for queue in router.inputs:
                queue.tracer = tracer
        for cube in self.cubes.values():
            for controller in cube.controllers:
                controller.tracer = tracer
        return tracer

    def _attach_ras(self) -> None:
        """Bind the fault plan to the wired network (RAS, repro.ras).

        Touches nothing when the plan is disabled.  Otherwise attaches
        per-link transient-error state (external links only for the
        global BER — the interposer is exempt, matching its on-package
        error characteristics) and schedules the permanent failures.
        """
        plan = self.config.ras
        if not plan.enabled:
            return
        self._ras = FaultInjector(plan, self.config.seed)
        for edge in self.topology.edges:
            external = edge.link_kind != LinkKind.INTERPOSER
            for pair in ((edge.a, edge.b), (edge.b, edge.a)):
                link = self._link_by_pair.get(pair)
                if link is not None:
                    self._ras.bind_link(link, pair[0], pair[1], external)
        self._ras.schedule_failures(
            self.engine, self._on_link_failure, self._on_cube_failure
        )

    def _on_link_failure(self, engine: Engine, a: int, b: int) -> None:
        self._apply_failures(engine, [(a, b)])

    def _on_cube_failure(self, engine: Engine, cube: int) -> None:
        incident = [
            (edge.a, edge.b)
            for edge in self.topology.edges
            if cube in (edge.a, edge.b)
        ]
        self._apply_failures(engine, incident)

    def _apply_failures(self, engine: Engine, pairs) -> None:
        """Kill the given edges mid-run and degrade gracefully.

        Protocol: (1) mark both link directions dead (in-flight packets
        still deliver), (2) rebuild the route table over the surviving
        topology (unreachable cubes allowed), (3) hand the new table to
        the host *before* anything can inject — stale-routed injections
        could deadlock behind a dead output, (4) quiesce every queued
        packet whose remaining route crosses a dead edge (reroute in
        place, or drop + fail its transaction), (5) fail outstanding and
        pending transactions to now-unreachable cubes as counted errors,
        (6) kick every router.
        """
        applied = []
        for a, b in pairs:
            if (a, b) in self._dead_edges:
                continue
            try:
                self.topology.remove_edge(a, b)
            except TopologyError:
                continue  # edge not present (e.g. statically failed)
            self._dead_edges.add((a, b))
            self._dead_edges.add((b, a))
            for pair in ((a, b), (b, a)):
                link = self._link_by_pair.get(pair)
                if link is not None:
                    link.fail()
            applied.append((a, b))
        if not applied:
            return
        stats = self._ras.stats
        stats.count("ras.link_failures", len(applied))
        stats.count("ras.route_rebuilds")
        self._live_adjacency = self.topology.adjacency_by_class()
        self.route_table = RouteTable(
            self._live_adjacency,
            HOST_ID,
            self.topology.cube_ids(),
            allow_unreachable=True,
        )
        if not self._guarded:
            self._guarded = True
            for link, _kind in self._links:
                link.route_guard = self._guard_delivery
        if self.tracer is not None:
            for a, b in applied:
                self.tracer.ras_failure(engine.now, a, b)
        self.port.adopt_route_table(self.route_table)
        self._quiesce(engine)
        self.port.fail_unreachable(engine)
        for router in self._routers.values():
            router.kick(engine)
        if self.auditor is not None:
            self.auditor.audit("ras-quiesce")

    def _quiesce(self, engine: Engine) -> None:
        """Walk every queue; fix or drop packets stranded by the cut.

        Two phases: first every queue is repaired (no credits returned,
        so a freed slot cannot admit a packet into a queue we have not
        walked yet), then the batched credit returns / drain callbacks
        fire.
        """
        drained: List[Tuple[InputQueue, int]] = []
        for router in self._routers.values():
            for queue in router.inputs:
                if queue.is_empty:
                    continue
                victims = set()
                for packet in queue.packets():
                    if not self._route_is_dead(packet):
                        continue
                    if self._reroute_packet(packet):
                        self._ras.stats.count("ras.packets_rerouted")
                    else:
                        victims.add(packet)
                        self._drop_packet(engine, packet)
                if victims:
                    removed = queue.remove(victims)
                    drained.append((queue, removed))
                    # Released only now — after the removal — so a
                    # recycled carcass can never alias a packet the
                    # remove() walk still compares against.
                    for victim in victims:
                        self.packet_pool.release(victim)
                # A head rerouted in place invalidates the queue's
                # cached output key; the batched credit returns below
                # re-enter arbitration before the routers are kicked.
                queue.refresh_head_key()
        # Queued-but-uninjected responses live outside the router queues.
        for cube in self.cubes.values():
            for controller in cube.controllers:
                dropped = controller.sweep_responses(self._fix_or_drop_response)
                if dropped:
                    self._ras.stats.count("ras.packets_dropped", dropped)
        for queue, count in drained:
            if queue.upstream_link is not None:
                for _ in range(count):
                    queue.upstream_link.return_credit(engine)
            elif queue.on_drain is not None:
                queue.on_drain(engine)

    def _fix_or_drop_response(self, response: Packet) -> bool:
        """Controller-buffer sweep predicate: keep (possibly rerouted)?"""
        if not self._route_is_dead(response):
            return True
        if self._reroute_packet(response):
            self._ras.stats.count("ras.packets_rerouted")
            return True
        # The host is unreachable from this cube; its transaction is
        # failed by the host-side sweep that follows the quiesce.
        return False

    def _route_is_dead(self, packet: Packet) -> bool:
        route = packet.route
        dead = self._dead_edges
        for i in range(packet.hop_index, len(route) - 1):
            if (route[i], route[i + 1]) in dead:
                return True
        return False

    def _reroute_packet(self, packet: Packet) -> bool:
        """Re-path a packet from its current node over the live topology."""
        cls = (
            RouteClass.WRITE
            if packet.kind.is_write_class
            else RouteClass.READ
        )
        paths = cached_bfs_paths(self._live_adjacency[cls], packet.current_node)
        path = paths.get(packet.route[-1])
        if path is None:
            return False
        packet.route = list(path)
        packet.hop_index = 0
        return True

    def _guard_delivery(self, engine: Engine, packet: Packet, link: Link) -> bool:
        """Delivery-time route check installed on every link after a
        failure.  Returns False when the packet was dropped (the link
        then swallows it and its queue slot is never consumed)."""
        if not self._route_is_dead(packet):
            return True
        if self._reroute_packet(packet):
            self._ras.stats.count("ras.packets_rerouted")
            return True
        self._drop_packet(engine, packet)
        link.return_credit(engine)
        # Last: _drop_packet/return_credit cascades may acquire new
        # packets, and this carcass must not be recycled while they run.
        self.packet_pool.release(packet)
        return False

    def _drop_packet(self, engine: Engine, packet: Packet) -> None:
        self._ras.stats.count("ras.packets_dropped")
        txn = packet.transaction
        if txn is not None and not txn.failed:
            # Request cut off from its cube, or response cut off from the
            # host: either way the transaction can never complete.
            self.port.fail_issued(engine, txn)
            self.port.try_inject(engine)

    def dump_trace(self, directory: str) -> List[str]:
        """Write the run's trace as JSONL + Chrome trace_event files.

        Returns the paths written.  Requires ``config.obs.trace``.
        """
        if self.tracer is None:
            raise SimulationError("tracing is off; set config.obs.trace")
        from pathlib import Path

        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        tag = re.sub(
            r"[^A-Za-z0-9_.-]+", "_",
            f"{self.config.label()}_{self.workload_spec.name}",
        ).strip("_")
        runtime = self.collector.last_complete_ps or self.engine.now
        metadata = {
            "config": self.config.label(),
            "workload": self.workload_spec.name,
            "requests": self.requests,
            "runtime_ps": runtime,
        }
        jsonl = out / f"trace_{tag}.jsonl"
        chrome = out / f"trace_{tag}.json"
        self.tracer.write_jsonl(jsonl, runtime)
        self.tracer.write_chrome(chrome, runtime, metadata)
        return [str(jsonl), str(chrome)]

    # ------------------------------------------------------------------
    # runtime callbacks
    # ------------------------------------------------------------------
    def _route_response(self, response: Packet) -> bool:
        kind = response.kind
        if kind is PacketKind.P2P_XFER:
            # The copied line travels cube -> cube over the read class;
            # the path may transit the host router as a plain switch.
            try:
                response.route = list(
                    self.route_table.route_between(
                        response.src, response.dest, RouteClass.READ
                    )
                )
            except RoutingError:
                if self._ras is None:
                    raise  # without a fault plan this is a wiring bug
                self._ras.stats.count("ras.responses_unroutable")
                return False
            response.hop_index = 0
            return True
        cls = (
            RouteClass.WRITE if kind == PacketKind.WRITE_ACK else RouteClass.READ
        )
        try:
            response.route = list(self.route_table.route_to_host(response.src, cls))
        except RoutingError:
            if self._ras is None:
                raise  # without a fault plan this is a wiring bug
            # The host became unreachable from this cube; the response
            # is lost and the host errors the transaction on its side.
            self._ras.stats.count("ras.responses_unroutable")
            return False
        response.hop_index = 0
        return True

    def _transaction_done(self, engine: Engine, txn: Transaction) -> None:
        self._completed_count += 1
        if not txn.failed and self._completed_count > self._warmup_count:
            self.collector.add(txn)
        else:
            # warm-up and failed transactions still define the runtime
            # envelope, but are not latency samples
            if txn.complete_ps and txn.complete_ps > self.collector.last_complete_ps:
                self.collector.last_complete_ps = txn.complete_ps
        if self.port.done:
            # The port flipped ``done`` immediately before this hook, so
            # stopping here is the same event boundary the old
            # per-event ``stop_when`` predicate stopped at.
            engine.request_stop()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> SimResult:
        if self._started:
            raise SimulationError("a MemoryNetworkSystem instance is single-use")
        self._started = True
        for cube in self.cubes.values():
            cube.start(self.engine)
        self.port.start(self.engine)
        if max_events is None:
            max_events = 4000 * self.requests + 2_000_000
        if self.port.done:
            # Zero-request run: nothing will ever complete, so nothing
            # calls request_stop — pre-arm it so the run stops after
            # its first event, exactly where the old per-event
            # ``stop_when`` predicate stopped it.
            self.engine.request_stop()
        # Completion is signalled by request_stop from _transaction_done
        # (the port flips ``done`` then invokes that hook within the
        # same event), replacing a per-event predicate call with one
        # flag check inside the dispatch loop.
        self.engine.run(max_events=max_events)
        if not self.port.done:
            if self.auditor is not None:
                # A broken invariant (leaked packet, lost credit) usually
                # surfaces as a stall; name the root cause if we can.
                self.auditor.audit("stall")
            raise SimulationError(
                f"simulation stalled: {self.port.completed}/{self.requests} "
                f"transactions completed ({self.port.failed} failed) "
                f"at t={self.engine.now}"
            )
        if self.auditor is not None:
            # Audited before drain() so stranded-event checks see the
            # real queue contents.
            self.auditor.audit("final")
        self.engine.drain()
        if self.tracer is not None and self.config.obs.trace_dir:
            self.dump_trace(self.config.obs.trace_dir)
        result = self._result()
        if self.auditor is not None:
            self.auditor.audit_result(result)
        return result

    def _result(self) -> SimResult:
        external_bits = sum(
            link.bits_carried for link, kind in self._links if kind == LinkKind.EXTERNAL
        )
        interposer_bits = sum(
            link.bits_carried
            for link, kind in self._links
            if kind == LinkKind.INTERPOSER
        )
        accesses = []
        for node, cube in self.cubes.items():
            accesses.append((cube.tech, cube.total_reads(), cube.total_writes()))
        energy = EnergyModel(self.config.energy, self.config.packet).report(
            external_bits, interposer_bits, accesses
        )
        extra: Dict[str, float] = {}
        if self.port.generated_p2p:
            extra["p2p.generated"] = float(self.port.generated_p2p)
            extra["p2p.completed"] = float(self.port.completed_p2p)
            extra["p2p.failed"] = float(self.port.failed_p2p)
        port = self.port
        if port._overload:
            # Overload accounting (open-loop arrivals and/or deadlines/
            # shedding).  Keyed only when the feature is active so
            # pre-overload result digests are untouched.
            extra["overload.generated"] = float(port.generated)
            extra["overload.completed"] = float(port.completed)
            extra["overload.timeouts"] = float(port.timeouts)
            extra["overload.retries"] = float(port.retries)
            extra["overload.timed_out"] = float(port.timed_out)
            extra["overload.shed"] = float(port.shed)
            extra["overload.stale_responses"] = float(port.stale_responses)
            extra["overload.peak_backlog"] = float(port.peak_backlog)
        obs = self.config.obs
        if obs.attribution and (
            obs.attribution_sample > 1 or obs.attribution_labels is not None
        ):
            # Sampled/masked attribution accounting.  Keyed only when
            # the narrowing features are active so full-attribution and
            # attribution-off result digests are untouched.
            extra["obs.attribution_sample"] = float(obs.attribution_sample)
            extra["obs.attribution_sampled"] = float(port.attribution_sampled)
        if self._ras is not None:
            extra.update(self._ras.counters())
            extra["ras.replays"] = float(
                sum(link.replays for link, _kind in self._links)
            )
            if self.port.late_responses:
                extra["ras.late_responses"] = float(self.port.late_responses)
        return SimResult(
            config_label=self.config.label(),
            workload=self.workload_spec.name,
            runtime_ps=self.collector.last_complete_ps,
            collector=self.collector,
            energy=energy,
            mean_distance=self.route_table.mean_distance(),
            max_distance=self.route_table.max_distance(),
            stalled_reads=self.port.directory.stalled_reads,
            burst_mode_toggles=self.port.burst_mode_toggles,
            events_processed=self.engine.events_processed,
            requests_failed=self.port.failed,
            requests_served=self.port.completed,
            extra=extra,
        )


def simulate(
    config: SystemConfig,
    workload: WorkloadSpec,
    requests: int = 2000,
    workload_iter: Optional[Iterator[Request]] = None,
) -> SimResult:
    """Convenience one-shot: build a system, run it, return the result.

    Routed through the ambient :class:`repro.runner.ParallelRunner`, so
    repeated calls with an identical (config, workload, requests) triple
    are memoized by content digest.  An explicit ``workload_iter`` makes
    the run non-reproducible from its arguments alone, so those runs
    bypass the runner and always simulate.
    """
    if workload_iter is not None:
        return MemoryNetworkSystem(
            config, workload, requests=requests, workload_iter=workload_iter
        ).run()
    # Imported here: repro.runner imports repro.system for its workers.
    from repro.runner import SimJob, get_runner

    return get_runner().run_one(
        SimJob(config=config, workload=workload, requests=requests)
    )
