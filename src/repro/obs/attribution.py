"""Per-hop latency attribution: segment taxonomy and derived views.

With ``config.obs.attribution`` on, every transaction carries a list of
``(label, start_ps, end_ps)`` segments appended by the components it
visits.  Hot-path components intern their labels once at construction
(:func:`segment_code`) and append integer codes instead of strings —
per-event string concatenation was the bulk of attribution's overhead —
and the codes are decoded back to the string taxonomy when a completed
transaction is folded into the collector (:func:`sum_by_label` accepts
either form).  Labels follow a ``<phase>.<stage>[.<where>]`` taxonomy:

============================  =============================================
label                         meaning
============================  =============================================
``req.port``                  coherence point -> memory port crossing
``req.inject``                wait for injection-queue space at the port
``req.queue.<queue>``         router input-queue wait (request path)
``req.retry.<link>``          CRC-failed traversals replayed (RAS)
``req.wire.<link>``           serialization + SerDes + propagation
``mem.xbar.<cube>``           wrong-quadrant crossing penalty
``mem.queue.<controller>``    controller queue wait
``mem.array.<controller>``    bank access (incl. bank-ready wait)
``mem.xfer.stall.<ctrl>``     p2p transfer waits for inject space
``mem.xfer.queue.<queue>``    router input-queue wait (p2p data leg)
``mem.xfer.retry.<link>``     CRC-failed p2p traversals replayed (RAS)
``mem.xfer.wire.<link>``      link traversal (p2p data leg)
``resp.stall.<controller>``   response waits for controller inject space
``resp.queue.<queue>``        router input-queue wait (response path)
``resp.retry.<link>``         CRC-failed traversals replayed (RAS)
``resp.wire.<link>``          link traversal (response path)
``resp.port``                 memory port -> core crossing
``host.timeout.<kind>``       cancelled attempt's span [claim, deadline]
                              (overload; counts toward the ``req`` phase)
``host.retry.<kind>``         retry backoff + re-admission wait
                              (overload; counts toward the ``req`` phase)
============================  =============================================

The segments of one transaction tile its end-to-end latency exactly:
``req.*`` sums to the Fig 5 *to-memory* interval, ``mem.*`` to
*in-memory* and ``resp.*`` to *from-memory*, which is what lets the
paper's three-way split be recomputed as a view over the N-way one
(:func:`three_way_ns`).  Peer-to-peer copies reuse the same tiling: the
``P2P_REQ`` leg is ``req.*``, everything from the source-cube read
through the cube-to-cube ``P2P_XFER`` to the destination write is
``mem.*`` (the data-leg hops carry the ``mem.xfer.*`` labels above),
and the ``P2P_ACK`` leg is ``resp.*``.  Zero-length waits are never recorded, so any
per-transaction residual (``UNATTRIBUTED``) indicates an instrumentation
gap, not rounding.

:class:`repro.results.TransactionCollector` folds each completed
transaction's per-label duration sums into fixed-width histograms, so
every segment exposes mean and tail percentiles (p50/p95/p99).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.sim.stats import Histogram
from repro.units import to_ns

#: Histogram shape for per-segment duration distributions: 4 ns buckets
#: over a ~1 us in-range window; longer waits land in the overflow
#: counter and percentiles clamp to the observed max.
SEGMENT_BUCKET_PS = 4_000
SEGMENT_NUM_BUCKETS = 256

#: Pseudo-segment holding per-transaction time no component claimed.
UNATTRIBUTED = "unattributed"

PHASES = ("req", "mem", "resp")

#: Fig 5 naming for each phase prefix.
PHASE_TO_COMPONENT = {
    "req": "to_memory",
    "mem": "in_memory",
    "resp": "from_memory",
}


def make_segment_histogram() -> Histogram:
    return Histogram(SEGMENT_BUCKET_PS, SEGMENT_NUM_BUCKETS)


# ---------------------------------------------------------------------------
# Segment codebook: process-global interning of labels to small ints.
#
# A component that appends segments on the hot path computes its codes
# once (at construction) and appends ``(code, start_ps, end_ps)``;
# everything downstream of the collector keeps seeing string labels.
# Codes are assigned in first-intern order and are process-local — they
# never cross a process boundary or enter a digest, only labels do.
# ---------------------------------------------------------------------------
_SEGMENT_LABELS: List[str] = []
_SEGMENT_CODES: Dict[str, int] = {}


def segment_code(label: str) -> int:
    """Intern ``label`` and return its stable integer code."""
    code = _SEGMENT_CODES.get(label)
    if code is None:
        code = len(_SEGMENT_LABELS)
        _SEGMENT_LABELS.append(label)
        _SEGMENT_CODES[label] = code
    return code


def segment_label(code: int) -> str:
    """The label string for an interned code (export-time decode)."""
    return _SEGMENT_LABELS[code]


def sum_by_label(
    segments: Iterable[Tuple[object, int, int]]
) -> Dict[str, int]:
    """Per-label duration sums for one transaction's segment list.

    Accepts integer-coded labels (hot-path appenders) and plain strings
    (cold paths, tests) interchangeably; the result is always keyed by
    label string.  Accumulation happens on the raw keys — int hashing
    is cheaper — and decoding happens once per distinct label.
    """
    sums: Dict[object, int] = {}
    for label, start_ps, end_ps in segments:
        sums[label] = sums.get(label, 0) + (end_ps - start_ps)
    labels = _SEGMENT_LABELS
    out: Dict[str, int] = {}
    for key, total in sums.items():
        if type(key) is int:
            key = labels[key]
        out[key] = out.get(key, 0) + total
    return out


# ---------------------------------------------------------------------------
# Per-label enable masks (config.obs.attribution_labels).
#
# A mask keeps only the segments whose label falls under one of the
# configured taxonomy prefixes ("mem.xfer" enables "mem.xfer.queue.*",
# "mem.xfer.wire.*", ...).  Filtering happens at append time in the
# transaction's segment list itself, so every producer — pure-Python
# components and the compiled queue alike — goes through one filter,
# and masked-out spans are still *counted* (``suppressed_ps``): the
# collector subtracts them from the residual, which keeps the
# ``unattributed`` pseudo-segment a pure instrumentation-gap signal
# instead of "everything the mask dropped".
# ---------------------------------------------------------------------------
class SegmentMask:
    """Compiled label filter: prefix match, memoized per interned code."""

    __slots__ = ("prefixes", "_decisions")

    def __init__(self, prefixes: Iterable[str]) -> None:
        self.prefixes = tuple(prefixes)
        # key -> bool, keyed by whatever producers append (interned int
        # codes on hot paths, raw strings on cold ones)
        self._decisions: Dict[object, bool] = {}

    def _match(self, label: str) -> bool:
        for prefix in self.prefixes:
            if label == prefix or label.startswith(prefix + "."):
                return True
        return False

    def allows(self, key: object) -> bool:
        decision = self._decisions.get(key)
        if decision is None:
            label = segment_label(key) if type(key) is int else str(key)
            decision = self._decisions[key] = self._match(label)
        return decision


class MaskedSegments(list):
    """A transaction segment list that records only enabled labels.

    Drop-in for the plain ``list`` the port attaches when attribution
    is unmasked: every producer appends ``(label, start_ps, end_ps)``
    and list semantics (``len``, ``del seg[mark:]``) keep working.
    Masked-out appends accumulate their duration in ``suppressed_ps``
    so coverage accounting stays exact.
    """

    __slots__ = ("mask", "suppressed_ps")

    def __init__(self, mask: SegmentMask) -> None:
        super().__init__()
        self.mask = mask
        self.suppressed_ps = 0

    def append(self, segment: Tuple[object, int, int]) -> None:
        if self.mask.allows(segment[0]):
            list.append(self, segment)
        else:
            self.suppressed_ps += segment[2] - segment[1]


def phase_of(label: str) -> Optional[str]:
    """The ``req``/``mem``/``resp`` phase a segment label belongs to.

    Overload dead time (``host.timeout.*`` backed-off ``host.retry.*``)
    precedes the surviving attempt's arrival at memory, so it counts
    toward ``req`` — the breakdown's to-memory interval spans it by
    construction (``start_ps`` is pinned at the first window grant).
    """
    head = label.split(".", 1)[0]
    if head == "host":
        return "req"
    return head if head in PHASES else None


def category_of(label: str) -> str:
    """``<phase>.<stage>`` — the label with its location detail dropped."""
    parts = label.split(".")
    return ".".join(parts[:2]) if len(parts) > 2 else label


def rollup(
    segment_hists: Mapping[str, Histogram]
) -> Dict[str, Histogram]:
    """Merge per-location segment histograms into per-category ones.

    ``req.queue.n3.from2`` and ``req.queue.host.inject`` both fold into
    ``req.queue``; labels without location detail pass through.  Input
    histograms are not modified.
    """
    merged: Dict[str, Histogram] = {}
    for label in sorted(segment_hists):
        hist = segment_hists[label]
        key = category_of(label)
        into = merged.get(key)
        if into is None:
            into = merged[key] = Histogram(hist.bucket_width, len(hist.buckets))
        into.merge(hist)
    return merged


def three_way_ns(
    segment_hists: Mapping[str, Histogram], transactions: int
) -> Dict[str, float]:
    """The Fig 5 decomposition recomputed from segment attribution.

    Mean nanoseconds per transaction for to/in/from-memory, each phase's
    value being the summed duration of all its segments divided by the
    collector's transaction count (segments a transaction did not incur
    contribute zero, exactly as in the timestamp-based split).
    """
    totals = {phase: 0.0 for phase in PHASES}
    for label, hist in segment_hists.items():
        phase = phase_of(label)
        if phase is not None:
            totals[phase] += hist.stat.total
    count = transactions or 1
    return {
        PHASE_TO_COMPONENT[phase]: to_ns(totals[phase] / count)
        for phase in PHASES
    }


def segment_table_rows(
    segment_hists: Mapping[str, Histogram], transactions: int
) -> List[List[str]]:
    """Rows (category, per-txn mean, mean, p50, p95, p99 — all ns) for
    a rendered per-segment table, categories in phase order."""
    merged = rollup(segment_hists)
    order = {phase: i for i, phase in enumerate(PHASES)}
    count = transactions or 1
    rows: List[List[str]] = []
    for label in sorted(
        merged, key=lambda lb: (order.get(phase_of(lb) or "", 99), lb)
    ):
        hist = merged[label]
        p50, _ = hist.percentile_detail(0.50)
        p95, _ = hist.percentile_detail(0.95)
        p99, clamped = hist.percentile_detail(0.99)
        rows.append(
            [
                label,
                f"{to_ns(hist.stat.total / count):8.1f}",
                f"{to_ns(hist.stat.mean):8.1f}",
                f"{to_ns(p50):8.1f}",
                f"{to_ns(p95):8.1f}",
                f"{to_ns(p99):8.1f}" + ("*" if clamped else ""),
            ]
        )
    return rows
