"""Opt-in observability: latency attribution, tail metrics, tracing.

Configured through :class:`repro.config.ObsConfig` (the ``obs`` field of
:class:`~repro.config.SystemConfig`); everything defaults to off and the
simulator's hot paths then pay at most a ``None`` check per event.  See
``docs/observability.md`` for the full story.
"""

from repro.obs.attribution import (
    PHASE_TO_COMPONENT,
    PHASES,
    SEGMENT_BUCKET_PS,
    SEGMENT_NUM_BUCKETS,
    UNATTRIBUTED,
    category_of,
    make_segment_histogram,
    phase_of,
    rollup,
    segment_table_rows,
    sum_by_label,
    three_way_ns,
)
from repro.obs.tracing import TraceRecorder

__all__ = [
    "PHASES",
    "PHASE_TO_COMPONENT",
    "SEGMENT_BUCKET_PS",
    "SEGMENT_NUM_BUCKETS",
    "UNATTRIBUTED",
    "TraceRecorder",
    "category_of",
    "make_segment_histogram",
    "phase_of",
    "rollup",
    "segment_table_rows",
    "sum_by_label",
    "three_way_ns",
]
