"""Ring-buffered event tracing for one simulation run.

A :class:`TraceRecorder` is attached by :class:`repro.system.
MemoryNetworkSystem` when ``config.obs.trace`` is set.  Components emit
compact event tuples into a bounded ring (old events are evicted, the
run never grows unbounded) while a handful of whole-run aggregates —
per-link busy time and bits, per-queue peak depth — are accumulated
outside the ring so the dump's utilization summary covers the entire
run even when the ring wrapped.

Two dump formats:

* :meth:`TraceRecorder.write_jsonl` — one JSON object per line, ordered
  by timestamp, with a trailing ``{"kind": "summary", ...}`` record
  carrying per-link utilization and queue-depth statistics.
* :meth:`TraceRecorder.write_chrome` — the Chrome ``trace_event`` JSON
  array format (load in ``chrome://tracing`` or Perfetto): link
  traversals and array accesses become duration ("X") events on one
  pseudo-thread per component, queue depths become counter ("C") tracks.

Timestamps are simulation picoseconds; Chrome expects microseconds, so
the exporter divides by 1e6.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

# Event kinds (index 1 of every ring tuple).
LINK = "link"
QUEUE = "queue"
GRANT = "grant"
MEM = "mem"
ENGINE = "engine"
RETRY = "retry"
FAULT = "fault"


class TraceRecorder:
    """Bounded event recorder plus whole-run link/queue aggregates."""

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be at least 1")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.emitted = 0  # total events seen; emitted - len(ring) = evicted
        # Whole-run aggregates (never evicted).
        self.link_busy_ps: Dict[str, int] = {}
        self.link_bits: Dict[str, int] = {}
        self.link_packets: Dict[str, int] = {}
        self.queue_peak: Dict[str, int] = {}
        # RAS aggregates (repro.ras): per-link CRC replay counts and the
        # permanent failures the run suffered, never evicted.
        self.link_replays: Dict[str, int] = {}
        self.failures: List[Tuple[int, int, int]] = []  # (ts, a, b)
        self.last_ts = 0

    # -- emission hooks (called from component hot paths when tracing) ----
    def _emit(self, event: tuple) -> None:
        self._ring.append(event)
        self.emitted += 1
        ts = event[0]
        if ts > self.last_ts:
            self.last_ts = ts

    def link_send(
        self, name: str, now_ps: int, ser_ps: int, arrival_ps: int, packet
    ) -> None:
        """A packet started serializing onto a link."""
        busy = self.link_busy_ps
        busy[name] = busy.get(name, 0) + ser_ps
        bits = self.link_bits
        bits[name] = bits.get(name, 0) + packet.size_bits
        pkts = self.link_packets
        pkts[name] = pkts.get(name, 0) + 1
        self._emit(
            (now_ps, LINK, name, ser_ps, arrival_ps, packet.pid,
             packet.kind.name, packet.size_bits)
        )

    def queue_depth(self, name: str, now_ps: Optional[int], depth: int) -> None:
        """An input queue's occupancy changed (push or pop)."""
        peak = self.queue_peak
        if depth > peak.get(name, 0):
            peak[name] = depth
        self._emit((now_ps or 0, QUEUE, name, depth))

    def router_grant(
        self, name: str, now_ps: int, output_key: int, packet, contenders: int
    ) -> None:
        """A router arbiter granted an output to an input head."""
        self._emit(
            (now_ps, GRANT, name, output_key, packet.pid, packet.kind.name,
             contenders)
        )

    def mem_access(
        self, name: str, now_ps: int, ready_ps: int, row_hit: bool,
        is_write: bool,
    ) -> None:
        """A controller issued a bank access."""
        self._emit((now_ps, MEM, name, ready_ps, row_hit, is_write))

    def engine_event(self, now_ps: int, callback_name: str) -> None:
        """One engine event dispatch (only with trace_engine_events)."""
        self._emit((now_ps, ENGINE, callback_name))

    def link_retry(
        self, name: str, now_ps: int, replays: int, retry_ps: int
    ) -> None:
        """CRC-failed traversals replayed from a link's retry buffer."""
        tally = self.link_replays
        tally[name] = tally.get(name, 0) + replays
        self._emit((now_ps, RETRY, name, replays, retry_ps))

    def ras_failure(self, now_ps: int, a: int, b: int) -> None:
        """A scheduled permanent failure killed edge (a, b)."""
        self.failures.append((now_ps, a, b))
        self._emit((now_ps, FAULT, a, b))

    # -- views ------------------------------------------------------------
    @property
    def dropped(self) -> int:
        return self.emitted - len(self._ring)

    def events(self) -> List[tuple]:
        return list(self._ring)

    def link_utilization(self, runtime_ps: Optional[int] = None) -> Dict[str, float]:
        """Fraction of the run each link spent serializing packets."""
        span = runtime_ps if runtime_ps else self.last_ts
        if not span:
            return {name: 0.0 for name in self.link_busy_ps}
        return {
            name: busy / span for name, busy in sorted(self.link_busy_ps.items())
        }

    def queue_depth_series(self) -> Dict[str, List[Tuple[int, int]]]:
        """Per-queue (timestamp, depth) samples still present in the ring."""
        series: Dict[str, List[Tuple[int, int]]] = {}
        for event in self._ring:
            if event[1] == QUEUE:
                series.setdefault(event[2], []).append((event[0], event[3]))
        return series

    def summary(self, runtime_ps: Optional[int] = None) -> Dict[str, object]:
        return {
            "events_emitted": self.emitted,
            "events_retained": len(self._ring),
            "events_dropped": self.dropped,
            "ring_capacity": self.capacity,
            "link_utilization": self.link_utilization(runtime_ps),
            "link_bits": dict(sorted(self.link_bits.items())),
            "link_packets": dict(sorted(self.link_packets.items())),
            "queue_peak_depth": dict(sorted(self.queue_peak.items())),
            "link_replays": dict(sorted(self.link_replays.items())),
            "link_failures": [list(entry) for entry in self.failures],
        }

    # -- dumps -------------------------------------------------------------
    def _event_to_record(self, event: tuple) -> Dict[str, object]:
        ts, kind = event[0], event[1]
        record: Dict[str, object] = {"ts": ts, "kind": kind}
        if kind == LINK:
            record.update(
                link=event[2], ser_ps=event[3], arrival_ps=event[4],
                pid=event[5], packet=event[6], bits=event[7],
            )
        elif kind == QUEUE:
            record.update(queue=event[2], depth=event[3])
        elif kind == GRANT:
            record.update(
                router=event[2], output=event[3], pid=event[4],
                packet=event[5], contenders=event[6],
            )
        elif kind == MEM:
            record.update(
                controller=event[2], ready_ps=event[3], row_hit=event[4],
                is_write=event[5],
            )
        elif kind == ENGINE:
            record.update(callback=event[2])
        elif kind == RETRY:
            record.update(link=event[2], replays=event[3], retry_ps=event[4])
        elif kind == FAULT:
            record.update(a=event[2], b=event[3])
        return record

    def write_jsonl(
        self, path: Union[str, Path], runtime_ps: Optional[int] = None
    ) -> None:
        """One JSON object per event, plus a trailing summary record."""
        lines = [
            json.dumps(self._event_to_record(event), separators=(",", ":"))
            for event in self._ring
        ]
        summary = {"kind": "summary"}
        summary.update(self.summary(runtime_ps))
        lines.append(json.dumps(summary, separators=(",", ":")))
        Path(path).write_text("\n".join(lines) + "\n")

    def write_chrome(
        self,
        path: Union[str, Path],
        runtime_ps: Optional[int] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        """Chrome trace_event format (chrome://tracing / Perfetto)."""
        events: List[Dict[str, object]] = []
        tids: Dict[str, int] = {}

        def tid(name: str) -> int:
            number = tids.get(name)
            if number is None:
                number = len(tids) + 1
                tids[name] = number
                events.append(
                    {
                        "ph": "M", "name": "thread_name", "pid": 0,
                        "tid": number, "args": {"name": name},
                    }
                )
            return number

        for event in self._ring:
            ts_us = event[0] / 1e6
            kind = event[1]
            if kind == LINK:
                events.append(
                    {
                        "ph": "X", "cat": "link",
                        "name": f"{event[6]} #{event[5]}",
                        "pid": 0, "tid": tid(f"link {event[2]}"),
                        "ts": ts_us, "dur": event[3] / 1e6,
                        "args": {"bits": event[7], "arrival_ps": event[4]},
                    }
                )
            elif kind == QUEUE:
                events.append(
                    {
                        "ph": "C", "name": f"queue {event[2]}", "pid": 0,
                        "ts": ts_us, "args": {"depth": event[3]},
                    }
                )
            elif kind == GRANT:
                events.append(
                    {
                        "ph": "i", "s": "t", "cat": "grant",
                        "name": f"grant {event[5]} #{event[4]} -> {event[3]}",
                        "pid": 0, "tid": tid(f"router {event[2]}"),
                        "ts": ts_us,
                        "args": {"contenders": event[6]},
                    }
                )
            elif kind == MEM:
                events.append(
                    {
                        "ph": "X", "cat": "mem",
                        "name": (
                            f"{'write' if event[5] else 'read'}"
                            f"{' hit' if event[4] else ' miss'}"
                        ),
                        "pid": 0, "tid": tid(f"ctrl {event[2]}"),
                        "ts": ts_us, "dur": (event[3] - event[0]) / 1e6,
                    }
                )
            elif kind == ENGINE:
                events.append(
                    {
                        "ph": "i", "s": "g", "cat": "engine",
                        "name": event[2], "pid": 0, "tid": tid("engine"),
                        "ts": ts_us,
                    }
                )
            elif kind == RETRY:
                events.append(
                    {
                        "ph": "X", "cat": "retry",
                        "name": f"retry x{event[3]}",
                        "pid": 0, "tid": tid(f"link {event[2]}"),
                        "ts": ts_us, "dur": event[4] / 1e6,
                        "args": {"replays": event[3]},
                    }
                )
            elif kind == FAULT:
                events.append(
                    {
                        "ph": "i", "s": "g", "cat": "fault",
                        "name": f"link {event[2]}<->{event[3]} failed",
                        "pid": 0, "tid": tid("ras"),
                        "ts": ts_us,
                    }
                )
        payload: Dict[str, object] = {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": dict(metadata or {}, **self.summary(runtime_ps)),
        }
        Path(path).write_text(json.dumps(payload, separators=(",", ":")))
