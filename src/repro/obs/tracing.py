"""Ring-buffered event tracing for one simulation run.

A :class:`TraceRecorder` is attached by :class:`repro.system.
MemoryNetworkSystem` when ``config.obs.trace`` is set.  Components emit
compact event tuples into a bounded ring (old events are evicted, the
run never grows unbounded) while a handful of whole-run aggregates —
per-link busy time and bits, per-queue peak depth — are accumulated
outside the ring so the dump's utilization summary covers the entire
run even when the ring wrapped.

The ring is a preallocated slot array, and the tuples filed into it are
integer-coded: event kinds are small ints (:data:`LINK` …) and packet
kinds are stored as the raw :class:`~repro.net.packet.PacketKind`
member, never as strings.  The emission hot path therefore does no
string formatting or enum ``.name`` lookups; :meth:`TraceRecorder.
events` and the dump writers decode codes back to the public string
taxonomy (``"link"``, ``"queue"``, …) at export time, so external
consumers see the same records as before.

Two dump formats:

* :meth:`TraceRecorder.write_jsonl` — one JSON object per line, ordered
  by timestamp, with a trailing ``{"kind": "summary", ...}`` record
  carrying per-link utilization and queue-depth statistics.
* :meth:`TraceRecorder.write_chrome` — the Chrome ``trace_event`` JSON
  array format (load in ``chrome://tracing`` or Perfetto): link
  traversals and array accesses become duration ("X") events on one
  pseudo-thread per component, queue depths become counter ("C") tracks.

Timestamps are simulation picoseconds; Chrome expects microseconds, so
the exporter divides by 1e6.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

# Event-kind codes (index 1 of every ring tuple) and their public
# string taxonomy, decoded only at export.
LINK = 0
QUEUE = 1
GRANT = 2
MEM = 3
ENGINE = 4
RETRY = 5
FAULT = 6
HOST_TIMEOUT = 7
HOST_RETRY = 8
HOST_SHED = 9
KIND_LABELS = (
    "link", "queue", "grant", "mem", "engine", "retry", "fault",
    "host_timeout", "host_retry", "host_shed",
)


def _decode(event: tuple) -> tuple:
    """Ring tuple -> the public string-taxonomy tuple."""
    code = event[1]
    if code == LINK:
        # stored: (ts, LINK, name, ser, arrival, pid, kind, bits)
        return (
            event[0], "link", event[2], event[3], event[4], event[5],
            event[6].name, event[7],
        )
    if code == GRANT:
        # stored: (ts, GRANT, name, output_key, pid, kind, contenders)
        return (
            event[0], "grant", event[2], event[3], event[4],
            event[5].name, event[6],
        )
    return (event[0], KIND_LABELS[code]) + event[2:]


class TraceRecorder:
    """Bounded event recorder plus whole-run link/queue aggregates."""

    def __init__(
        self, capacity: int = 1 << 16, sample: int = 1, sample_phase: int = 0
    ) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be at least 1")
        if sample < 1:
            raise ValueError("trace sample rate must be at least 1")
        self.capacity = capacity
        # Deterministic 1-in-N ring sampling: every Nth emission (by
        # global emission index, phase-shifted by ``sample_phase``,
        # which the system derives from the config seed) is stored;
        # the rest only bump the exact counters.  The whole-run
        # aggregates below are updated by the emission hooks *before*
        # the sampling decision, so they always cover every event.
        self.sample = sample
        self.sample_phase = sample_phase % sample
        self.sampled_out = 0
        self.stored = 0
        # Preallocated ring: a fixed slot array plus a write cursor.
        # Emission is one store + cursor bump, no allocator churn.
        self._ring: List[Optional[tuple]] = [None] * capacity
        self._pos = 0
        self.emitted = 0  # total events seen (sampled or not)
        # Whole-run aggregates (never evicted).
        self.link_busy_ps: Dict[str, int] = {}
        self.link_bits: Dict[str, int] = {}
        self.link_packets: Dict[str, int] = {}
        self.queue_peak: Dict[str, int] = {}
        # RAS aggregates (repro.ras): per-link CRC replay counts and the
        # permanent failures the run suffered, never evicted.
        self.link_replays: Dict[str, int] = {}
        self.failures: List[Tuple[int, int, int]] = []  # (ts, a, b)
        # Overload aggregates (host-edge deadlines/shedding), never
        # evicted even when the ring wraps.
        self.host_timeouts = 0
        self.host_retries = 0
        self.host_sheds = 0
        self.last_ts = 0

    # -- emission hooks (called from component hot paths when tracing) ----
    def _emit(self, event: tuple) -> None:
        index = self.emitted
        self.emitted = index + 1
        ts = event[0]
        if ts > self.last_ts:
            self.last_ts = ts
        if self.sample > 1 and index % self.sample != self.sample_phase:
            self.sampled_out += 1
            return
        self.stored += 1
        pos = self._pos
        self._ring[pos] = event
        pos += 1
        self._pos = 0 if pos == self.capacity else pos

    def link_send(
        self, name: str, now_ps: int, ser_ps: int, arrival_ps: int, packet
    ) -> None:
        """A packet started serializing onto a link."""
        busy = self.link_busy_ps
        busy[name] = busy.get(name, 0) + ser_ps
        bits = self.link_bits
        bits[name] = bits.get(name, 0) + packet.size_bits
        pkts = self.link_packets
        pkts[name] = pkts.get(name, 0) + 1
        self._emit(
            (now_ps, LINK, name, ser_ps, arrival_ps, packet.pid,
             packet.kind, packet.size_bits)
        )

    def queue_depth(self, name: str, now_ps: Optional[int], depth: int) -> None:
        """An input queue's occupancy changed (push or pop)."""
        peak = self.queue_peak
        if depth > peak.get(name, 0):
            peak[name] = depth
        self._emit((now_ps or 0, QUEUE, name, depth))

    def router_grant(
        self, name: str, now_ps: int, output_key: int, packet, contenders: int
    ) -> None:
        """A router arbiter granted an output to an input head."""
        self._emit(
            (now_ps, GRANT, name, output_key, packet.pid, packet.kind,
             contenders)
        )

    def mem_access(
        self, name: str, now_ps: int, ready_ps: int, row_hit: bool,
        is_write: bool,
    ) -> None:
        """A controller issued a bank access."""
        self._emit((now_ps, MEM, name, ready_ps, row_hit, is_write))

    def engine_event(self, now_ps: int, callback_name: str) -> None:
        """One engine event dispatch (only with trace_engine_events)."""
        self._emit((now_ps, ENGINE, callback_name))

    def link_retry(
        self, name: str, now_ps: int, replays: int, retry_ps: int
    ) -> None:
        """CRC-failed traversals replayed from a link's retry buffer."""
        tally = self.link_replays
        tally[name] = tally.get(name, 0) + replays
        self._emit((now_ps, RETRY, name, replays, retry_ps))

    def ras_failure(self, now_ps: int, a: int, b: int) -> None:
        """A scheduled permanent failure killed edge (a, b)."""
        self.failures.append((now_ps, a, b))
        self._emit((now_ps, FAULT, a, b))

    def host_timeout(self, now_ps: int, tid: int, attempt: int) -> None:
        """A request's end-to-end deadline fired at the host edge."""
        self.host_timeouts += 1
        self._emit((now_ps, HOST_TIMEOUT, tid, attempt))

    def host_retry(self, now_ps: int, tid: int, attempt: int) -> None:
        """A timed-out request was re-queued after its backoff."""
        self.host_retries += 1
        self._emit((now_ps, HOST_RETRY, tid, attempt))

    def host_shed(self, now_ps: int, tid: int) -> None:
        """Admission control refused a request at the host edge."""
        self.host_sheds += 1
        self._emit((now_ps, HOST_SHED, tid))

    # -- views ------------------------------------------------------------
    @property
    def retained(self) -> int:
        return min(self.stored, self.capacity)

    @property
    def dropped(self) -> int:
        """Events seen but no longer in the ring (evicted or sampled out)."""
        return self.emitted - self.retained

    @property
    def evicted(self) -> int:
        """Stored events the ring wrapped over."""
        return self.stored - self.retained

    def _raw_events(self) -> List[tuple]:
        """Retained ring tuples, oldest first, still integer-coded."""
        if self.stored <= self.capacity:
            return self._ring[: self.stored]
        pos = self._pos
        return self._ring[pos:] + self._ring[:pos]

    def events(self) -> List[tuple]:
        """Retained events decoded to the public string taxonomy."""
        return [_decode(event) for event in self._raw_events()]

    def link_utilization(self, runtime_ps: Optional[int] = None) -> Dict[str, float]:
        """Fraction of the run each link spent serializing packets."""
        span = runtime_ps if runtime_ps else self.last_ts
        if not span:
            return {name: 0.0 for name in self.link_busy_ps}
        return {
            name: busy / span for name, busy in sorted(self.link_busy_ps.items())
        }

    def queue_depth_series(self) -> Dict[str, List[Tuple[int, int]]]:
        """Per-queue (timestamp, depth) samples still present in the ring."""
        series: Dict[str, List[Tuple[int, int]]] = {}
        for event in self._raw_events():
            if event[1] == QUEUE:
                series.setdefault(event[2], []).append((event[0], event[3]))
        return series

    def summary(self, runtime_ps: Optional[int] = None) -> Dict[str, object]:
        return {
            "events_emitted": self.emitted,
            "events_retained": self.retained,
            "events_dropped": self.dropped,
            "events_sampled_out": self.sampled_out,
            "trace_sample": self.sample,
            "ring_capacity": self.capacity,
            "link_utilization": self.link_utilization(runtime_ps),
            "link_bits": dict(sorted(self.link_bits.items())),
            "link_packets": dict(sorted(self.link_packets.items())),
            "queue_peak_depth": dict(sorted(self.queue_peak.items())),
            "link_replays": dict(sorted(self.link_replays.items())),
            "link_failures": [list(entry) for entry in self.failures],
            "host_timeouts": self.host_timeouts,
            "host_retries": self.host_retries,
            "host_sheds": self.host_sheds,
        }

    # -- dumps -------------------------------------------------------------
    def _event_to_record(self, event: tuple) -> Dict[str, object]:
        ts, kind = event[0], event[1]
        record: Dict[str, object] = {"ts": ts, "kind": KIND_LABELS[kind]}
        if kind == LINK:
            record.update(
                link=event[2], ser_ps=event[3], arrival_ps=event[4],
                pid=event[5], packet=event[6].name, bits=event[7],
            )
        elif kind == QUEUE:
            record.update(queue=event[2], depth=event[3])
        elif kind == GRANT:
            record.update(
                router=event[2], output=event[3], pid=event[4],
                packet=event[5].name, contenders=event[6],
            )
        elif kind == MEM:
            record.update(
                controller=event[2], ready_ps=event[3], row_hit=event[4],
                is_write=event[5],
            )
        elif kind == ENGINE:
            record.update(callback=event[2])
        elif kind == RETRY:
            record.update(link=event[2], replays=event[3], retry_ps=event[4])
        elif kind == FAULT:
            record.update(a=event[2], b=event[3])
        elif kind in (HOST_TIMEOUT, HOST_RETRY):
            record.update(tid=event[2], attempt=event[3])
        elif kind == HOST_SHED:
            record.update(tid=event[2])
        return record

    def write_jsonl(
        self, path: Union[str, Path], runtime_ps: Optional[int] = None
    ) -> None:
        """One JSON object per event, plus a trailing summary record."""
        lines = [
            json.dumps(self._event_to_record(event), separators=(",", ":"))
            for event in self._raw_events()
        ]
        summary = {"kind": "summary"}
        summary.update(self.summary(runtime_ps))
        lines.append(json.dumps(summary, separators=(",", ":")))
        Path(path).write_text("\n".join(lines) + "\n")

    def write_chrome(
        self,
        path: Union[str, Path],
        runtime_ps: Optional[int] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        """Chrome trace_event format (chrome://tracing / Perfetto)."""
        events: List[Dict[str, object]] = []
        tids: Dict[str, int] = {}

        def tid(name: str) -> int:
            number = tids.get(name)
            if number is None:
                number = len(tids) + 1
                tids[name] = number
                events.append(
                    {
                        "ph": "M", "name": "thread_name", "pid": 0,
                        "tid": number, "args": {"name": name},
                    }
                )
            return number

        for event in self._raw_events():
            ts_us = event[0] / 1e6
            kind = event[1]
            if kind == LINK:
                events.append(
                    {
                        "ph": "X", "cat": "link",
                        "name": f"{event[6].name} #{event[5]}",
                        "pid": 0, "tid": tid(f"link {event[2]}"),
                        "ts": ts_us, "dur": event[3] / 1e6,
                        "args": {"bits": event[7], "arrival_ps": event[4]},
                    }
                )
            elif kind == QUEUE:
                events.append(
                    {
                        "ph": "C", "name": f"queue {event[2]}", "pid": 0,
                        "ts": ts_us, "args": {"depth": event[3]},
                    }
                )
            elif kind == GRANT:
                events.append(
                    {
                        "ph": "i", "s": "t", "cat": "grant",
                        "name": f"grant {event[5].name} #{event[4]} -> {event[3]}",
                        "pid": 0, "tid": tid(f"router {event[2]}"),
                        "ts": ts_us,
                        "args": {"contenders": event[6]},
                    }
                )
            elif kind == MEM:
                events.append(
                    {
                        "ph": "X", "cat": "mem",
                        "name": (
                            f"{'write' if event[5] else 'read'}"
                            f"{' hit' if event[4] else ' miss'}"
                        ),
                        "pid": 0, "tid": tid(f"ctrl {event[2]}"),
                        "ts": ts_us, "dur": (event[3] - event[0]) / 1e6,
                    }
                )
            elif kind == ENGINE:
                events.append(
                    {
                        "ph": "i", "s": "g", "cat": "engine",
                        "name": event[2], "pid": 0, "tid": tid("engine"),
                        "ts": ts_us,
                    }
                )
            elif kind == RETRY:
                events.append(
                    {
                        "ph": "X", "cat": "retry",
                        "name": f"retry x{event[3]}",
                        "pid": 0, "tid": tid(f"link {event[2]}"),
                        "ts": ts_us, "dur": event[4] / 1e6,
                        "args": {"replays": event[3]},
                    }
                )
            elif kind == FAULT:
                events.append(
                    {
                        "ph": "i", "s": "g", "cat": "fault",
                        "name": f"link {event[2]}<->{event[3]} failed",
                        "pid": 0, "tid": tid("ras"),
                        "ts": ts_us,
                    }
                )
            elif kind in (HOST_TIMEOUT, HOST_RETRY, HOST_SHED):
                label = {
                    HOST_TIMEOUT: "timeout",
                    HOST_RETRY: "retry",
                    HOST_SHED: "shed",
                }[kind]
                name = f"{label} txn #{event[2]}"
                if kind != HOST_SHED:
                    name += f" attempt {event[3]}"
                events.append(
                    {
                        "ph": "i", "s": "t", "cat": "overload",
                        "name": name,
                        "pid": 0, "tid": tid("host overload"),
                        "ts": ts_us,
                    }
                )
        payload: Dict[str, object] = {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": dict(metadata or {}, **self.summary(runtime_ps)),
        }
        Path(path).write_text(json.dumps(payload, separators=(",", ":")))
