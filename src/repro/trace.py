"""Command-line tracing entry point: ``python -m repro.trace``.

Runs one simulation with the full observability stack on — per-hop
latency attribution plus event tracing — and writes the trace in two
formats next to a console summary:

* ``trace_<config>_<workload>.jsonl`` — one JSON object per event with
  a trailing summary record (link utilization, queue peaks).
* ``trace_<config>_<workload>.json`` — Chrome ``trace_event`` format;
  load it in ``chrome://tracing`` or https://ui.perfetto.dev.

Example::

    python -m repro.trace 100%-C BACKPROP --requests 500 --out traces/
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import render_table
from repro.config import parse_label
from repro.obs.attribution import segment_table_rows, three_way_ns
from repro.system import MemoryNetworkSystem
from repro.workloads import get_workload, workload_names


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Trace one simulation run (attribution + event trace).",
    )
    parser.add_argument(
        "config",
        help="configuration label, e.g. '100%%-C' or '50%%-T (NVM-L)'",
    )
    parser.add_argument(
        "workload",
        help=f"workload name, one of: {', '.join(workload_names())}",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=500,
        help="memory requests to simulate (default 500)",
    )
    parser.add_argument(
        "--out",
        default="traces",
        help="directory for trace files (default ./traces)",
    )
    parser.add_argument(
        "--ring",
        type=int,
        default=1 << 16,
        help="trace ring capacity in events; older events are evicted "
        "(default 65536)",
    )
    parser.add_argument(
        "--engine-events",
        action="store_true",
        help="also record every engine event dispatch (verbose)",
    )
    args = parser.parse_args(argv)

    config = parse_label(args.config).with_obs(
        attribution=True,
        trace=True,
        trace_ring=args.ring,
        trace_engine_events=args.engine_events,
    )
    workload = get_workload(args.workload)
    system = MemoryNetworkSystem(config, workload, requests=args.requests)
    result = system.run()
    paths = system.dump_trace(args.out)

    breakdown = result.collector.all
    split = three_way_ns(result.collector.segments, result.transactions)
    print(
        f"{result.config_label} / {result.workload}: "
        f"{result.transactions} transactions, "
        f"runtime {result.runtime_ns / 1000.0:.2f} us"
    )
    print(
        f"latency mean {breakdown.total_ns:.1f} ns "
        f"(to={split['to_memory']:.1f} in={split['in_memory']:.1f} "
        f"from={split['from_memory']:.1f}), "
        f"p95 {result.p95_latency_ns:.1f} ns, "
        f"p99 {result.p99_latency_ns:.1f} ns"
    )
    print()
    print(
        render_table(
            ["segment", "ns/txn", "mean", "p50", "p95", "p99"],
            segment_table_rows(result.collector.segments, result.transactions),
            title="Per-hop latency attribution (* = percentile clamped "
            "to observed max)",
        )
    )

    summary = system.tracer.summary(result.runtime_ps)
    utilization = summary["link_utilization"]
    peaks = summary["queue_peak_depth"]
    rows = [
        [name, f"{utilization[name] * 100.0:6.1f}%", summary["link_packets"][name]]
        for name in utilization
    ]
    print()
    print(render_table(["link", "utilization", "packets"], rows))
    if peaks:
        busiest = sorted(peaks.items(), key=lambda kv: -kv[1])[:8]
        print()
        print(
            render_table(
                ["queue", "peak depth"],
                [[name, depth] for name, depth in busiest],
                title="Deepest input queues",
            )
        )
    print()
    print(
        f"trace: {summary['events_retained']} events retained "
        f"({summary['events_dropped']} evicted from ring of "
        f"{summary['ring_capacity']})"
    )
    for path in paths:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
