"""Run orchestration: parallel experiment execution + result memoization.

The paper's evaluation is a pile of design-space sweeps whose points are
independent simulations, many of them shared between figures (every
speedup grid normalizes to the ``100%-C`` round-robin baseline).  This
package turns that structure into wall-clock wins:

* :class:`SimJob` — one simulation as a frozen value with a stable
  content digest,
* :class:`ResultCache` — digest-addressed memoization, in memory and
  optionally on disk,
* :class:`ParallelRunner` — deduplicating batch executor over a process
  pool (``jobs=1`` falls back to a serial in-process loop).

See ``docs/performance.md`` for usage and cache layout.
"""

from repro.runner.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.runner.job import SimJob, canonical_tree, digest_tree
from repro.runner.pool import (
    JOBS_ENV,
    JobFailure,
    ParallelRunner,
    configure_runner,
    default_jobs,
    execute_job,
    get_runner,
    reset_runner,
    using_runner,
)

__all__ = [
    "CACHE_DIR_ENV",
    "JOBS_ENV",
    "JobFailure",
    "ParallelRunner",
    "ResultCache",
    "SimJob",
    "canonical_tree",
    "configure_runner",
    "default_cache_dir",
    "default_jobs",
    "digest_tree",
    "execute_job",
    "get_runner",
    "reset_runner",
    "using_runner",
]
