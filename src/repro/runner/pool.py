"""Batch execution of simulation jobs with optional process parallelism.

:class:`ParallelRunner` takes a batch of :class:`SimJob`\\ s and

1. deduplicates identical jobs (same content digest),
2. satisfies what it can from its :class:`ResultCache`,
3. executes the remainder — serially when ``jobs <= 1`` (deterministic,
   spawn-safe, no pool overhead) or over a
   :class:`concurrent.futures.ProcessPoolExecutor` otherwise,

and returns results in input order.  Per-job seeds derive from the
config's root seed (see :func:`repro.sim.derive_seed`), so serial and
parallel execution produce bit-identical results; the determinism tests
assert this via :func:`repro.serialization.result_digest`.

Robustness (the RAS PR's runner hardening):

* every completed job is written to the cache *immediately*, so a sweep
  killed half-way resumes from the cached partials — only uncached jobs
  re-run;
* a crashed worker (``BrokenProcessPool``) respawns the pool and retries
  the in-flight jobs once (with backoff) instead of aborting the batch;
* ``job_timeout_s`` arms a watchdog: a job that exceeds it has its pool
  torn down (hung workers are terminated), innocent in-flight jobs are
  requeued, and the overdue job becomes a structured failure;
* ``run(batch, on_error="collect")`` converts failures into
  :class:`JobFailure` rows aligned with the input order rather than
  losing the rest of the batch; the default ``on_error="raise"`` still
  raises, as a :class:`repro.errors.RunnerError` carrying the failing
  job's digest and config summary.

``run_fold`` is the streaming sibling of ``run`` for fleet-scale
batches (:mod:`repro.fleet`): results are handed to a commutative fold
callback the moment they complete — cache hits included — and then
evicted from the cache's memory layer (when a disk layer holds them),
so a thousand-shard batch never materializes a thousand results in one
process.

A module-level *ambient* runner lets high-level entry points
(:func:`repro.system.simulate`, :class:`repro.sweep.Sweep`,
:class:`repro.analysis.speedup.SpeedupGrid`) share one cache and one
worker-count policy without threading a runner argument everywhere.
The experiments CLI configures it from ``--jobs`` / ``--cache-dir`` /
``--no-cache``; ``REPRO_JOBS`` is the environment override.
"""

from __future__ import annotations

import contextlib
import os
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import RunnerError
from repro.results import SimResult
from repro.runner.cache import ResultCache
from repro.runner.job import SimJob

#: Environment override for the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Extra attempts granted to jobs whose worker pool broke under them.
POOL_RETRIES = 1

#: Backoff before respawning a broken pool (seconds, scaled by attempt).
POOL_RESPAWN_BACKOFF_S = 0.25

#: Chunk-size ceiling for streaming folds: :meth:`ParallelRunner.run_fold`
#: holds at most one in-flight chunk of results per worker, so capping
#: the chunk keeps peak resident memory independent of batch size.
FOLD_CHUNK_CAP = 16

#: Placeholder recorded for a result that was folded and released
#: instead of retained (streaming mode).
_FOLDED = object()

_warned_bad_jobs_env = False


def _warn_jobs_env_once(env: str, problem: str) -> None:
    global _warned_bad_jobs_env
    if not _warned_bad_jobs_env:
        _warned_bad_jobs_env = True
        warnings.warn(
            f"ignoring {problem} {JOBS_ENV}={env!r} "
            "(expected a positive integer); running serially",
            RuntimeWarning,
            stacklevel=3,
        )


def default_jobs() -> int:
    """Worker count when none is given: ``$REPRO_JOBS``, else 1 (serial)."""
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            jobs = int(env)
        except ValueError:
            _warn_jobs_env_once(env, "unparseable")
        else:
            if jobs >= 1:
                return jobs
            # REPRO_JOBS=0 or negative used to clamp to serial silently;
            # diagnose it the same way an unparseable value is.
            _warn_jobs_env_once(env, "non-positive")
    return 1


def execute_job(job: SimJob) -> SimResult:
    """Run one job to completion (top-level so it pickles to workers)."""
    from repro.system import MemoryNetworkSystem

    return MemoryNetworkSystem(
        job.config, job.workload, requests=job.requests
    ).run()


def _worker_init() -> None:
    """Pool initializer: pay the heavy imports once per worker process
    instead of on the first job each worker receives."""
    import repro.system  # noqa: F401


def execute_chunk(jobs: Sequence[SimJob]) -> List[tuple]:
    """Run a slice of a batch in one worker round-trip.

    One submit/result cycle per *chunk* instead of per job amortizes the
    future bookkeeping and pickling that dominated small parallel sweeps.
    Failures are captured per job — ``('ok', result)`` or
    ``('error', "Type: message")`` — so one bad job cannot take down its
    chunk-mates.
    """
    out: List[tuple] = []
    for job in jobs:
        try:
            out.append(("ok", execute_job(job)))
        except Exception as exc:  # noqa: BLE001 - reported per job
            out.append(("error", f"{type(exc).__name__}: {exc}"))
    return out


@dataclass
class JobFailure:
    """Structured record of a job that could not produce a result.

    ``kind`` is ``"exception"`` (the simulation raised), ``"timeout"``
    (exceeded ``job_timeout_s``), or ``"pool"`` (its worker pool broke
    repeatedly).  Returned in place of a :class:`SimResult` by
    ``run(..., on_error="collect")``.
    """

    digest: str
    label: str
    error: str
    kind: str = "exception"
    attempts: int = 1
    #: Jobs of the same batch that completed and were checkpointed to
    #: the cache — what a rerun of the identical batch will *not* repeat.
    checkpointed: int = 0

    def to_error(self) -> RunnerError:
        return RunnerError(
            f"job {self.label} (digest {self.digest[:12]}) failed "
            f"[{self.kind}, {self.attempts} attempt(s)]: {self.error}; "
            f"{self.checkpointed} job(s) from the batch are checkpointed "
            "(a rerun resumes from the cache)"
        )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a pool, reclaiming hung workers.

    ``shutdown(wait=False)`` alone would leave a stuck worker joined at
    interpreter exit; terminating the processes is the only way to take
    back a job that will never finish.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    try:  # private, but there is no public kill switch
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()
    except Exception:  # pragma: no cover - best-effort cleanup
        pass


class ParallelRunner:
    """Cache-aware, deduplicating batch executor for simulation jobs."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        job_timeout_s: Optional[float] = None,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        # A fresh memory-only cache when none is shared in; callers that
        # want cross-runner reuse pass the ambient runner's cache.
        self.cache = ResultCache() if cache is None else cache
        # Watchdog ceiling per job; only enforceable with worker
        # processes (the serial path cannot preempt itself).
        self.job_timeout_s = job_timeout_s
        self.simulations_run = 0

    # ------------------------------------------------------------------
    def run_one(self, job: SimJob) -> SimResult:
        return self.run([job])[0]

    def run(
        self,
        batch: Sequence[SimJob],
        on_error: str = "raise",
    ) -> List[Union[SimResult, JobFailure]]:
        """Execute a batch; returns results aligned with the input order.

        Completed jobs hit the cache the moment they finish — an
        interrupted batch leaves its partial results behind as a
        checkpoint.  With ``on_error="collect"`` failed jobs yield
        :class:`JobFailure` rows; with the default ``"raise"`` the whole
        batch still executes (checkpointing the successes), then the
        first failure in input order is raised as a
        :class:`~repro.errors.RunnerError`.
        """
        if on_error not in ("raise", "collect"):
            raise ValueError(f"on_error must be 'raise' or 'collect', not {on_error!r}")
        digests = [job.digest() for job in batch]
        results: Dict[str, Union[SimResult, JobFailure, None]] = {}
        pending: List[SimJob] = []
        for job, digest in zip(batch, digests):
            if digest in results:
                continue  # duplicate within the batch
            cached = self.cache.get(digest)
            if cached is not None:
                results[digest] = cached
            else:
                results[digest] = None  # reserve slot, keep first occurrence
                pending.append(job)
        if pending:
            self._execute(pending, results)
            self.simulations_run += sum(
                1 for job in pending if isinstance(results[job.digest()], SimResult)
            )
        # Stamp every failure with the batch's checkpoint count so the
        # error (or collected row) says how much a rerun will skip.
        checkpointed = sum(
            1 for value in results.values() if isinstance(value, SimResult)
        )
        for value in results.values():
            if isinstance(value, JobFailure):
                value.checkpointed = checkpointed
        out: List[Union[SimResult, JobFailure]] = []
        for digest in digests:
            value = results[digest]
            if isinstance(value, JobFailure) and on_error == "raise":
                raise value.to_error()
            out.append(value)
        return out

    def run_fold(
        self,
        batch: Sequence[SimJob],
        fold,
        on_error: str = "raise",
    ) -> List[Optional[JobFailure]]:
        """Execute a batch, streaming each result into ``fold`` instead
        of returning it.

        ``fold(index, job, result)`` is invoked once per *input
        position* (duplicate digests fold the shared result once per
        occurrence) in completion order, which is not deterministic
        under parallel execution — folds must therefore be commutative
        (see :class:`repro.sim.stats.TailAccumulator`).  After a digest's
        positions are folded, its entry is evicted from the cache's
        memory layer (kept on disk when a disk layer is configured), so
        peak resident memory is bounded by the in-flight worker chunks,
        not by the batch size.  With a memory-only cache the entries are
        retained — evicting them would silently forfeit warm replay.

        Caching, dedup, checkpointing, the watchdog, and the
        ``on_error`` contract all match :meth:`run`; the return value is
        aligned with the input, ``None`` for folded jobs and
        :class:`JobFailure` rows under ``on_error="collect"``.
        """
        if on_error not in ("raise", "collect"):
            raise ValueError(f"on_error must be 'raise' or 'collect', not {on_error!r}")
        digests = [job.digest() for job in batch]
        positions: Dict[str, List[int]] = {}
        for index, digest in enumerate(digests):
            positions.setdefault(digest, []).append(index)

        def deliver(digest: str, result: SimResult) -> None:
            for index in positions[digest]:
                fold(index, batch[index], result)
            if self.cache.persistent:
                self.cache.drop_memory(digest)

        results: Dict[str, Union[SimResult, JobFailure, None]] = {}
        pending: List[SimJob] = []
        for job, digest in zip(batch, digests):
            if digest in results:
                continue  # duplicate within the batch
            cached = self.cache.get(digest)
            if cached is not None:
                results[digest] = _FOLDED  # type: ignore[assignment]
                deliver(digest, cached)
            else:
                results[digest] = None  # reserve slot, keep first occurrence
                pending.append(job)
        if pending:
            self._execute(pending, results, sink=deliver)
            self.simulations_run += sum(
                1 for job in pending if results[job.digest()] is _FOLDED
            )
        checkpointed = sum(1 for value in results.values() if value is _FOLDED)
        for value in results.values():
            if isinstance(value, JobFailure):
                value.checkpointed = checkpointed
        out: List[Optional[JobFailure]] = []
        for digest in digests:
            value = results[digest]
            if isinstance(value, JobFailure):
                if on_error == "raise":
                    raise value.to_error()
                out.append(value)
            else:
                out.append(None)
        return out

    # ------------------------------------------------------------------
    def _complete(
        self,
        results: Dict[str, Union[SimResult, JobFailure, None]],
        job: SimJob,
        result: SimResult,
        sink=None,
    ) -> None:
        """Record a success and checkpoint it to the cache immediately.

        With a ``sink`` (streaming fold), the result is handed off and
        only a placeholder is retained, so the batch's results never
        accumulate in this process.
        """
        digest = job.digest()
        self.cache.put(digest, result)
        if sink is None:
            results[digest] = result
        else:
            results[digest] = _FOLDED  # type: ignore[assignment]
            sink(digest, result)

    @staticmethod
    def _fail(
        results: Dict[str, Union[SimResult, JobFailure, None]],
        job: SimJob,
        error: str,
        kind: str,
        attempts: int,
    ) -> None:
        results[job.digest()] = JobFailure(
            digest=job.digest(),
            label=job.label(),
            error=error,
            kind=kind,
            attempts=attempts,
        )

    def _execute(
        self,
        pending: List[SimJob],
        results: Dict[str, Union[SimResult, JobFailure, None]],
        sink=None,
    ) -> None:
        workers = min(self.jobs, len(pending))
        if workers <= 1:
            for job in pending:
                try:
                    result = execute_job(job)
                except Exception as exc:  # noqa: BLE001 - reported per job
                    self._fail(results, job, f"{type(exc).__name__}: {exc}",
                               "exception", 1)
                else:
                    self._complete(results, job, result, sink)
            return
        self._execute_parallel(pending, results, workers, sink)

    def _chunk_size(
        self, pending_count: int, workers: int, streaming: bool = False
    ) -> int:
        """Jobs per worker round-trip.

        Four chunks per worker balances pickling amortization against
        tail imbalance (a worker stuck with the one slow chunk).  The
        watchdog needs per-job starts, so an armed ``job_timeout_s``
        forces single-job chunks.  Streaming folds additionally cap the
        chunk at :data:`FOLD_CHUNK_CAP` so the per-chunk result list —
        the only place a fold holds multiple results at once — stays
        bounded regardless of batch size.
        """
        if self.job_timeout_s is not None:
            return 1
        size = max(1, -(-pending_count // (workers * 4)))
        if streaming:
            size = min(size, FOLD_CHUNK_CAP)
        return size

    def _requeue_broken(
        self,
        chunk: List[SimJob],
        queue: deque,
        attempts: Dict[str, int],
        results: Dict[str, Union[SimResult, JobFailure, None]],
    ) -> None:
        """Retry policy for a chunk whose pool broke underneath it.

        Any member may have been the killer, so each is retried alone —
        a poison job then fails only itself on the second break.
        """
        for job in chunk:
            digest = job.digest()
            if attempts[digest] <= POOL_RETRIES:
                queue.append([job])
            else:
                self._fail(
                    results, job,
                    "worker pool broke (worker died mid-job)",
                    "pool", attempts[digest],
                )

    def _execute_parallel(
        self,
        pending: List[SimJob],
        results: Dict[str, Union[SimResult, JobFailure, None]],
        workers: int,
        sink=None,
    ) -> None:
        attempts: Dict[str, int] = {job.digest(): 0 for job in pending}
        size = self._chunk_size(len(pending), workers, streaming=sink is not None)
        queue: deque = deque(
            pending[i:i + size] for i in range(0, len(pending), size)
        )
        pool = ProcessPoolExecutor(max_workers=workers, initializer=_worker_init)
        running: Dict[object, tuple] = {}  # future -> (chunk, start_monotonic)
        try:
            while queue or running:
                while queue and len(running) < workers:
                    chunk = queue.popleft()
                    for job in chunk:
                        attempts[job.digest()] += 1
                    future = pool.submit(execute_chunk, chunk)
                    running[future] = (chunk, time.monotonic())
                timeout = None
                if self.job_timeout_s is not None:
                    deadline = min(
                        start + self.job_timeout_s for _, start in running.values()
                    )
                    timeout = max(deadline - time.monotonic(), 0.0)
                done, _ = wait(
                    set(running), timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    pool = self._reap_overdue(pool, workers, running, queue,
                                              attempts, results)
                    continue
                broken = False
                for future in done:
                    chunk, _start = running.pop(future)
                    try:
                        statuses = future.result()
                    except BrokenProcessPool:
                        broken = True
                        self._requeue_broken(chunk, queue, attempts, results)
                    except Exception as exc:  # noqa: BLE001 - chunk transport
                        # execute_chunk catches per-job errors, so this is
                        # the round-trip itself (e.g. unpicklable result).
                        for job in chunk:
                            self._fail(results, job,
                                       f"{type(exc).__name__}: {exc}",
                                       "exception", attempts[job.digest()])
                    else:
                        for job, (status, payload) in zip(chunk, statuses):
                            if status == "ok":
                                self._complete(results, job, payload, sink)
                            else:
                                self._fail(results, job, payload,
                                           "exception", attempts[job.digest()])
                if broken:
                    # Every in-flight future is doomed with the pool;
                    # drain them under the same retry policy, then respawn.
                    for future, (chunk, _start) in list(running.items()):
                        self._requeue_broken(chunk, queue, attempts, results)
                    running.clear()
                    _kill_pool(pool)
                    time.sleep(POOL_RESPAWN_BACKOFF_S)
                    pool = ProcessPoolExecutor(
                        max_workers=workers, initializer=_worker_init
                    )
        finally:
            _kill_pool(pool)

    def _reap_overdue(
        self,
        pool: ProcessPoolExecutor,
        workers: int,
        running: Dict[object, tuple],
        queue: deque,
        attempts: Dict[str, int],
        results: Dict[str, Union[SimResult, JobFailure, None]],
    ) -> ProcessPoolExecutor:
        """The watchdog fired: fail overdue jobs, requeue the innocent.

        A hung worker cannot be preempted, so the whole pool is torn
        down (terminating its processes) and respawned.  Jobs that were
        merely sharing the pool do not lose an attempt.  An armed
        watchdog forces single-job chunks (:meth:`_chunk_size`), so each
        in-flight chunk is exactly one job here.
        """
        now = time.monotonic()
        for future, (chunk, start) in list(running.items()):
            if future.done():
                continue  # completed while we were deciding; next wait() reaps it
            if now - start >= self.job_timeout_s:
                # Deterministic simulations do not hang transiently:
                # retrying would hang again, so time-outs fail outright.
                for job in chunk:
                    self._fail(
                        results, job,
                        f"exceeded job timeout of {self.job_timeout_s:g}s",
                        "timeout", attempts[job.digest()],
                    )
                del running[future]
            else:
                for job in chunk:
                    attempts[job.digest()] -= 1  # innocent victim of teardown
                queue.append(chunk)
                del running[future]
        _kill_pool(pool)
        return ProcessPoolExecutor(max_workers=workers)


# ---------------------------------------------------------------------------
# Ambient runner
# ---------------------------------------------------------------------------
_ambient: Optional[ParallelRunner] = None


def get_runner() -> ParallelRunner:
    """The process-wide runner, created lazily (serial, memory cache)."""
    global _ambient
    if _ambient is None:
        _ambient = ParallelRunner()
    return _ambient


def configure_runner(
    jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    persistent: bool = False,
    job_timeout_s: Optional[float] = None,
) -> ParallelRunner:
    """Replace the ambient runner (used by CLIs and benchmarks).

    ``persistent=True`` turns on the disk layer at ``cache_dir`` (or the
    default location, see :func:`repro.runner.cache.default_cache_dir`).
    The in-memory layer is always active.
    """
    from repro.runner.cache import default_cache_dir

    global _ambient
    directory = None
    if persistent:
        directory = cache_dir if cache_dir is not None else default_cache_dir()
    _ambient = ParallelRunner(
        jobs=jobs, cache=ResultCache(directory), job_timeout_s=job_timeout_s
    )
    return _ambient


def reset_runner() -> None:
    """Drop the ambient runner (next :func:`get_runner` recreates it)."""
    global _ambient
    _ambient = None


@contextlib.contextmanager
def using_runner(runner: ParallelRunner) -> Iterator[ParallelRunner]:
    """Temporarily swap the ambient runner (tests, nested harnesses)."""
    global _ambient
    previous = _ambient
    _ambient = runner
    try:
        yield runner
    finally:
        _ambient = previous
