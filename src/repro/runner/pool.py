"""Batch execution of simulation jobs with optional process parallelism.

:class:`ParallelRunner` takes a batch of :class:`SimJob`\\ s and

1. deduplicates identical jobs (same content digest),
2. satisfies what it can from its :class:`ResultCache`,
3. executes the remainder — serially when ``jobs <= 1`` (deterministic,
   spawn-safe, no pool overhead) or over a
   :class:`concurrent.futures.ProcessPoolExecutor` otherwise,

and returns results in input order.  Per-job seeds derive from the
config's root seed (see :func:`repro.sim.derive_seed`), so serial and
parallel execution produce bit-identical results; the determinism tests
assert this via :func:`repro.serialization.result_digest`.

A module-level *ambient* runner lets high-level entry points
(:func:`repro.system.simulate`, :class:`repro.sweep.Sweep`,
:class:`repro.analysis.speedup.SpeedupGrid`) share one cache and one
worker-count policy without threading a runner argument everywhere.
The experiments CLI configures it from ``--jobs`` / ``--cache-dir`` /
``--no-cache``; ``REPRO_JOBS`` is the environment override.
"""

from __future__ import annotations

import contextlib
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.results import SimResult
from repro.runner.cache import ResultCache
from repro.runner.job import SimJob

#: Environment override for the default worker count.
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count when none is given: ``$REPRO_JOBS``, else 1 (serial)."""
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def execute_job(job: SimJob) -> SimResult:
    """Run one job to completion (top-level so it pickles to workers)."""
    from repro.system import MemoryNetworkSystem

    return MemoryNetworkSystem(
        job.config, job.workload, requests=job.requests
    ).run()


class ParallelRunner:
    """Cache-aware, deduplicating batch executor for simulation jobs."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        # A fresh memory-only cache when none is shared in; callers that
        # want cross-runner reuse pass the ambient runner's cache.
        self.cache = ResultCache() if cache is None else cache
        self.simulations_run = 0

    # ------------------------------------------------------------------
    def run_one(self, job: SimJob) -> SimResult:
        return self.run([job])[0]

    def run(self, batch: Sequence[SimJob]) -> List[SimResult]:
        """Execute a batch; returns results aligned with the input order."""
        digests = [job.digest() for job in batch]
        results: Dict[str, SimResult] = {}
        pending: List[SimJob] = []
        for job, digest in zip(batch, digests):
            if digest in results:
                continue  # duplicate within the batch
            cached = self.cache.get(digest)
            if cached is not None:
                results[digest] = cached
            else:
                results[digest] = None  # reserve slot, keep first occurrence
                pending.append(job)
        if pending:
            for job, result in zip(pending, self._execute(pending)):
                digest = job.digest()
                results[digest] = result
                self.cache.put(digest, result)
            self.simulations_run += len(pending)
        return [results[digest] for digest in digests]

    def _execute(self, pending: List[SimJob]) -> List[SimResult]:
        workers = min(self.jobs, len(pending))
        if workers <= 1:
            return [execute_job(job) for job in pending]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_job, pending))


# ---------------------------------------------------------------------------
# Ambient runner
# ---------------------------------------------------------------------------
_ambient: Optional[ParallelRunner] = None


def get_runner() -> ParallelRunner:
    """The process-wide runner, created lazily (serial, memory cache)."""
    global _ambient
    if _ambient is None:
        _ambient = ParallelRunner()
    return _ambient


def configure_runner(
    jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    persistent: bool = False,
) -> ParallelRunner:
    """Replace the ambient runner (used by CLIs and benchmarks).

    ``persistent=True`` turns on the disk layer at ``cache_dir`` (or the
    default location, see :func:`repro.runner.cache.default_cache_dir`).
    The in-memory layer is always active.
    """
    from repro.runner.cache import default_cache_dir

    global _ambient
    directory = None
    if persistent:
        directory = cache_dir if cache_dir is not None else default_cache_dir()
    _ambient = ParallelRunner(jobs=jobs, cache=ResultCache(directory))
    return _ambient


def reset_runner() -> None:
    """Drop the ambient runner (next :func:`get_runner` recreates it)."""
    global _ambient
    _ambient = None


@contextlib.contextmanager
def using_runner(runner: ParallelRunner) -> Iterator[ParallelRunner]:
    """Temporarily swap the ambient runner (tests, nested harnesses)."""
    global _ambient
    previous = _ambient
    _ambient = runner
    try:
        yield runner
    finally:
        _ambient = previous
