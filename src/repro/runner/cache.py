"""Content-addressed memoization of simulation results.

:class:`ResultCache` maps a :class:`~repro.runner.job.SimJob` digest to
its :class:`~repro.results.SimResult`.  The in-memory layer is always
active; pass ``cache_dir`` to additionally persist results across
processes using the lossless state round-trip in
:mod:`repro.serialization`.

Disk layout (one JSON file per result, sharded on the first two digest
hex characters to keep directories small)::

    <cache_dir>/<v>/<ab>/<digest>.json

where ``<v>`` is the serialization schema version, so bumping
``RESULT_STATE_VERSION`` orphans stale entries instead of mis-reading
them.  Wiping a stale cache is therefore just ``rm -rf <cache_dir>``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.results import SimResult
from repro.serialization import (
    RESULT_STATE_VERSION,
    result_from_state,
    result_to_state,
)

#: Environment override for the default on-disk location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Two-layer (memory, optional disk) result memoizer."""

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        self._memory: Dict[str, SimResult] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        # instrumentation (reported by the experiments CLI / benchmarks)
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    @property
    def persistent(self) -> bool:
        return self.cache_dir is not None

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, digest: str) -> bool:
        return digest in self._memory or self._path(digest).is_file()

    def _path(self, digest: str) -> Path:
        if self.cache_dir is None:
            return Path(os.devnull)
        return (
            self.cache_dir
            / f"v{RESULT_STATE_VERSION}"
            / digest[:2]
            / f"{digest}.json"
        )

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[SimResult]:
        """Look up a result; promotes disk hits into the memory layer."""
        result = self._memory.get(digest)
        if result is not None:
            self.memory_hits += 1
            return result
        if self.cache_dir is not None:
            path = self._path(digest)
            try:
                state = json.loads(path.read_text())
                result = result_from_state(state)
            except FileNotFoundError:
                pass
            except (ValueError, KeyError, TypeError, OSError):
                # Corrupt or stale entry: drop it and re-simulate.
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                self._memory[digest] = result
                self.disk_hits += 1
                return result
        self.misses += 1
        return None

    def put(self, digest: str, result: SimResult) -> None:
        """Store a result in memory and (if configured) on disk."""
        self._memory[digest] = result
        self.stores += 1
        if self.cache_dir is None:
            return
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(result_to_state(result), separators=(",", ":"))
        # Atomic write so a crashed run never leaves a truncated entry.
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        self._memory.clear()

    def drop_memory(self, digest: str) -> None:
        """Evict one entry from the memory layer.

        Streaming folds (:meth:`repro.runner.ParallelRunner.run_fold`)
        call this right after consuming a result so fleet-scale batches
        never accumulate per-shard detail in memory; with a disk layer
        configured the entry stays warm on disk.
        """
        self._memory.pop(digest, None)

    def stats(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def describe(self) -> str:
        where = str(self.cache_dir) if self.persistent else "memory only"
        return (
            f"cache[{where}]: {self.memory_hits} memory hits, "
            f"{self.disk_hits} disk hits, {self.misses} misses"
        )
