"""Simulation jobs: a hashable unit of work for the runner.

A :class:`SimJob` freezes everything a simulation's outcome depends on —
the full :class:`SystemConfig` tree (which includes the seed), the
:class:`WorkloadSpec`, and the request count — and derives a stable
content digest from it.  Identical jobs hash identically regardless of
how their configs were constructed, so the digest doubles as the
memoization key of :class:`repro.runner.cache.ResultCache` and as the
deduplication key inside a batch.

Jobs are plain frozen dataclasses and therefore picklable, which is what
lets :class:`repro.runner.pool.ParallelRunner` ship them to worker
processes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import MISSING, dataclass, fields, is_dataclass
from typing import Any, Dict

from repro.config import SystemConfig
from repro.workloads import WorkloadSpec

#: Salt folded into every job digest.  Bump when the simulator's
#: behaviour changes in a way that invalidates previously cached results
#: (the config/workload schema itself is already part of the digest).
#: v2: RAS fault layer (FaultPlan in SystemConfig, availability fields).
#: v3: peer-to-peer copies (p2p_fraction / p2p_pattern knobs, p2p
#: packet kinds and collector aggregates).  v3 also covers the overload
#: layer: its fields are digest-transparent at their defaults (below),
#: so pre-overload digests were never invalidated.
JOB_DIGEST_VERSION = "repro-job-v3"

#: Fields that are *omitted* from the canonical tree while they hold
#: their dataclass default.  This is how an off-by-default feature can
#: add config/workload fields without invalidating every existing digest
#: and cached result: a job that never touches the feature canonicalizes
#: exactly as it did before the fields existed, while any non-default
#: setting enters the tree (and the digest) as usual.
_DIGEST_TRANSPARENT = {
    "SystemConfig": frozenset({"overload"}),
    "WorkloadSpec": frozenset({"arrival", "on_fraction", "on_burst", "skew"}),
    "ObsConfig": frozenset(
        {"attribution_sample", "attribution_labels", "trace_sample"}
    ),
}


def _is_default(f: Any, value: Any) -> bool:
    """True when a dataclass field holds its declared default value."""
    if f.default is not MISSING:
        return value == f.default
    if f.default_factory is not MISSING:  # type: ignore[misc]
        return value == f.default_factory()
    return False


def canonical_tree(value: Any) -> Any:
    """Reduce a dataclass tree to canonical JSON-able primitives.

    Field order comes from the dataclass definition and dict keys are
    sorted, so two structurally equal values always canonicalize to the
    same tree no matter how (or in what order) they were built.
    """
    if is_dataclass(value) and not isinstance(value, type):
        transparent = _DIGEST_TRANSPARENT.get(type(value).__name__, ())
        tree: Dict[str, Any] = {"__class__": type(value).__name__}
        for f in fields(value):
            field_value = getattr(value, f.name)
            if f.name in transparent and _is_default(f, field_value):
                continue
            tree[f.name] = canonical_tree(field_value)
        return tree
    if isinstance(value, dict):
        return {
            str(key): canonical_tree(val)
            for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [canonical_tree(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def digest_tree(tree: Any) -> str:
    """SHA-256 of a canonical tree's compact JSON encoding."""
    payload = json.dumps(tree, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SimJob:
    """One simulation to run: frozen config + workload + request count.

    The per-run seed lives inside ``config.seed`` and the workload
    stream derives from it via :func:`repro.sim.derive_seed`, so the job
    is fully self-describing: equal digests imply bit-identical results.
    """

    config: SystemConfig
    workload: WorkloadSpec
    requests: int = 2000

    def digest(self) -> str:
        """Stable content digest over the whole job tree."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = digest_tree(
                {
                    "version": JOB_DIGEST_VERSION,
                    "config": canonical_tree(self.config),
                    "workload": canonical_tree(self.workload),
                    "requests": self.requests,
                }
            )
            object.__setattr__(self, "_digest", cached)
        return cached

    def label(self) -> str:
        """Human-readable tag for logs and progress output."""
        return f"{self.config.label()}/{self.workload.name}/r{self.requests}"
