"""Lightweight statistics collectors used throughout the simulator."""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple, Union


class HistogramShapeError(ValueError):
    """Two histograms with different bucket shapes were merged.

    Merging a ``width x count`` histogram into one with different bin
    edges would silently misbin every sample; the mismatch is raised by
    name instead.  Subclasses :class:`ValueError` so pre-existing
    callers that caught the generic error keep working.
    """


class RunningStat:
    """Streaming mean / variance / min / max (Welford's algorithm)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> None:
        """Fold another collector into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min, self.max, self.total = other.min, other.max, other.total
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total = n1 + n2
        self._m2 += other._m2 + delta * delta * n1 * n2 / total
        self._mean += delta * n2 / total
        self.count = total
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunningStat(n={self.count}, mean={self.mean:.2f})"


class Histogram:
    """Fixed-width bucket histogram with underflow and overflow counters.

    Bucket ``i`` covers ``[i * bucket_width, (i + 1) * bucket_width)``.
    Negative samples land in ``underflow``; samples at or beyond the
    bucketed range land in ``overflow``.  Both are part of ``count`` and
    both participate in :meth:`percentile`, which clamps out-of-range
    answers to the observed extremes instead of fabricating a midpoint.
    """

    __slots__ = ("bucket_width", "buckets", "underflow", "overflow", "stat")

    def __init__(self, bucket_width: float, num_buckets: int = 64) -> None:
        if bucket_width <= 0 or num_buckets <= 0:
            raise ValueError("bucket_width and num_buckets must be positive")
        self.bucket_width = bucket_width
        self.buckets = [0] * num_buckets
        self.underflow = 0
        self.overflow = 0
        self.stat = RunningStat()

    def add(self, value: float) -> None:
        self.stat.add(value)
        if value < 0:
            # int() truncates toward zero, so (-width, 0) would otherwise
            # alias into bucket 0; negatives are counted out-of-range.
            self.underflow += 1
            return
        index = int(value / self.bucket_width)
        if index < len(self.buckets):
            self.buckets[index] += 1
        else:
            self.overflow += 1

    @property
    def count(self) -> int:
        return self.stat.count

    def percentile(self, fraction: float) -> float:
        """Approximate percentile from bucket midpoints (0 < fraction <= 1)."""
        return self.percentile_detail(fraction)[0]

    def percentile_detail(self, fraction: float) -> Tuple[float, bool]:
        """Percentile plus whether it fell outside the bucketed range.

        Returns ``(value, clamped)``.  ``clamped`` is True when the
        requested fraction lands in the underflow/overflow tail, in which
        case ``value`` is the observed min/max rather than a bucket
        midpoint.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0.0, False
        target = fraction * self.count
        seen = self.underflow
        if self.underflow and seen >= target:
            return float(self.stat.min), True
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return (i + 0.5) * self.bucket_width, False
        # The percentile sits among overflowed samples: clamp to the
        # largest value actually observed instead of inventing one.
        return float(self.stat.max), True

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (bucket-wise).

        Raises :class:`HistogramShapeError` when the bin edges differ —
        merging across shapes would misbin silently.
        """
        if (
            other.bucket_width != self.bucket_width
            or len(other.buckets) != len(self.buckets)
        ):
            raise HistogramShapeError(
                f"cannot merge histograms with different shapes: "
                f"{self.bucket_width}x{len(self.buckets)} vs "
                f"{other.bucket_width}x{len(other.buckets)}"
            )
        for i, n in enumerate(other.buckets):
            if n:
                self.buckets[i] += n
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.stat.merge(other.stat)


class TailAccumulator:
    """Order-invariant streaming fold of :class:`Histogram` tails.

    The fleet layer folds thousands of per-shard histograms in whatever
    order jobs complete, and its results must be bit-identical between
    ``--jobs 1`` and ``--jobs N``.  :meth:`Histogram.merge` cannot give
    that guarantee: its Welford moment merge accumulates floating-point
    error that depends on fold order.  This accumulator keeps only the
    *exactly* commutative parts — integer bucket counts, min/max
    comparisons, and a running total that stays exact for the simulator's
    integer-valued picosecond samples — so any fold order over any
    partition of the same histograms produces the same state.

    An accumulator starts shapeless and adopts the shape of the first
    histogram folded into it; a later histogram with different bin edges
    raises :class:`HistogramShapeError`.

    Percentiles mirror :meth:`Histogram.percentile_detail` (bucket
    midpoints, tails clamped to observed extremes) with one deliberate
    difference: an *empty* accumulator reports ``None`` instead of
    ``0.0``, so shards that completed zero requests cannot poison a
    fleet percentile downward.
    """

    __slots__ = (
        "bucket_width",
        "buckets",
        "underflow",
        "overflow",
        "count",
        "min",
        "max",
        "total",
    )

    def __init__(self) -> None:
        self.bucket_width: Optional[float] = None
        self.buckets: List[int] = []
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.total = 0.0

    @property
    def shaped(self) -> bool:
        return self.bucket_width is not None

    def _adopt_or_check(self, bucket_width: float, num_buckets: int) -> None:
        if self.bucket_width is None:
            self.bucket_width = bucket_width
            self.buckets = [0] * num_buckets
            return
        if bucket_width != self.bucket_width or num_buckets != len(self.buckets):
            raise HistogramShapeError(
                f"cannot fold histograms with different shapes: "
                f"{self.bucket_width}x{len(self.buckets)} vs "
                f"{bucket_width}x{num_buckets}"
            )

    def _fold_extremes(
        self, lo: Optional[float], hi: Optional[float], total: float
    ) -> None:
        if lo is not None and (self.min is None or lo < self.min):
            self.min = lo
        if hi is not None and (self.max is None or hi > self.max):
            self.max = hi
        self.total += total

    def fold(self, hist: Histogram) -> None:
        """Fold one histogram's tail state in (exact, order-invariant)."""
        if hist.count == 0:
            # Shapeless empties stay shapeless: an empty shard must not
            # pin the fleet to its (arbitrary) bucket geometry either.
            return
        self._adopt_or_check(hist.bucket_width, len(hist.buckets))
        for i, n in enumerate(hist.buckets):
            if n:
                self.buckets[i] += n
        self.underflow += hist.underflow
        self.overflow += hist.overflow
        self.count += hist.stat.count
        self._fold_extremes(hist.stat.min, hist.stat.max, hist.stat.total)

    def merge(self, other: "TailAccumulator") -> None:
        """Fold another accumulator in (same exactness guarantees)."""
        if other.count == 0:
            return
        self._adopt_or_check(other.bucket_width, len(other.buckets))
        for i, n in enumerate(other.buckets):
            if n:
                self.buckets[i] += n
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.count += other.count
        self._fold_extremes(other.min, other.max, other.total)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> Optional[float]:
        """Percentile from bucket midpoints; ``None`` when empty.

        Same clamping as :meth:`Histogram.percentile_detail`: a fraction
        landing in the underflow/overflow tail reports the observed
        min/max instead of fabricating a midpoint.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return None
        target = fraction * self.count
        seen = self.underflow
        if self.underflow and seen >= target:
            return float(self.min)
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return (i + 0.5) * self.bucket_width
        return float(self.max)

    def state(self) -> Dict[str, object]:
        """Canonical JSON-able dump (sparse buckets), for fleet digests."""
        return {
            "bucket_width": self.bucket_width,
            "num_buckets": len(self.buckets),
            "buckets": [[i, n] for i, n in enumerate(self.buckets) if n],
            "underflow": self.underflow,
            "overflow": self.overflow,
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "total": self.total,
        }


class CounterBag:
    """Named integer counters with exact, order-invariant merging.

    The streaming-aggregation counterpart of :class:`StatsRegistry`'s
    counter half: integer addition commutes exactly, so a bag folded in
    any completion order holds identical values.  Non-integral amounts
    are rejected rather than silently truncated — fleet per-kind
    conservation (shard sums == fleet totals) only holds over exact
    arithmetic.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def add(self, name: str, amount: Union[int, float] = 1) -> None:
        if isinstance(amount, float):
            if not amount.is_integer():
                raise ValueError(
                    f"counter {name!r}: non-integral amount {amount!r}"
                )
            amount = int(amount)
        if amount:
            self.counts[name] = self.counts.get(name, 0) + amount

    def fold_dict(self, mapping: Mapping[str, Union[int, float]]) -> None:
        for name, amount in mapping.items():
            self.add(name, amount)

    def merge(self, other: "CounterBag") -> None:
        self.fold_dict(other.counts)

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: self.counts[name] for name in sorted(self.counts)}


class StatsRegistry:
    """Named collection of counters and RunningStats for one simulation."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.stats: Dict[str, RunningStat] = {}

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def record(self, name: str, value: float) -> None:
        stat = self.stats.get(name)
        if stat is None:
            stat = RunningStat()
            self.stats[name] = stat
        stat.add(value)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def mean(self, name: str) -> float:
        stat = self.stats.get(name)
        return stat.mean if stat else 0.0

    def names(self) -> List[str]:
        return sorted(set(self.counters) | set(self.stats))

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = dict(self.counters)
        for name, stat in self.stats.items():
            for key, value in (
                (f"{name}.mean", stat.mean),
                (f"{name}.count", stat.count),
            ):
                if key in self.counters:
                    raise ValueError(
                        f"stats registry key collision: stat {name!r} emits "
                        f"{key!r}, which is already a counter name"
                    )
                out[key] = value
        return out
