"""Lightweight statistics collectors used throughout the simulator."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple


class RunningStat:
    """Streaming mean / variance / min / max (Welford's algorithm)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> None:
        """Fold another collector into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min, self.max, self.total = other.min, other.max, other.total
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total = n1 + n2
        self._m2 += other._m2 + delta * delta * n1 * n2 / total
        self._mean += delta * n2 / total
        self.count = total
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunningStat(n={self.count}, mean={self.mean:.2f})"


class Histogram:
    """Fixed-width bucket histogram with underflow and overflow counters.

    Bucket ``i`` covers ``[i * bucket_width, (i + 1) * bucket_width)``.
    Negative samples land in ``underflow``; samples at or beyond the
    bucketed range land in ``overflow``.  Both are part of ``count`` and
    both participate in :meth:`percentile`, which clamps out-of-range
    answers to the observed extremes instead of fabricating a midpoint.
    """

    __slots__ = ("bucket_width", "buckets", "underflow", "overflow", "stat")

    def __init__(self, bucket_width: float, num_buckets: int = 64) -> None:
        if bucket_width <= 0 or num_buckets <= 0:
            raise ValueError("bucket_width and num_buckets must be positive")
        self.bucket_width = bucket_width
        self.buckets = [0] * num_buckets
        self.underflow = 0
        self.overflow = 0
        self.stat = RunningStat()

    def add(self, value: float) -> None:
        self.stat.add(value)
        if value < 0:
            # int() truncates toward zero, so (-width, 0) would otherwise
            # alias into bucket 0; negatives are counted out-of-range.
            self.underflow += 1
            return
        index = int(value / self.bucket_width)
        if index < len(self.buckets):
            self.buckets[index] += 1
        else:
            self.overflow += 1

    @property
    def count(self) -> int:
        return self.stat.count

    def percentile(self, fraction: float) -> float:
        """Approximate percentile from bucket midpoints (0 < fraction <= 1)."""
        return self.percentile_detail(fraction)[0]

    def percentile_detail(self, fraction: float) -> Tuple[float, bool]:
        """Percentile plus whether it fell outside the bucketed range.

        Returns ``(value, clamped)``.  ``clamped`` is True when the
        requested fraction lands in the underflow/overflow tail, in which
        case ``value`` is the observed min/max rather than a bucket
        midpoint.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0.0, False
        target = fraction * self.count
        seen = self.underflow
        if self.underflow and seen >= target:
            return float(self.stat.min), True
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return (i + 0.5) * self.bucket_width, False
        # The percentile sits among overflowed samples: clamp to the
        # largest value actually observed instead of inventing one.
        return float(self.stat.max), True

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (bucket-wise)."""
        if (
            other.bucket_width != self.bucket_width
            or len(other.buckets) != len(self.buckets)
        ):
            raise ValueError(
                f"cannot merge histograms with different shapes: "
                f"{self.bucket_width}x{len(self.buckets)} vs "
                f"{other.bucket_width}x{len(other.buckets)}"
            )
        for i, n in enumerate(other.buckets):
            if n:
                self.buckets[i] += n
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.stat.merge(other.stat)


class StatsRegistry:
    """Named collection of counters and RunningStats for one simulation."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.stats: Dict[str, RunningStat] = {}

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def record(self, name: str, value: float) -> None:
        stat = self.stats.get(name)
        if stat is None:
            stat = RunningStat()
            self.stats[name] = stat
        stat.add(value)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def mean(self, name: str) -> float:
        stat = self.stats.get(name)
        return stat.mean if stat else 0.0

    def names(self) -> List[str]:
        return sorted(set(self.counters) | set(self.stats))

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = dict(self.counters)
        for name, stat in self.stats.items():
            for key, value in (
                (f"{name}.mean", stat.mean),
                (f"{name}.count", stat.count),
            ):
                if key in self.counters:
                    raise ValueError(
                        f"stats registry key collision: stat {name!r} emits "
                        f"{key!r}, which is already a counter name"
                    )
                out[key] = value
        return out
