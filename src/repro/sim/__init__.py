"""Discrete-event simulation kernel.

The kernel is deliberately small: an integer-picosecond clock, a binary
heap of ``(time, sequence, callback)`` entries, and deterministic
tie-breaking by insertion order.  All higher-level components (links,
routers, memory controllers, hosts) are implemented as callbacks over
this kernel.
"""

from repro.sim.engine import Engine
from repro.sim.random import RandomStream, derive_seed
from repro.sim.stats import Histogram, RunningStat, StatsRegistry

__all__ = [
    "Engine",
    "RandomStream",
    "derive_seed",
    "Histogram",
    "RunningStat",
    "StatsRegistry",
]
