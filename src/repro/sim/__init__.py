"""Discrete-event simulation kernel.

The kernel is deliberately small: an integer-picosecond clock, a queue
of ``(time, sequence, callback)`` entries behind one of three
interchangeable schedulers (``wheel``, ``heap``, ``batch`` — see
:mod:`repro.sim.engine`), and deterministic tie-breaking by insertion
order.  All higher-level components (links, routers, memory
controllers, hosts) are implemented as callbacks over this kernel.
"""

from repro.sim.engine import SCHEDULERS, Engine, default_scheduler
from repro.sim.random import RandomStream, derive_seed
from repro.sim.stats import Histogram, RunningStat, StatsRegistry

__all__ = [
    "Engine",
    "SCHEDULERS",
    "default_scheduler",
    "RandomStream",
    "derive_seed",
    "Histogram",
    "RunningStat",
    "StatsRegistry",
]
