/* Compiled hot path for the simulator: Engine("native").
 *
 * Two CPython types live here, both duck-compatible with their pure
 * Python counterparts:
 *
 * - NativeEngine mirrors repro.sim.engine.Engine: a single binary heap
 *   of (time, seq, callback, args) events kept as a C struct array (no
 *   per-event tuple allocation, no rich-comparison calls in the heap),
 *   with callbacks dispatched through the vectorcall protocol.  Events
 *   fire in exact (time, seq) order, so results are bit-identical to
 *   the wheel/heap/batch schedulers — the determinism contract the
 *   golden corpora pin.
 *
 * - NativeQueue mirrors repro.net.buffers.InputQueue: packets stay in
 *   a real Python list bound to the ``_items`` attribute (the router's
 *   arbitration loop reads it directly), while entry timestamps live
 *   in a parallel C array and push/pop/head-key maintenance run in C.
 *
 * Built in-tree by ``python -m repro.sim.native_build`` (gcc + the
 * CPython headers, no third-party dependencies); loaded lazily by
 * repro.sim.native so the pure-Python install never imports it.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <string.h>

/* Looked up once at module init. */
static PyObject *SimulationError;  /* repro.errors.SimulationError */
static PyObject *segment_code_fn;  /* repro.obs.attribution.segment_code */

/* Interned attribute/method names used on the hot path. */
static PyObject *str_qualname, *str_engine_event, *str_queue_depth;
static PyObject *str_route, *str_hop_index, *str_transaction, *str_segments;
static PyObject *str_is_xfer, *str_is_req, *str_append;
static PyObject *str_now, *str_dead, *str_channel, *str_busy_until;
static PyObject *str_credits, *str_is_resp, *str_request_wakeup, *str_pick;
static PyObject *str_grants, *str_can_accept, *str_send, *str_dispatch;
static PyObject *str_upstream_link, *str_on_drain, *str_return_credit;
static PyObject *str_router_grant, *str_wake_when_idle, *str_ports;
static PyObject *str_inputs, *str_response_priority, *str_name;
static PyObject *str_head_key, *str_items, *str_pop, *str_tracer;
static PyObject *long_neg_one;  /* the LOCAL output key */
static PyObject *long_one;

/* ================================================================== */
/* NativeEngine                                                        */
/* ================================================================== */

typedef struct {
    long long time;
    unsigned long long seq;
    PyObject *cb;
    PyObject *args;  /* always a tuple */
} event_t;

typedef struct {
    PyObject_HEAD
    event_t *heap;
    Py_ssize_t size;
    Py_ssize_t cap;
    long long now;
    unsigned long long seq;
    Py_ssize_t pending;          /* same batch-settled semantics as Engine */
    Py_ssize_t events_processed;
    int running;
    int stop;                    /* request_stop() latch */
    PyObject *tracer;
} NativeEngine;

static int
heap_reserve(NativeEngine *self, Py_ssize_t need)
{
    if (need <= self->cap)
        return 0;
    Py_ssize_t cap = self->cap ? self->cap * 2 : 256;
    if (cap < need)
        cap = need;
    event_t *heap = PyMem_Realloc(self->heap, (size_t)cap * sizeof(event_t));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = heap;
    self->cap = cap;
    return 0;
}

/* key(a) < key(b) on (time, seq) */
#define EV_LT(a, b) \
    ((a).time < (b).time || ((a).time == (b).time && (a).seq < (b).seq))

static void
heap_sift_up(event_t *heap, Py_ssize_t pos)
{
    event_t item = heap[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!EV_LT(item, heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = item;
}

static void
heap_sift_down(event_t *heap, Py_ssize_t size, Py_ssize_t pos)
{
    event_t item = heap[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size && EV_LT(heap[child + 1], heap[child]))
            child += 1;
        if (!EV_LT(heap[child], item))
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = item;
}

/* Push an event; takes new references to cb and args. */
static int
engine_push(NativeEngine *self, long long time, PyObject *cb, PyObject *args)
{
    if (heap_reserve(self, self->size + 1) < 0)
        return -1;
    event_t *slot = &self->heap[self->size];
    slot->time = time;
    slot->seq = self->seq++;
    Py_INCREF(cb);
    slot->cb = cb;
    Py_INCREF(args);
    slot->args = args;
    heap_sift_up(self->heap, self->size);
    self->size += 1;
    self->pending += 1;
    return 0;
}

static PyObject *
Engine_schedule(NativeEngine *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule(delay, callback, *args) takes at least 2 arguments");
        return NULL;
    }
    long long delay = PyLong_AsLongLong(args[0]);
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    if (delay < 0)
        return PyErr_Format(SimulationError,
                            "negative delay %lld scheduled at t=%lld",
                            delay, self->now);
    PyObject *extra = PyTuple_New(nargs - 2);
    if (extra == NULL)
        return NULL;
    for (Py_ssize_t i = 2; i < nargs; i++) {
        Py_INCREF(args[i]);
        PyTuple_SET_ITEM(extra, i - 2, args[i]);
    }
    int rc = engine_push(self, self->now + delay, args[1], extra);
    Py_DECREF(extra);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Engine_schedule_at(NativeEngine *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at(time, callback, *args) takes at least 2 arguments");
        return NULL;
    }
    long long time = PyLong_AsLongLong(args[0]);
    if (time == -1 && PyErr_Occurred())
        return NULL;
    if (time < self->now)
        return PyErr_Format(SimulationError,
                            "event scheduled in the past: t=%lld < now=%lld",
                            time, self->now);
    PyObject *extra = PyTuple_New(nargs - 2);
    if (extra == NULL)
        return NULL;
    for (Py_ssize_t i = 2; i < nargs; i++) {
        Py_INCREF(args[i]);
        PyTuple_SET_ITEM(extra, i - 2, args[i]);
    }
    int rc = engine_push(self, time, args[1], extra);
    Py_DECREF(extra);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Engine_schedule_bound(NativeEngine *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_bound(delay, callback, args=()) takes 2 or 3 arguments");
        return NULL;
    }
    long long delay = PyLong_AsLongLong(args[0]);
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    if (nargs == 3) {
        if (!PyTuple_Check(args[2])) {
            PyErr_SetString(PyExc_TypeError, "schedule_bound args must be a tuple");
            return NULL;
        }
        if (engine_push(self, self->now + delay, args[1], args[2]) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    PyObject *extra = PyTuple_New(0);
    if (extra == NULL)
        return NULL;
    int rc = engine_push(self, self->now + delay, args[1], extra);
    Py_DECREF(extra);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Engine_run(NativeEngine *self, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"until", "max_events", "stop_when", NULL};
    PyObject *until_obj = Py_None, *max_obj = Py_None, *stop_when = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "|OOO", kwlist,
                                     &until_obj, &max_obj, &stop_when))
        return NULL;
    int bounded = until_obj != Py_None;
    long long until = 0;
    if (bounded) {
        until = PyLong_AsLongLong(until_obj);
        if (until == -1 && PyErr_Occurred())
            return NULL;
    }
    int limited = max_obj != Py_None;
    long long max_events = 0;
    if (limited) {
        max_events = PyLong_AsLongLong(max_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }
    int has_pred = stop_when != Py_None;
    PyObject *tracer =
        (self->tracer != NULL && self->tracer != Py_None) ? self->tracer : NULL;

    Py_ssize_t processed = 0;
    int error = 0;
    self->running = 1;
    while (self->size) {
        if (bounded && self->heap[0].time > until) {
            self->now = until;
            goto done;
        }
        /* pop the minimum (time, seq) event */
        event_t ev = self->heap[0];
        self->size -= 1;
        if (self->size) {
            self->heap[0] = self->heap[self->size];
            heap_sift_down(self->heap, self->size, 0);
        }
        self->now = ev.time;
        if (tracer != NULL) {
            PyObject *label = PyObject_GetAttr(ev.cb, str_qualname);
            if (label == NULL) {
                PyErr_Clear();
                label = PyObject_Repr(ev.cb);
            }
            PyObject *time_obj =
                (label != NULL) ? PyLong_FromLongLong(ev.time) : NULL;
            PyObject *res = NULL;
            if (time_obj != NULL) {
                res = PyObject_CallMethodObjArgs(tracer, str_engine_event,
                                                 time_obj, label, NULL);
            }
            Py_XDECREF(time_obj);
            Py_XDECREF(label);
            if (res == NULL) {
                Py_DECREF(ev.cb);
                Py_DECREF(ev.args);
                error = 1;
                goto done;
            }
            Py_DECREF(res);
        }
        /* dispatch callback(self, *args) through vectorcall */
        Py_ssize_t n = PyTuple_GET_SIZE(ev.args);
        PyObject *small[8];
        PyObject **stack = small;
        if (n + 1 > 8) {
            stack = PyMem_Malloc((size_t)(n + 1) * sizeof(PyObject *));
            if (stack == NULL) {
                Py_DECREF(ev.cb);
                Py_DECREF(ev.args);
                PyErr_NoMemory();
                error = 1;
                goto done;
            }
        }
        stack[0] = (PyObject *)self;
        for (Py_ssize_t i = 0; i < n; i++)
            stack[i + 1] = PyTuple_GET_ITEM(ev.args, i);
        PyObject *res = PyObject_Vectorcall(ev.cb, stack, n + 1, NULL);
        if (stack != small)
            PyMem_Free(stack);
        Py_DECREF(ev.cb);
        Py_DECREF(ev.args);
        if (res == NULL) {
            error = 1;
            goto done;
        }
        Py_DECREF(res);
        processed += 1;
        if (limited && processed >= max_events) {
            /* settle counters before raising, exactly like Engine */
            self->pending -= processed;
            self->events_processed += processed;
            self->running = 0;
            return PyErr_Format(SimulationError,
                                "event limit %lld exceeded at t=%lld; "
                                "likely livelock",
                                max_events, self->now);
        }
        if (has_pred) {
            PyObject *flag = PyObject_CallNoArgs(stop_when);
            if (flag == NULL) {
                error = 1;
                goto done;
            }
            int truthy = PyObject_IsTrue(flag);
            Py_DECREF(flag);
            if (truthy < 0) {
                error = 1;
                goto done;
            }
            if (truthy)
                goto done;
        }
        if (self->stop) {
            self->stop = 0;
            goto done;
        }
    }
    if (bounded && until > self->now)
        self->now = until;
done:
    self->pending -= processed;
    self->events_processed += processed;
    self->running = 0;
    if (error)
        return NULL;
    return PyLong_FromSsize_t(processed);
}

static PyObject *
Engine_request_stop(NativeEngine *self, PyObject *Py_UNUSED(ignored))
{
    self->stop = 1;
    Py_RETURN_NONE;
}

static PyObject *
Engine_set_tracer(NativeEngine *self, PyObject *tracer)
{
    Py_INCREF(tracer);
    Py_XSETREF(self->tracer, tracer);
    Py_RETURN_NONE;
}

static PyObject *
Engine_drain(NativeEngine *self, PyObject *Py_UNUSED(ignored))
{
    for (Py_ssize_t i = 0; i < self->size; i++) {
        Py_CLEAR(self->heap[i].cb);
        Py_CLEAR(self->heap[i].args);
    }
    self->size = 0;
    self->pending = 0;
    Py_RETURN_NONE;
}

static PyObject *
Engine_peek_time(NativeEngine *self, PyObject *Py_UNUSED(ignored))
{
    if (self->size == 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->heap[0].time);
}

static int
problems_append(PyObject *problems, const char *fmt, ...)
{
    va_list vargs;
    va_start(vargs, fmt);
    PyObject *msg = PyUnicode_FromFormatV(fmt, vargs);
    va_end(vargs);
    if (msg == NULL)
        return -1;
    int rc = PyList_Append(problems, msg);
    Py_DECREF(msg);
    return rc;
}

static PyObject *
Engine_integrity_errors(NativeEngine *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *problems = PyList_New(0);
    if (problems == NULL)
        return NULL;
    Py_ssize_t queued = self->size;
    if (self->running) {
        /* mid-dispatch the pending counter still includes events this
         * run() call already processed; only the lower bound holds */
        if (queued > self->pending) {
            if (problems_append(problems,
                                "pending counter %zd below %zd queued events "
                                "mid-dispatch", self->pending, queued) < 0)
                goto fail;
        }
    }
    else if (queued != self->pending) {
        if (problems_append(problems,
                            "pending counter %zd != %zd queued events",
                            self->pending, queued) < 0)
            goto fail;
    }
    for (Py_ssize_t i = 0; i < self->size; i++) {
        if (self->heap[i].time < self->now) {
            if (problems_append(problems,
                                "heap event at t=%lld is before now=%lld",
                                self->heap[i].time, self->now) < 0)
                goto fail;
            break;
        }
    }
    for (Py_ssize_t i = 1; i < self->size; i++) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (EV_LT(self->heap[i], self->heap[parent])) {
            if (problems_append(problems,
                                "heap invariant violated at index %zd", i) < 0)
                goto fail;
            break;
        }
    }
    return problems;
fail:
    Py_DECREF(problems);
    return NULL;
}

static PyObject *
Engine_get_now(NativeEngine *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->now);
}

static PyObject *
Engine_get_pending(NativeEngine *self, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(self->pending);
}

static PyObject *
Engine_get_processed(NativeEngine *self, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(self->events_processed);
}

static PyObject *
Engine_get_collapsed(NativeEngine *self, void *Py_UNUSED(closure))
{
    Py_RETURN_FALSE;
}

static PyObject *
Engine_get_scheduler(NativeEngine *self, void *Py_UNUSED(closure))
{
    return PyUnicode_FromString("native");
}

static int
Engine_init(NativeEngine *self, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"scheduler", NULL};
    PyObject *scheduler = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "|O", kwlist, &scheduler))
        return -1;
    if (scheduler != Py_None) {
        int match = PyUnicode_Check(scheduler) &&
                    PyUnicode_CompareWithASCIIString(scheduler, "native") == 0;
        if (!match) {
            PyErr_Format(PyExc_ValueError,
                         "NativeEngine only supports 'native', got %R", scheduler);
            return -1;
        }
    }
    return 0;
}

static int
Engine_traverse(NativeEngine *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->size; i++) {
        Py_VISIT(self->heap[i].cb);
        Py_VISIT(self->heap[i].args);
    }
    Py_VISIT(self->tracer);
    return 0;
}

static int
Engine_clear(NativeEngine *self)
{
    for (Py_ssize_t i = 0; i < self->size; i++) {
        Py_CLEAR(self->heap[i].cb);
        Py_CLEAR(self->heap[i].args);
    }
    self->size = 0;
    Py_CLEAR(self->tracer);
    return 0;
}

static void
Engine_dealloc(NativeEngine *self)
{
    PyObject_GC_UnTrack(self);
    Engine_clear(self);
    PyMem_Free(self->heap);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef Engine_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))Engine_schedule, METH_FASTCALL,
     "Schedule callback(engine, *args) after delay ps."},
    {"schedule_at", (PyCFunction)(void (*)(void))Engine_schedule_at, METH_FASTCALL,
     "Schedule callback(engine, *args) at absolute time ps."},
    {"schedule_bound", (PyCFunction)(void (*)(void))Engine_schedule_bound,
     METH_FASTCALL,
     "Fast-path schedule for pre-validated callers (args as a tuple)."},
    {"run", (PyCFunction)(void (*)(void))Engine_run,
     METH_VARARGS | METH_KEYWORDS,
     "Run until the queue drains, `until` is reached, or a limit hits."},
    {"request_stop", (PyCFunction)Engine_request_stop, METH_NOARGS,
     "Stop the current run after the event now dispatching completes."},
    {"set_tracer", (PyCFunction)Engine_set_tracer, METH_O,
     "Record every event dispatch into the tracer (repro.obs)."},
    {"drain", (PyCFunction)Engine_drain, METH_NOARGS,
     "Discard all pending events."},
    {"integrity_errors", (PyCFunction)Engine_integrity_errors, METH_NOARGS,
     "Audit the scheduler's internal bookkeeping (repro.check)."},
    {"_peek_time", (PyCFunction)Engine_peek_time, METH_NOARGS,
     "Earliest pending event time, or None."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Engine_getset[] = {
    {"now", (getter)Engine_get_now, NULL, "Current simulation time (ps).", NULL},
    {"pending", (getter)Engine_get_pending, NULL,
     "Number of events still in the queue.", NULL},
    {"events_processed", (getter)Engine_get_processed, NULL, NULL, NULL},
    {"collapsed", (getter)Engine_get_collapsed, NULL,
     "Wheel-collapse flag; always False for the native heap.", NULL},
    {"scheduler", (getter)Engine_get_scheduler, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject NativeEngine_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._native.NativeEngine",
    .tp_basicsize = sizeof(NativeEngine),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled deterministic discrete-event scheduler.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Engine_init,
    .tp_dealloc = (destructor)Engine_dealloc,
    .tp_traverse = (traverseproc)Engine_traverse,
    .tp_clear = (inquiry)Engine_clear,
    .tp_methods = Engine_methods,
    .tp_getset = Engine_getset,
};

/* ================================================================== */
/* NativeQueue                                                         */
/* ================================================================== */

typedef struct {
    PyObject_HEAD
    PyObject *name;           /* str */
    PyObject *capacity;       /* int or None, as passed */
    Py_ssize_t cap;           /* -1 = unbounded */
    PyObject *items;          /* list of packets, head at index 0 */
    long long *entry;         /* entry times parallel to items; -1 = None */
    Py_ssize_t entry_cap;
    PyObject *head_key;       /* int or None */
    PyObject *upstream_link;
    PyObject *on_drain;
    PyObject *tracer;
    PyObject *seg_req;        /* interned attribution codes (PyLong) */
    PyObject *seg_resp;
    PyObject *seg_xfer;
    Py_ssize_t peak_occupancy;
    long long total_wait_ps;
    Py_ssize_t pushed;
    Py_ssize_t pops;
    Py_ssize_t popped;
    Py_ssize_t removed_count;
} NativeQueue;

/* The output key of a packet: route[hop_index + 1], or -1 (LOCAL) when
 * the packet is at its final hop.  Returns a new reference. */
static PyObject *
packet_output_key(PyObject *packet)
{
    PyObject *route = PyObject_GetAttr(packet, str_route);
    if (route == NULL)
        return NULL;
    PyObject *hop_obj = PyObject_GetAttr(packet, str_hop_index);
    if (hop_obj == NULL) {
        Py_DECREF(route);
        return NULL;
    }
    long long hop = PyLong_AsLongLong(hop_obj);
    Py_DECREF(hop_obj);
    if (hop == -1 && PyErr_Occurred()) {
        Py_DECREF(route);
        return NULL;
    }
    hop += 1;
    PyObject *key;
    if (PyList_Check(route)) {
        if (hop < PyList_GET_SIZE(route)) {
            key = PyList_GET_ITEM(route, hop);
            Py_INCREF(key);
        }
        else {
            key = long_neg_one;
            Py_INCREF(key);
        }
    }
    else {
        Py_ssize_t n = PySequence_Size(route);
        if (n < 0) {
            Py_DECREF(route);
            return NULL;
        }
        if (hop < n)
            key = PySequence_GetItem(route, hop);
        else {
            key = long_neg_one;
            Py_INCREF(key);
        }
    }
    Py_DECREF(route);
    return key;
}

static int
queue_refresh_head_key(NativeQueue *self)
{
    if (PyList_GET_SIZE(self->items)) {
        PyObject *key = packet_output_key(PyList_GET_ITEM(self->items, 0));
        if (key == NULL)
            return -1;
        Py_XSETREF(self->head_key, key);
    }
    else {
        Py_INCREF(Py_None);
        Py_XSETREF(self->head_key, Py_None);
    }
    return 0;
}

static int
entry_reserve(NativeQueue *self, Py_ssize_t need)
{
    if (need <= self->entry_cap)
        return 0;
    Py_ssize_t cap = self->entry_cap ? self->entry_cap * 2 : 16;
    if (cap < need)
        cap = need;
    long long *entry = PyMem_Realloc(self->entry, (size_t)cap * sizeof(long long));
    if (entry == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->entry = entry;
    self->entry_cap = cap;
    return 0;
}

static int
queue_emit_depth(NativeQueue *self, PyObject *now_obj, Py_ssize_t depth)
{
    if (self->tracer == NULL || self->tracer == Py_None)
        return 0;
    PyObject *depth_obj = PyLong_FromSsize_t(depth);
    if (depth_obj == NULL)
        return -1;
    PyObject *res = PyObject_CallMethodObjArgs(
        self->tracer, str_queue_depth, self->name, now_obj, depth_obj, NULL);
    Py_DECREF(depth_obj);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static PyObject *
Queue_push(NativeQueue *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 1 || nargs > 2) {
        PyErr_SetString(PyExc_TypeError, "push(packet, now_ps=None)");
        return NULL;
    }
    PyObject *packet = args[0];
    PyObject *now_obj = (nargs == 2) ? args[1] : Py_None;
    Py_ssize_t depth = PyList_GET_SIZE(self->items);
    if (self->cap >= 0 && depth >= self->cap) {
        return PyErr_Format(SimulationError,
                            "queue %U overflow (capacity %zd); "
                            "credit accounting is broken",
                            self->name, self->cap);
    }
    long long now = -1;
    if (now_obj != Py_None) {
        now = PyLong_AsLongLong(now_obj);
        if (now == -1 && PyErr_Occurred())
            return NULL;
    }
    if (entry_reserve(self, depth + 1) < 0)
        return NULL;
    if (PyList_Append(self->items, packet) < 0)
        return NULL;
    self->entry[depth] = now;
    self->pushed += 1;
    depth += 1;
    if (depth == 1) {
        PyObject *key = packet_output_key(packet);
        if (key == NULL)
            return NULL;
        Py_XSETREF(self->head_key, key);
    }
    if (depth > self->peak_occupancy)
        self->peak_occupancy = depth;
    if (queue_emit_depth(self, now_obj, depth) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Queue_pop(NativeQueue *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError, "pop(now_ps=None)");
        return NULL;
    }
    PyObject *now_obj = (nargs == 1) ? args[0] : Py_None;
    Py_ssize_t len = PyList_GET_SIZE(self->items);
    if (len == 0)
        return PyErr_Format(SimulationError, "pop on empty queue %U", self->name);
    long long entered = self->entry[0];
    memmove(self->entry, self->entry + 1, (size_t)(len - 1) * sizeof(long long));
    PyObject *packet = PyList_GET_ITEM(self->items, 0);
    Py_INCREF(packet);
    if (PyList_SetSlice(self->items, 0, 1, NULL) < 0) {
        Py_DECREF(packet);
        return NULL;
    }
    len -= 1;
    if (len) {
        PyObject *key = packet_output_key(PyList_GET_ITEM(self->items, 0));
        if (key == NULL)
            goto fail;
        Py_XSETREF(self->head_key, key);
    }
    else {
        Py_INCREF(Py_None);
        Py_XSETREF(self->head_key, Py_None);
    }
    self->pops += 1;
    if (entered >= 0 && now_obj != Py_None) {
        long long now = PyLong_AsLongLong(now_obj);
        if (now == -1 && PyErr_Occurred())
            goto fail;
        self->total_wait_ps += now - entered;
        self->popped += 1;
        PyObject *txn = PyObject_GetAttr(packet, str_transaction);
        if (txn == NULL)
            goto fail;
        if (txn != Py_None && now > entered) {
            PyObject *segments = PyObject_GetAttr(txn, str_segments);
            if (segments == NULL) {
                Py_DECREF(txn);
                goto fail;
            }
            if (segments != Py_None) {
                PyObject *flag = PyObject_GetAttr(packet, str_is_xfer);
                if (flag == NULL)
                    goto seg_fail;
                int is_xfer = PyObject_IsTrue(flag);
                Py_DECREF(flag);
                if (is_xfer < 0)
                    goto seg_fail;
                PyObject *code;
                if (is_xfer)
                    code = self->seg_xfer;
                else {
                    flag = PyObject_GetAttr(packet, str_is_req);
                    if (flag == NULL)
                        goto seg_fail;
                    int is_req = PyObject_IsTrue(flag);
                    Py_DECREF(flag);
                    if (is_req < 0)
                        goto seg_fail;
                    code = is_req ? self->seg_req : self->seg_resp;
                }
                PyObject *entered_obj = PyLong_FromLongLong(entered);
                if (entered_obj == NULL)
                    goto seg_fail;
                PyObject *seg = PyTuple_Pack(3, code, entered_obj, now_obj);
                Py_DECREF(entered_obj);
                if (seg == NULL)
                    goto seg_fail;
                int rc;
                if (PyList_CheckExact(segments))
                    rc = PyList_Append(segments, seg);
                else {
                    /* honor list subclasses (the sampling/mask filter
                     * overrides append) */
                    PyObject *res = PyObject_CallMethodObjArgs(
                        segments, str_append, seg, NULL);
                    rc = (res == NULL) ? -1 : 0;
                    Py_XDECREF(res);
                }
                Py_DECREF(seg);
                if (rc < 0)
                    goto seg_fail;
                Py_DECREF(segments);
            }
            else
                Py_DECREF(segments);
            Py_DECREF(txn);
            goto emit;
seg_fail:
            Py_DECREF(segments);
            Py_DECREF(txn);
            goto fail;
        }
        Py_DECREF(txn);
    }
emit:
    if (queue_emit_depth(self, now_obj, len) < 0)
        goto fail;
    return packet;
fail:
    Py_DECREF(packet);
    return NULL;
}

static PyObject *
Queue_refresh_head_key_py(NativeQueue *self, PyObject *Py_UNUSED(ignored))
{
    if (queue_refresh_head_key(self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Queue_head(NativeQueue *self, PyObject *Py_UNUSED(ignored))
{
    if (PyList_GET_SIZE(self->items) == 0)
        return PyErr_Format(SimulationError, "peek on empty queue %U", self->name);
    PyObject *head = PyList_GET_ITEM(self->items, 0);
    Py_INCREF(head);
    return head;
}

static PyObject *
Queue_packets(NativeQueue *self, PyObject *Py_UNUSED(ignored))
{
    return PyList_AsTuple(self->items);
}

static PyObject *
Queue_has_space(NativeQueue *self, PyObject *Py_UNUSED(ignored))
{
    if (self->cap < 0 || PyList_GET_SIZE(self->items) < self->cap)
        Py_RETURN_TRUE;
    Py_RETURN_FALSE;
}

static PyObject *
Queue_remove(NativeQueue *self, PyObject *victims)
{
    int any = PyObject_IsTrue(victims);
    if (any < 0)
        return NULL;
    if (!any)
        return PyLong_FromLong(0);
    Py_ssize_t len = PyList_GET_SIZE(self->items);
    PyObject *kept = PyList_New(0);
    if (kept == NULL)
        return NULL;
    long long *kept_times = PyMem_Malloc((size_t)(len ? len : 1) * sizeof(long long));
    if (kept_times == NULL) {
        Py_DECREF(kept);
        PyErr_NoMemory();
        return NULL;
    }
    Py_ssize_t removed = 0, k = 0;
    for (Py_ssize_t i = 0; i < len; i++) {
        PyObject *packet = PyList_GET_ITEM(self->items, i);
        int hit = PySequence_Contains(victims, packet);
        if (hit < 0)
            goto fail;
        if (hit)
            removed += 1;
        else {
            if (PyList_Append(kept, packet) < 0)
                goto fail;
            kept_times[k++] = self->entry[i];
        }
    }
    Py_SETREF(self->items, kept);
    PyMem_Free(self->entry);
    self->entry = kept_times;
    self->entry_cap = (len ? len : 1);
    self->removed_count += removed;
    if (queue_refresh_head_key(self) < 0)
        return NULL;
    return PyLong_FromSsize_t(removed);
fail:
    Py_DECREF(kept);
    PyMem_Free(kept_times);
    return NULL;
}

static Py_ssize_t
Queue_length(NativeQueue *self)
{
    return PyList_GET_SIZE(self->items);
}

static PyObject *
Queue_get_is_empty(NativeQueue *self, void *Py_UNUSED(closure))
{
    if (PyList_GET_SIZE(self->items) == 0)
        Py_RETURN_TRUE;
    Py_RETURN_FALSE;
}

static PyObject *
Queue_get_mean_wait(NativeQueue *self, void *Py_UNUSED(closure))
{
    if (self->popped == 0)
        return PyFloat_FromDouble(0.0);
    return PyFloat_FromDouble((double)self->total_wait_ps / (double)self->popped);
}

static PyObject *
Queue_get_entry_times(NativeQueue *self, void *Py_UNUSED(closure))
{
    /* Cold path (repro.check): rebuild the aligned entry-time view. */
    Py_ssize_t len = PyList_GET_SIZE(self->items);
    PyObject *out = PyList_New(len);
    if (out == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < len; i++) {
        PyObject *val;
        if (self->entry[i] < 0) {
            val = Py_None;
            Py_INCREF(val);
        }
        else {
            val = PyLong_FromLongLong(self->entry[i]);
            if (val == NULL) {
                Py_DECREF(out);
                return NULL;
            }
        }
        PyList_SET_ITEM(out, i, val);
    }
    return out;
}

static PyObject *
Queue_repr(NativeQueue *self)
{
    Py_ssize_t len = PyList_GET_SIZE(self->items);
    if (self->cap < 0)
        return PyUnicode_FromFormat("NativeQueue(%U, %zd/inf)", self->name, len);
    return PyUnicode_FromFormat("NativeQueue(%U, %zd/%zd)",
                                self->name, len, self->cap);
}

static int
Queue_init(NativeQueue *self, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"name", "capacity", NULL};
    PyObject *name, *capacity;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "UO", kwlist,
                                     &name, &capacity))
        return -1;
    Py_ssize_t cap = -1;
    if (capacity != Py_None) {
        cap = PyLong_AsSsize_t(capacity);
        if (cap == -1 && PyErr_Occurred())
            return -1;
    }
    PyObject *items = PyList_New(0);
    if (items == NULL)
        return -1;
    /* Intern the attribution labels exactly like InputQueue.__init__ */
    static const char *prefixes[] = {
        "req.queue.%U", "resp.queue.%U", "mem.xfer.queue.%U"};
    PyObject *codes[3] = {NULL, NULL, NULL};
    for (int i = 0; i < 3; i++) {
        PyObject *label = PyUnicode_FromFormat(prefixes[i], name);
        if (label == NULL)
            goto fail;
        codes[i] = PyObject_CallOneArg(segment_code_fn, label);
        Py_DECREF(label);
        if (codes[i] == NULL)
            goto fail;
    }
    Py_INCREF(name);
    Py_XSETREF(self->name, name);
    Py_INCREF(capacity);
    Py_XSETREF(self->capacity, capacity);
    self->cap = cap;
    Py_XSETREF(self->items, items);
    Py_XSETREF(self->seg_req, codes[0]);
    Py_XSETREF(self->seg_resp, codes[1]);
    Py_XSETREF(self->seg_xfer, codes[2]);
    Py_INCREF(Py_None);
    Py_XSETREF(self->head_key, Py_None);
    Py_INCREF(Py_None);
    Py_XSETREF(self->upstream_link, Py_None);
    Py_INCREF(Py_None);
    Py_XSETREF(self->on_drain, Py_None);
    Py_INCREF(Py_None);
    Py_XSETREF(self->tracer, Py_None);
    self->peak_occupancy = 0;
    self->total_wait_ps = 0;
    self->pushed = self->pops = self->popped = self->removed_count = 0;
    return 0;
fail:
    Py_DECREF(items);
    for (int i = 0; i < 3; i++)
        Py_XDECREF(codes[i]);
    return -1;
}

static int
Queue_traverse(NativeQueue *self, visitproc visit, void *arg)
{
    Py_VISIT(self->name);
    Py_VISIT(self->capacity);
    Py_VISIT(self->items);
    Py_VISIT(self->head_key);
    Py_VISIT(self->upstream_link);
    Py_VISIT(self->on_drain);
    Py_VISIT(self->tracer);
    Py_VISIT(self->seg_req);
    Py_VISIT(self->seg_resp);
    Py_VISIT(self->seg_xfer);
    return 0;
}

static int
Queue_clear(NativeQueue *self)
{
    Py_CLEAR(self->name);
    Py_CLEAR(self->capacity);
    Py_CLEAR(self->items);
    Py_CLEAR(self->head_key);
    Py_CLEAR(self->upstream_link);
    Py_CLEAR(self->on_drain);
    Py_CLEAR(self->tracer);
    Py_CLEAR(self->seg_req);
    Py_CLEAR(self->seg_resp);
    Py_CLEAR(self->seg_xfer);
    return 0;
}

static void
Queue_dealloc(NativeQueue *self)
{
    PyObject_GC_UnTrack(self);
    Queue_clear(self);
    PyMem_Free(self->entry);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef Queue_methods[] = {
    {"push", (PyCFunction)(void (*)(void))Queue_push, METH_FASTCALL,
     "Append a packet (overflow raises: credit accounting is broken)."},
    {"pop", (PyCFunction)(void (*)(void))Queue_pop, METH_FASTCALL,
     "Remove and return the head packet, folding wait accounting."},
    {"refresh_head_key", (PyCFunction)Queue_refresh_head_key_py, METH_NOARGS,
     "Recompute head_key after an in-place route rewrite (RAS)."},
    {"head", (PyCFunction)Queue_head, METH_NOARGS, "Peek the head packet."},
    {"packets", (PyCFunction)Queue_packets, METH_NOARGS,
     "Snapshot of queued packets, head first."},
    {"has_space", (PyCFunction)Queue_has_space, METH_NOARGS, NULL},
    {"remove", (PyCFunction)Queue_remove, METH_O,
     "Drop every queued packet in victims (RAS quiesce)."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef Queue_members[] = {
    {"name", T_OBJECT, offsetof(NativeQueue, name), READONLY, NULL},
    {"capacity", T_OBJECT, offsetof(NativeQueue, capacity), READONLY, NULL},
    {"_items", T_OBJECT, offsetof(NativeQueue, items), READONLY,
     "Queued packets (head first); the router arbitration loop reads "
     "this directly, exactly as with the pure-Python InputQueue."},
    {"head_key", T_OBJECT, offsetof(NativeQueue, head_key), READONLY, NULL},
    {"upstream_link", T_OBJECT, offsetof(NativeQueue, upstream_link), 0, NULL},
    {"on_drain", T_OBJECT, offsetof(NativeQueue, on_drain), 0, NULL},
    {"tracer", T_OBJECT, offsetof(NativeQueue, tracer), 0, NULL},
    {"peak_occupancy", T_PYSSIZET, offsetof(NativeQueue, peak_occupancy),
     READONLY, NULL},
    {"total_wait_ps", T_LONGLONG, offsetof(NativeQueue, total_wait_ps),
     READONLY, NULL},
    {"pushed", T_PYSSIZET, offsetof(NativeQueue, pushed), READONLY, NULL},
    {"pops", T_PYSSIZET, offsetof(NativeQueue, pops), READONLY, NULL},
    {"popped", T_PYSSIZET, offsetof(NativeQueue, popped), READONLY, NULL},
    {"removed_count", T_PYSSIZET, offsetof(NativeQueue, removed_count),
     READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef Queue_getset[] = {
    {"is_empty", (getter)Queue_get_is_empty, NULL, NULL, NULL},
    {"mean_wait_ps", (getter)Queue_get_mean_wait, NULL,
     "Mean time packets spent waiting in this queue.", NULL},
    {"_entry_times", (getter)Queue_get_entry_times, NULL,
     "Aligned entry-time view (repro.check cold path).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PySequenceMethods Queue_as_sequence = {
    .sq_length = (lenfunc)Queue_length,
};

static PyTypeObject NativeQueue_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._native.NativeQueue",
    .tp_basicsize = sizeof(NativeQueue),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled finite FIFO, duck-compatible with InputQueue.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Queue_init,
    .tp_dealloc = (destructor)Queue_dealloc,
    .tp_traverse = (traverseproc)Queue_traverse,
    .tp_clear = (inquiry)Queue_clear,
    .tp_repr = (reprfunc)Queue_repr,
    .tp_methods = Queue_methods,
    .tp_members = Queue_members,
    .tp_getset = Queue_getset,
    .tp_as_sequence = &Queue_as_sequence,
};

/* ================================================================== */
/* router arbitration (Router._try_output compiled)                    */
/* ================================================================== */

/* The native backend replaces Router._try_output — the profile's
 * hottest pure-Python frame — with the loop below, via the thin
 * NativeRouter subclass in repro.sim.native.  The control flow is a
 * line-for-line transcription of router.py's _try_output; every
 * Python-visible side effect (arbiter.pick, link.send, credit
 * returns, tracer hooks, counter updates) happens through the same
 * calls in the same order, so event sequences and result digests are
 * identical.  Queues are normally NativeQueue (direct struct access);
 * a PySequence fallback keeps plain InputQueue working too. */

#define ROUTER_MAX_INPUTS 64

/* queue.head_key == key without raising on None.  1/0/-1. */
static int
queue_key_matches(PyObject *queue, PyObject *key)
{
    PyObject *hk;
    int native = Py_IS_TYPE(queue, &NativeQueue_Type);
    if (native)
        hk = ((NativeQueue *)queue)->head_key;  /* borrowed */
    else {
        hk = PyObject_GetAttr(queue, str_head_key);
        if (hk == NULL)
            return -1;
    }
    int eq;
    if (hk == key)
        eq = 1;
    else if (hk == NULL || hk == Py_None)
        eq = 0;
    else
        eq = PyObject_RichCompareBool(hk, key, Py_EQ);
    if (!native)
        Py_DECREF(hk);
    return eq;
}

/* The head packet of a queue, or NULL with no error set when the
 * queue is empty (router.py's stale-cache tolerance).  New ref. */
static PyObject *
queue_head_packet(PyObject *queue)
{
    if (Py_IS_TYPE(queue, &NativeQueue_Type)) {
        PyObject *items = ((NativeQueue *)queue)->items;
        if (items == NULL || PyList_GET_SIZE(items) == 0)
            return NULL;
        PyObject *head = PyList_GET_ITEM(items, 0);
        Py_INCREF(head);
        return head;
    }
    PyObject *items = PyObject_GetAttr(queue, str_items);
    if (items == NULL)
        return NULL;
    Py_ssize_t len = PySequence_Size(items);
    if (len < 0) {
        Py_DECREF(items);
        return NULL;
    }
    if (len == 0) {
        Py_DECREF(items);
        return NULL;  /* no error: stale-cache skip */
    }
    PyObject *head = PySequence_GetItem(items, 0);
    Py_DECREF(items);
    return head;
}

/* link.dead or now < channel._busy_until or credits exhausted.
 * 1 blocked / 0 free / -1 error; *dead_out reports link.dead. */
static int
link_blocked(PyObject *link, long long now, int *dead_out)
{
    PyObject *flag = PyObject_GetAttr(link, str_dead);
    if (flag == NULL)
        return -1;
    int dead = PyObject_IsTrue(flag);
    Py_DECREF(flag);
    if (dead < 0)
        return -1;
    *dead_out = dead;
    if (dead)
        return 1;
    PyObject *channel = PyObject_GetAttr(link, str_channel);
    if (channel == NULL)
        return -1;
    PyObject *busy = PyObject_GetAttr(channel, str_busy_until);
    Py_DECREF(channel);
    if (busy == NULL)
        return -1;
    long long busy_until = PyLong_AsLongLong(busy);
    Py_DECREF(busy);
    if (busy_until == -1 && PyErr_Occurred())
        return -1;
    if (now < busy_until)
        return 1;
    PyObject *credits = PyObject_GetAttr(link, str_credits);
    if (credits == NULL)
        return -1;
    if (credits == Py_None) {
        Py_DECREF(credits);
        return 0;
    }
    long long c = PyLong_AsLongLong(credits);
    Py_DECREF(credits);
    if (c == -1 && PyErr_Occurred())
        return -1;
    return c <= 0;
}

static int
call_discard(PyObject *obj, PyObject *meth, PyObject *a, PyObject *b)
{
    PyObject *res = PyObject_CallMethodObjArgs(obj, meth, a, b, NULL);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static int
router_try_output(PyObject *router, PyObject *engine, PyObject *key)
{
    int result = -1;
    PyObject *entry = NULL, *inputs = NULL, *grants = NULL, *retry = NULL;

    PyObject *ports = PyObject_GetAttr(router, str_ports);
    if (ports == NULL)
        return -1;
    entry = PyDict_GetItemWithError(ports, key);
    Py_XINCREF(entry);
    Py_DECREF(ports);
    if (entry == NULL) {
        if (!PyErr_Occurred()) {
            PyObject *name = PyObject_GetAttr(router, str_name);
            if (name != NULL) {
                PyErr_Format(SimulationError,
                             "router %U: head packet needs unknown output %R",
                             name, key);
                Py_DECREF(name);
            }
        }
        return -1;
    }
    if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) != 3) {
        PyErr_SetString(SimulationError, "router _ports entry must be a "
                        "(port, arbiter, link) tuple");
        goto done;
    }
    PyObject *port = PyTuple_GET_ITEM(entry, 0);    /* borrowed */
    PyObject *arbiter = PyTuple_GET_ITEM(entry, 1); /* borrowed */
    PyObject *link = PyTuple_GET_ITEM(entry, 2);    /* borrowed */
    int has_link = (link != Py_None);
    inputs = PyObject_GetAttr(router, str_inputs);
    if (inputs == NULL)
        goto done;
    if (!PyList_Check(inputs)) {
        PyErr_SetString(PyExc_TypeError, "router.inputs must be a list");
        goto done;
    }
    grants = PyObject_GetAttr(router, str_grants);
    if (grants == NULL)
        goto done;
    if (!PyDict_Check(grants)) {
        PyErr_SetString(PyExc_TypeError, "router.grants must be a dict");
        goto done;
    }
    PyObject *rp = PyObject_GetAttr(router, str_response_priority);
    if (rp == NULL)
        goto done;
    int response_priority = PyObject_IsTrue(rp);
    Py_DECREF(rp);
    if (response_priority < 0)
        goto done;

    for (;;) {
        long long now;
        PyObject *now_obj;
        if (Py_IS_TYPE(engine, &NativeEngine_Type)) {
            now = ((NativeEngine *)engine)->now;
            now_obj = PyLong_FromLongLong(now);
            if (now_obj == NULL)
                goto done;
        }
        else {
            now_obj = PyObject_GetAttr(engine, str_now);
            if (now_obj == NULL)
                goto done;
            now = PyLong_AsLongLong(now_obj);
            if (now == -1 && PyErr_Occurred()) {
                Py_DECREF(now_obj);
                goto done;
            }
        }

        Py_ssize_t n_inputs = PyList_GET_SIZE(inputs);
        if (n_inputs > ROUTER_MAX_INPUTS) {
            PyErr_Format(SimulationError,
                         "native router supports at most %d inputs",
                         ROUTER_MAX_INPUTS);
            Py_DECREF(now_obj);
            goto done;
        }

        if (has_link) {
            int dead = 0;
            int blocked = link_blocked(link, now, &dead);
            if (blocked < 0) {
                Py_DECREF(now_obj);
                goto done;
            }
            if (blocked) {
                /* Blocked: if any head wants this output, register the
                 * single wake-up (channel idle / credit return). */
                for (Py_ssize_t i = 0; i < n_inputs; i++) {
                    int m = queue_key_matches(PyList_GET_ITEM(inputs, i),
                                              key);
                    if (m < 0) {
                        Py_DECREF(now_obj);
                        goto done;
                    }
                    if (m) {
                        if (call_discard(port, str_request_wakeup,
                                         engine, NULL) < 0) {
                            Py_DECREF(now_obj);
                            goto done;
                        }
                        break;
                    }
                }
                Py_DECREF(now_obj);
                break;
            }
        }

        /* candidate scan: every queue whose head needs this output */
        Py_ssize_t idxs[ROUTER_MAX_INPUTS];
        PyObject *heads[ROUTER_MAX_INPUTS];  /* owned */
        int resps[ROUTER_MAX_INPUTS];
        Py_ssize_t n_cand = 0, resp_count = 0;
        int demand = 0;
        for (Py_ssize_t i = 0; i < n_inputs; i++) {
            PyObject *q = PyList_GET_ITEM(inputs, i);
            int m = queue_key_matches(q, key);
            if (m < 0)
                goto scan_fail;
            if (!m)
                continue;
            PyObject *head = queue_head_packet(q);
            if (head == NULL) {
                if (PyErr_Occurred())
                    goto scan_fail;
                continue;  /* stale head-key cache: auditor's problem */
            }
            if (!has_link) {
                demand = 1;
                PyObject *ok = PyObject_CallMethodObjArgs(
                    port, str_can_accept, now_obj, head, NULL);
                if (ok == NULL) {
                    Py_DECREF(head);
                    goto scan_fail;
                }
                int acc = PyObject_IsTrue(ok);
                Py_DECREF(ok);
                if (acc < 0) {
                    Py_DECREF(head);
                    goto scan_fail;
                }
                if (!acc) {
                    Py_DECREF(head);
                    continue;
                }
            }
            PyObject *flag = PyObject_GetAttr(head, str_is_resp);
            if (flag == NULL) {
                Py_DECREF(head);
                goto scan_fail;
            }
            int is_resp = PyObject_IsTrue(flag);
            Py_DECREF(flag);
            if (is_resp < 0) {
                Py_DECREF(head);
                goto scan_fail;
            }
            idxs[n_cand] = i;
            heads[n_cand] = head;
            resps[n_cand] = is_resp;
            n_cand++;
            resp_count += is_resp;
        }

        if (n_cand == 0) {
            if (demand &&
                call_discard(port, str_request_wakeup, engine, NULL) < 0) {
                Py_DECREF(now_obj);
                goto done;
            }
            Py_DECREF(now_obj);
            break;
        }

        /* responses first on contended shared links (Section 3.2) */
        Py_ssize_t n_pick = n_cand;
        if (resp_count && resp_count != n_cand && response_priority) {
            Py_ssize_t j = 0;
            for (Py_ssize_t i = 0; i < n_cand; i++) {
                if (resps[i]) {
                    idxs[j] = idxs[i];
                    heads[j] = heads[i];
                    j++;
                }
                else
                    Py_DECREF(heads[i]);
            }
            n_pick = j;
        }

        PyObject *cand_list = PyList_New(n_pick);
        if (cand_list == NULL)
            goto scan_fail2;
        for (Py_ssize_t i = 0; i < n_pick; i++) {
            PyObject *io = PyLong_FromSsize_t(idxs[i]);
            PyObject *t = io ? PyTuple_Pack(2, io, heads[i]) : NULL;
            Py_XDECREF(io);
            if (t == NULL) {
                Py_DECREF(cand_list);
                goto scan_fail2;
            }
            PyList_SET_ITEM(cand_list, i, t);
        }
        PyObject *pos_obj = PyObject_CallMethodObjArgs(
            arbiter, str_pick, now_obj, cand_list, NULL);
        Py_DECREF(cand_list);
        if (pos_obj == NULL)
            goto scan_fail2;
        Py_ssize_t pos = PyNumber_AsSsize_t(pos_obj, PyExc_OverflowError);
        Py_DECREF(pos_obj);
        if (pos == -1 && PyErr_Occurred())
            goto scan_fail2;
        if (pos < 0 || pos >= n_pick) {
            PyObject *aname = PyObject_GetAttr(arbiter, str_name);
            if (aname != NULL) {
                PyErr_Format(SimulationError,
                             "arbiter %S returned invalid index %zd",
                             aname, pos);
                Py_DECREF(aname);
            }
            goto scan_fail2;
        }

        Py_ssize_t index = idxs[pos];
        PyObject *packet = heads[pos];  /* owned; consumed below */
        for (Py_ssize_t i = 0; i < n_pick; i++)
            if (i != pos)
                Py_DECREF(heads[i]);
        PyObject *queue = PyList_GET_ITEM(inputs, index);
        Py_INCREF(queue);

        PyObject *popped;
        if (Py_IS_TYPE(queue, &NativeQueue_Type)) {
            PyObject *pop_args[1] = {now_obj};
            popped = Queue_pop((NativeQueue *)queue, pop_args, 1);
        }
        else
            popped = PyObject_CallMethodObjArgs(queue, str_pop, now_obj,
                                                NULL);
        if (popped == NULL)
            goto grant_fail;
        int was_head = (popped == packet);
        Py_DECREF(popped);
        if (!was_head) {
            PyErr_SetString(SimulationError,
                            "arbiter must select queue heads");
            goto grant_fail;
        }

        /* arbiter.grants += 1; self.grants[key] += 1 */
        PyObject *g = PyObject_GetAttr(arbiter, str_grants);
        if (g == NULL)
            goto grant_fail;
        PyObject *ng = PyNumber_Add(g, long_one);
        Py_DECREF(g);
        if (ng == NULL || PyObject_SetAttr(arbiter, str_grants, ng) < 0) {
            Py_XDECREF(ng);
            goto grant_fail;
        }
        Py_DECREF(ng);
        g = PyDict_GetItemWithError(grants, key);
        if (g == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetObject(PyExc_KeyError, key);
            goto grant_fail;
        }
        ng = PyNumber_Add(g, long_one);
        if (ng == NULL || PyDict_SetItem(grants, key, ng) < 0) {
            Py_XDECREF(ng);
            goto grant_fail;
        }
        Py_DECREF(ng);

        PyObject *tracer = PyObject_GetAttr(router, str_tracer);
        if (tracer == NULL)
            goto grant_fail;
        if (tracer != Py_None) {
            PyObject *rname = PyObject_GetAttr(router, str_name);
            PyObject *nc = PyLong_FromSsize_t(n_pick);
            PyObject *res = (rname && nc) ? PyObject_CallMethodObjArgs(
                tracer, str_router_grant, rname, now_obj, key, packet, nc,
                NULL) : NULL;
            Py_XDECREF(rname);
            Py_XDECREF(nc);
            if (res == NULL) {
                Py_DECREF(tracer);
                goto grant_fail;
            }
            Py_DECREF(res);
        }
        Py_DECREF(tracer);

        if (has_link) {
            if (call_discard(link, str_send, engine, packet) < 0)
                goto grant_fail;
        }
        else {
            PyObject *io = PyLong_FromSsize_t(index);
            if (io == NULL)
                goto grant_fail;
            PyObject *res = PyObject_CallMethodObjArgs(
                port, str_dispatch, engine, packet, io, NULL);
            Py_DECREF(io);
            if (res == NULL)
                goto grant_fail;
            Py_DECREF(res);
        }

        /* hand the freed slot upstream: link credit or local drain */
        PyObject *upstream;
        if (Py_IS_TYPE(queue, &NativeQueue_Type)) {
            upstream = ((NativeQueue *)queue)->upstream_link;
            upstream = upstream ? upstream : Py_None;
            Py_INCREF(upstream);
        }
        else {
            upstream = PyObject_GetAttr(queue, str_upstream_link);
            if (upstream == NULL)
                goto grant_fail;
        }
        if (upstream != Py_None) {
            int rc = call_discard(upstream, str_return_credit, engine,
                                  NULL);
            Py_DECREF(upstream);
            if (rc < 0)
                goto grant_fail;
        }
        else {
            Py_DECREF(upstream);
            PyObject *on_drain;
            if (Py_IS_TYPE(queue, &NativeQueue_Type)) {
                on_drain = ((NativeQueue *)queue)->on_drain;
                on_drain = on_drain ? on_drain : Py_None;
                Py_INCREF(on_drain);
            }
            else {
                on_drain = PyObject_GetAttr(queue, str_on_drain);
                if (on_drain == NULL)
                    goto grant_fail;
            }
            if (on_drain != Py_None) {
                PyObject *res = PyObject_CallFunctionObjArgs(on_drain,
                                                             engine, NULL);
                Py_DECREF(on_drain);
                if (res == NULL)
                    goto grant_fail;
                Py_DECREF(res);
            }
            else
                Py_DECREF(on_drain);
        }

        /* the pop exposed a new head; a different output needs its own
         * arbitration round once this one settles */
        PyObject *new_key;
        if (Py_IS_TYPE(queue, &NativeQueue_Type)) {
            new_key = ((NativeQueue *)queue)->head_key;
            new_key = new_key ? new_key : Py_None;
            Py_INCREF(new_key);
        }
        else {
            new_key = PyObject_GetAttr(queue, str_head_key);
            if (new_key == NULL)
                goto grant_fail;
        }
        int head_same;
        if (new_key == key)
            head_same = 1;
        else if (new_key == Py_None)
            head_same = 0;
        else {
            head_same = PyObject_RichCompareBool(new_key, key, Py_EQ);
            if (head_same < 0) {
                Py_DECREF(new_key);
                goto grant_fail;
            }
        }
        if (!head_same && new_key != Py_None) {
            if (retry == NULL) {
                retry = PyList_New(0);
                if (retry == NULL) {
                    Py_DECREF(new_key);
                    goto grant_fail;
                }
            }
            int c = PySequence_Contains(retry, new_key);
            if (c < 0 || (!c && PyList_Append(retry, new_key) < 0)) {
                Py_DECREF(new_key);
                goto grant_fail;
            }
        }
        Py_DECREF(new_key);
        Py_DECREF(queue);
        Py_DECREF(packet);

        if (has_link) {
            int dead = 0;
            int blocked = link_blocked(link, now, &dead);
            if (blocked < 0) {
                Py_DECREF(now_obj);
                goto done;
            }
            if (blocked) {
                /* The send serialized the channel (or spent the last
                 * credit): the round is over.  Remaining demand is the
                 * unpicked candidates plus the popped queue's new
                 * head — register the wake-up instead of rescanning. */
                if (n_cand > 1 || head_same) {
                    if (!dead) {
                        PyObject *channel = PyObject_GetAttr(link,
                                                             str_channel);
                        if (channel == NULL) {
                            Py_DECREF(now_obj);
                            goto done;
                        }
                        int rc = call_discard(channel, str_wake_when_idle,
                                              engine, link);
                        Py_DECREF(channel);
                        if (rc < 0) {
                            Py_DECREF(now_obj);
                            goto done;
                        }
                    }
                }
                Py_DECREF(now_obj);
                break;
            }
        }
        Py_DECREF(now_obj);
        continue;  /* local ports (and zero-occupancy links) rescan */

scan_fail:
        for (Py_ssize_t i = 0; i < n_cand; i++)
            Py_DECREF(heads[i]);
        Py_DECREF(now_obj);
        goto done;
scan_fail2:
        for (Py_ssize_t i = 0; i < n_pick; i++)
            Py_DECREF(heads[i]);
        Py_DECREF(now_obj);
        goto done;
grant_fail:
        Py_DECREF(queue);
        Py_DECREF(packet);
        Py_DECREF(now_obj);
        goto done;
    }

    result = 0;
    if (retry != NULL) {
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(retry); i++) {
            if (router_try_output(router, engine,
                                  PyList_GET_ITEM(retry, i)) < 0) {
                result = -1;
                break;
            }
        }
    }
done:
    Py_XDECREF(retry);
    Py_XDECREF(grants);
    Py_XDECREF(inputs);
    Py_XDECREF(entry);
    return result;
}

static PyObject *
mod_router_try_output(PyObject *module, PyObject *const *args,
                      Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "router_try_output(router, engine, key)");
        return NULL;
    }
    if (router_try_output(args[0], args[1], args[2]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
mod_router_packet_arrived(PyObject *module, PyObject *const *args,
                          Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "router_packet_arrived(router, engine, queue)");
        return NULL;
    }
    PyObject *router = args[0], *engine = args[1], *queue = args[2];
    /* Only a push that lands at the head can change an arbitration
     * outcome (see router.py); deeper pushes are parked behind it. */
    PyObject *head_key;
    Py_ssize_t depth;
    if (Py_IS_TYPE(queue, &NativeQueue_Type)) {
        NativeQueue *q = (NativeQueue *)queue;
        depth = q->items ? PyList_GET_SIZE(q->items) : 0;
        head_key = q->head_key ? q->head_key : Py_None;
        Py_INCREF(head_key);
    }
    else {
        PyObject *items = PyObject_GetAttr(queue, str_items);
        if (items == NULL)
            return NULL;
        depth = PySequence_Size(items);
        Py_DECREF(items);
        if (depth < 0)
            return NULL;
        head_key = PyObject_GetAttr(queue, str_head_key);
        if (head_key == NULL)
            return NULL;
    }
    if (depth != 1) {
        Py_DECREF(head_key);
        Py_RETURN_NONE;
    }
    int rc = router_try_output(router, engine, head_key);
    Py_DECREF(head_key);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
mod_router_has_response_head(PyObject *module, PyObject *const *args,
                             Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "router_has_response_head(router, key)");
        return NULL;
    }
    PyObject *inputs = PyObject_GetAttr(args[0], str_inputs);
    if (inputs == NULL)
        return NULL;
    if (!PyList_Check(inputs)) {
        Py_DECREF(inputs);
        PyErr_SetString(PyExc_TypeError, "router.inputs must be a list");
        return NULL;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(inputs); i++) {
        PyObject *q = PyList_GET_ITEM(inputs, i);
        int m = queue_key_matches(q, args[1]);
        if (m < 0)
            goto fail;
        if (!m)
            continue;
        PyObject *head = queue_head_packet(q);
        if (head == NULL) {
            if (PyErr_Occurred())
                goto fail;
            /* matching head_key over an empty queue: router.py would
             * raise IndexError here; match it */
            PyErr_SetString(PyExc_IndexError, "list index out of range");
            goto fail;
        }
        PyObject *flag = PyObject_GetAttr(head, str_is_resp);
        Py_DECREF(head);
        if (flag == NULL)
            goto fail;
        int is_resp = PyObject_IsTrue(flag);
        Py_DECREF(flag);
        if (is_resp < 0)
            goto fail;
        if (is_resp) {
            Py_DECREF(inputs);
            Py_RETURN_TRUE;
        }
    }
    Py_DECREF(inputs);
    Py_RETURN_FALSE;
fail:
    Py_DECREF(inputs);
    return NULL;
}

/* ================================================================== */
/* module                                                              */
/* ================================================================== */

static PyMethodDef module_methods[] = {
    {"router_try_output",
     (PyCFunction)(void (*)(void))mod_router_try_output, METH_FASTCALL,
     "Compiled Router._try_output arbitration round for one output."},
    {"router_packet_arrived",
     (PyCFunction)(void (*)(void))mod_router_packet_arrived, METH_FASTCALL,
     "Compiled Router.packet_arrived (head-only arbitration trigger)."},
    {"router_has_response_head",
     (PyCFunction)(void (*)(void))mod_router_has_response_head,
     METH_FASTCALL,
     "Compiled Router.has_response_head (response-priority probe)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._native",
    .m_doc = "Compiled engine + network inner loop (Engine(\"native\")).",
    .m_size = -1,
    .m_methods = module_methods,
};

static PyObject *
import_attr(const char *module, const char *attr)
{
    PyObject *mod = PyImport_ImportModule(module);
    if (mod == NULL)
        return NULL;
    PyObject *obj = PyObject_GetAttrString(mod, attr);
    Py_DECREF(mod);
    return obj;
}

PyMODINIT_FUNC
PyInit__native(void)
{
    SimulationError = import_attr("repro.errors", "SimulationError");
    if (SimulationError == NULL)
        return NULL;
    segment_code_fn = import_attr("repro.obs.attribution", "segment_code");
    if (segment_code_fn == NULL)
        return NULL;

    str_qualname = PyUnicode_InternFromString("__qualname__");
    str_engine_event = PyUnicode_InternFromString("engine_event");
    str_queue_depth = PyUnicode_InternFromString("queue_depth");
    str_route = PyUnicode_InternFromString("route");
    str_hop_index = PyUnicode_InternFromString("hop_index");
    str_transaction = PyUnicode_InternFromString("transaction");
    str_segments = PyUnicode_InternFromString("segments");
    str_is_xfer = PyUnicode_InternFromString("is_xfer");
    str_is_req = PyUnicode_InternFromString("is_req");
    str_append = PyUnicode_InternFromString("append");
    long_neg_one = PyLong_FromLong(-1);
    long_one = PyLong_FromLong(1);
    if (str_qualname == NULL || str_engine_event == NULL ||
        str_queue_depth == NULL || str_route == NULL ||
        str_hop_index == NULL || str_transaction == NULL ||
        str_segments == NULL || str_is_xfer == NULL ||
        str_is_req == NULL || str_append == NULL || long_neg_one == NULL ||
        long_one == NULL)
        return NULL;

    static struct {
        PyObject **slot;
        const char *text;
    } router_names[] = {
        {&str_now, "now"},
        {&str_dead, "dead"},
        {&str_channel, "channel"},
        {&str_busy_until, "_busy_until"},
        {&str_credits, "_credits"},
        {&str_is_resp, "is_resp"},
        {&str_request_wakeup, "request_wakeup"},
        {&str_pick, "pick"},
        {&str_grants, "grants"},
        {&str_can_accept, "can_accept"},
        {&str_send, "send"},
        {&str_dispatch, "dispatch"},
        {&str_upstream_link, "upstream_link"},
        {&str_on_drain, "on_drain"},
        {&str_return_credit, "return_credit"},
        {&str_router_grant, "router_grant"},
        {&str_wake_when_idle, "wake_when_idle"},
        {&str_ports, "_ports"},
        {&str_inputs, "inputs"},
        {&str_response_priority, "response_priority"},
        {&str_name, "name"},
        {&str_head_key, "head_key"},
        {&str_items, "_items"},
        {&str_pop, "pop"},
        {&str_tracer, "tracer"},
        {NULL, NULL},
    };
    for (int i = 0; router_names[i].slot != NULL; i++) {
        *router_names[i].slot =
            PyUnicode_InternFromString(router_names[i].text);
        if (*router_names[i].slot == NULL)
            return NULL;
    }

    if (PyType_Ready(&NativeEngine_Type) < 0)
        return NULL;
    if (PyType_Ready(&NativeQueue_Type) < 0)
        return NULL;

    PyObject *module = PyModule_Create(&native_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&NativeEngine_Type);
    if (PyModule_AddObject(module, "NativeEngine",
                           (PyObject *)&NativeEngine_Type) < 0) {
        Py_DECREF(&NativeEngine_Type);
        Py_DECREF(module);
        return NULL;
    }
    Py_INCREF(&NativeQueue_Type);
    if (PyModule_AddObject(module, "NativeQueue",
                           (PyObject *)&NativeQueue_Type) < 0) {
        Py_DECREF(&NativeQueue_Type);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
