"""Cohort-execution engine: ``Engine("batch")``.

The batch engine keeps the wheel's O(1) far-tier filing but replaces
the near tier's binary heap with a *sorted window* consumed by a
cursor.  A refill promotes one or more consecutive far buckets, sorts
them once with timsort, and then dispatch is a plain index walk —
same-timestamp cohorts are drained back-to-back with no per-event heap
maintenance.  Events that callbacks schedule *into* the current window
(re-entrant wake-ups, zero-delay retries) land in a small *spill* heap
that is merged at the head by a single tuple comparison; in the common
case the spill is empty and dispatch is ``window[cursor]``.

Why cohorts are drained in ``(time, seq)`` order rather than reordered
into per-kind phases: two same-timestamp deliveries into one router are
*not* commutative — the round-robin arbiter pointer advances on every
grant, so swapping them changes every later arbitration decision.  The
determinism contract (heap == wheel == batch, bit-identical digests
against the golden corpus) therefore pins the intra-cohort order; the
batching win comes from amortizing scheduler work across the cohort
(one sort per window, cursor dispatch, vectorized cohort accounting),
not from reordering it.

Cohort-size statistics are accumulated into a preallocated numpy
histogram with vectorized ``bincount`` updates at refill time — zero
work in the dispatch loop itself.  ``benchmarks/bench_engine.py``
reports the distribution so batching wins stay explainable.

numpy is an optional dependency (the ``batch`` extra in
``pyproject.toml``); constructing a :class:`BatchEngine` without it
raises a :class:`~repro.errors.SimulationError` that says how to get
it, and the pure-Python ``wheel``/``heap`` paths never import numpy.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import NEAR_TARGET, WHEEL_SHIFT, Engine

try:  # pragma: no cover - exercised via the import-error unit test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Cohort sizes at or above this land in the histogram's overflow bin.
COHORT_HIST_MAX = 64


class BatchEngine(Engine):
    """Sorted-window cohort scheduler behind the :class:`Engine` API.

    Construct via ``Engine("batch")`` (or ``REPRO_ENGINE=batch``); the
    base class dispatches here so callers never import this module —
    and never pay the numpy import — unless they ask for it.
    """

    __slots__ = ("_window", "_cursor", "_spill", "_spilled", "_windows",
                 "_cohort_counts", "_cohort_hist")

    def __init__(self, scheduler: Optional[str] = None) -> None:
        if scheduler is None:
            scheduler = "batch"
        if scheduler != "batch":
            raise ValueError(f"BatchEngine only supports 'batch', got {scheduler!r}")
        if _np is None:
            raise SimulationError(
                "Engine('batch') requires numpy, which is not installed. "
                "Install the optional extra (pip install 'repro[batch]') "
                "or pick the pure-Python Engine('wheel') / Engine('heap')."
            )
        self.scheduler = "batch"
        self._near = []  # unused; kept so base-class introspection is safe
        self._near_bound = 0
        self._far = {}
        self._bucket_heap = []
        self.now = 0
        self._seq = 0
        self._pending = 0
        self._events_processed = 0
        self._running = False
        self._tracer = None
        self._refills = 0
        self._promoted = 0
        self._collapsed = True  # the wheel's collapse heuristic never applies
        self._stop = False  # request_stop() latch (see Engine)
        self._window: list = []
        self._cursor: int = 0
        self._spill: list = []
        self._spilled: int = 0
        self._windows: int = 0
        # Cohort accounting: refills accumulate run lengths into the
        # preallocated staging counters; they are folded into the numpy
        # histogram in bulk (one vectorized add per fold, see
        # _fold_cohorts) so small windows never pay per-window numpy
        # call overhead.
        self._cohort_counts = [0] * (COHORT_HIST_MAX + 1)
        self._cohort_hist = _np.zeros(COHORT_HIST_MAX + 1, dtype=_np.int64)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _push(self, time: int, callback: Callable, args: tuple) -> None:
        if time < self._near_bound:
            # Into the live window's time range: the window list is
            # sorted and mid-consumption, so late arrivals go to the
            # spill heap and are merged at the head during dispatch.
            heappush(self._spill, (time, self._seq, callback, args))
            self._spilled += 1
        else:
            index = time >> WHEEL_SHIFT
            bucket = self._far.get(index)
            if bucket is None:
                self._far[index] = [(time, self._seq, callback, args)]
                heappush(self._bucket_heap, index)
            else:
                bucket.append((time, self._seq, callback, args))
        self._seq += 1
        self._pending += 1

    def _refill(self) -> bool:
        """Promote far buckets into a fresh sorted window.

        Auto-sized exactly like the wheel (consecutive buckets until
        :data:`~repro.sim.engine.NEAR_TARGET` events), but the window
        is sorted once instead of heapified: dispatch then walks it by
        index, and same-timestamp cohorts sit adjacent — their size
        distribution is folded into the numpy histogram right here,
        with zero accounting left in the dispatch loop.
        """
        bucket_heap = self._bucket_heap
        if not bucket_heap:
            self._window = []
            self._cursor = 0
            return False
        index = heappop(bucket_heap)
        events = self._far.pop(index)
        while len(events) < NEAR_TARGET and bucket_heap:
            if bucket_heap[0] != index + 1:
                break
            index = heappop(bucket_heap)
            events.extend(self._far.pop(index))
        self._near_bound = (index + 1) << WHEEL_SHIFT
        # (time, seq) pairs are unique, so tuple comparison never falls
        # through to the (unorderable) callback in position 2.
        events.sort()
        self._window = events
        self._cursor = 0
        self._windows += 1
        # Same-timestamp cohorts sit adjacent after the sort; count the
        # run lengths into the staging counters.
        counts = self._cohort_counts
        run_time = events[0][0]
        run = 0
        for event in events:
            time = event[0]
            if time == run_time:
                run += 1
            else:
                counts[run if run < COHORT_HIST_MAX else COHORT_HIST_MAX] += 1
                run_time = time
                run = 1
        counts[run if run < COHORT_HIST_MAX else COHORT_HIST_MAX] += 1
        return True

    def _fold_cohorts(self) -> "_np.ndarray":
        """Fold staged cohort counters into the numpy histogram."""
        counts = self._cohort_counts
        if any(counts):
            self._cohort_hist += _np.asarray(counts, dtype=_np.int64)
            self._cohort_counts = [0] * (COHORT_HIST_MAX + 1)
        return self._cohort_hist

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """See :meth:`Engine.run`; identical dispatch order, by design."""
        if self._tracer is not None:
            return self._run_traced(until, max_events, stop_when)
        if until is not None or max_events is not None or stop_when is not None:
            return self._run_bounded(until, max_events, stop_when)
        processed = 0
        pop = heappop
        self._running = True
        try:
            # The spill list object is stable (heappush mutates in
            # place); the window object is swapped only by _refill,
            # which runs between inner loops.
            spill = self._spill
            while True:
                window = self._window
                wlen = len(window)
                cursor = self._cursor
                while True:
                    if spill:
                        if cursor < wlen and window[cursor] < spill[0]:
                            event = window[cursor]
                            cursor += 1
                        else:
                            event = pop(spill)
                    elif cursor < wlen:
                        event = window[cursor]
                        cursor += 1
                    else:
                        break
                    # Commit the cursor before dispatching: callbacks
                    # may audit the engine (RAS quiesce does), and the
                    # consumed window prefix must already look consumed.
                    self._cursor = cursor
                    self.now = event[0]
                    event[2](self, *event[3])
                    processed += 1
                    if self._stop:
                        self._stop = False
                        return processed
                if not self._refill():
                    return processed
        finally:
            self._pending -= processed
            self._events_processed += processed
            self._running = False

    def _run_bounded(
        self,
        until: Optional[int],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> int:
        processed = 0
        pop = heappop
        bounded = until is not None
        limited = max_events is not None
        self._running = True
        try:
            spill = self._spill
            while True:
                window = self._window
                wlen = len(window)
                cursor = self._cursor
                while True:
                    from_window = True
                    if spill:
                        if cursor < wlen and window[cursor] < spill[0]:
                            event = window[cursor]
                        else:
                            event = spill[0]
                            from_window = False
                    elif cursor < wlen:
                        event = window[cursor]
                    else:
                        break
                    if bounded and event[0] > until:
                        self.now = until
                        return processed
                    if from_window:
                        cursor += 1
                        # Committed pre-dispatch: callbacks may audit.
                        self._cursor = cursor
                    else:
                        pop(spill)
                    self.now = event[0]
                    event[2](self, *event[3])
                    processed += 1
                    if limited and processed >= max_events:
                        self._pending -= processed
                        self._events_processed += processed
                        processed = 0  # flushed; no double-count in finally
                        raise SimulationError(
                            f"event limit {max_events} exceeded at "
                            f"t={self.now}; likely livelock"
                        )
                    if stop_when is not None and stop_when():
                        return processed
                    if self._stop:
                        self._stop = False
                        return processed
                if not self._refill():
                    if bounded and until > self.now:
                        self.now = until
                    return processed
        finally:
            self._pending -= processed
            self._events_processed += processed
            self._running = False

    def _run_traced(
        self,
        until: Optional[int],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> int:
        tracer = self._tracer
        processed = 0
        bounded = until is not None
        limited = max_events is not None
        self._running = True
        try:
            while True:
                head_time = self._peek_time()
                if head_time is None:
                    if bounded and until > self.now:
                        self.now = until
                    return processed
                if bounded and head_time > until:
                    self.now = until
                    return processed
                time, _seq, callback, args = self._pop_event()
                self.now = time
                tracer.engine_event(
                    time, getattr(callback, "__qualname__", repr(callback))
                )
                callback(self, *args)
                processed += 1
                if limited and processed >= max_events:
                    self._pending -= processed
                    self._events_processed += processed
                    processed = 0  # flushed; no double-count in finally
                    raise SimulationError(
                        f"event limit {max_events} exceeded at t={self.now}; "
                        "likely livelock"
                    )
                if stop_when is not None and stop_when():
                    return processed
                if self._stop:
                    self._stop = False
                    return processed
        finally:
            self._pending -= processed
            self._events_processed += processed
            self._running = False

    def _peek_time(self) -> Optional[int]:
        while True:
            window, cursor, spill = self._window, self._cursor, self._spill
            if cursor < len(window):
                head = window[cursor][0]
                if spill and spill[0][0] < head:
                    return spill[0][0]
                return head
            if spill:
                return spill[0][0]
            if not self._refill():
                return None

    def _pop_event(self) -> tuple:
        """Remove and return the earliest event; callers peeked first."""
        window, cursor, spill = self._window, self._cursor, self._spill
        if cursor < len(window):
            if spill and spill[0] < window[cursor]:
                return heappop(spill)
            self._cursor = cursor + 1
            return window[cursor]
        return heappop(spill)

    # ------------------------------------------------------------------
    # cohort observability
    # ------------------------------------------------------------------
    def cohort_stats(self) -> dict:
        """Cohort-size distribution and window/spill counters.

        ``histogram`` maps cohort size (number of same-timestamp events
        adjacent in a sorted window; sizes >= :data:`COHORT_HIST_MAX`
        are folded into the last bin) to occurrence count.  Spill-heap
        events are counted separately — they are the re-entrant
        arrivals that could not be batched into their window.
        """
        cohort_hist = self._fold_cohorts()
        hist = {
            int(size): int(count)
            for size, count in enumerate(cohort_hist)
            if count
        }
        cohorts = int(cohort_hist.sum())
        batched = int((cohort_hist * _np.arange(cohort_hist.size)).sum())
        return {
            "histogram": hist,
            "cohorts": cohorts,
            "windows": self._windows,
            "batched_events": batched,
            "spilled_events": self._spilled,
            "mean_cohort": (batched / cohorts) if cohorts else 0.0,
        }

    # ------------------------------------------------------------------
    # integrity introspection (repro.check)
    # ------------------------------------------------------------------
    def integrity_errors(self) -> list:
        """Batch-engine variant of :meth:`Engine.integrity_errors`.

        Same contract; additionally checks that the live window really
        is sorted past the cursor and that spill events fall inside the
        window's time range (below the near boundary).
        """
        problems: list = []
        live = len(self._window) - self._cursor
        queued = live + len(self._spill) + sum(len(b) for b in self._far.values())
        self._check_pending(problems, queued)
        heap_indices = sorted(self._bucket_heap)
        far_indices = sorted(self._far)
        if heap_indices != far_indices:
            problems.append(
                f"bucket heap {heap_indices} disagrees with far buckets "
                f"{far_indices} (stale or unreachable wheel entry)"
            )
        elif len(set(heap_indices)) != len(heap_indices):
            problems.append(f"duplicate bucket indices in heap: {heap_indices}")
        tail = self._window[self._cursor:]
        for prev, event in zip(tail, tail[1:]):
            if event[:2] < prev[:2]:
                problems.append(
                    f"window not sorted: t={event[0]} after t={prev[0]}"
                )
                break
        for time, _seq, _cb, _args in tail:
            if time < self.now:
                problems.append(f"window event at t={time} is before now={self.now}")
                break
        for time, _seq, _cb, _args in self._spill:
            if time < self.now:
                problems.append(f"spill event at t={time} is before now={self.now}")
                break
            if time >= self._near_bound:
                problems.append(
                    f"spill event at t={time} belongs beyond the boundary "
                    f"{self._near_bound}"
                )
                break
        self._check_far(problems)
        return problems

    def drain(self) -> None:
        self._window.clear()
        self._cursor = 0
        self._spill.clear()
        self._far.clear()
        self._bucket_heap.clear()
        self._pending = 0
