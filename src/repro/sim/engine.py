"""Event scheduler with an integer picosecond clock."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Engine:
    """A deterministic discrete-event scheduler.

    Events are ``(time, sequence, callback, args)`` tuples ordered by
    time and, for equal times, by scheduling order.  Callbacks receive
    the engine as their first argument so components do not need to
    close over it.

    Example
    -------
    >>> engine = Engine()
    >>> fired = []
    >>> engine.schedule(5, lambda eng: fired.append(eng.now))
    >>> engine.run()
    >>> fired
    [5]
    """

    __slots__ = ("_queue", "_now", "_seq", "_events_processed", "_running", "_tracer")

    def __init__(self) -> None:
        self._queue: list = []
        self._now: int = 0
        self._seq: int = 0
        self._events_processed: int = 0
        self._running = False
        self._tracer = None

    def set_tracer(self, tracer) -> None:
        """Record every event dispatch into ``tracer`` (repro.obs).

        Tracing swaps :meth:`run` onto a separate dispatch loop; with no
        tracer attached the hot loops are untouched (one ``None`` check
        per *run call*, not per event — the zero-overhead guard).
        """
        self._tracer = tracer

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the queue."""
        return len(self._queue)

    def schedule(self, delay: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(engine, *args)`` after ``delay`` ps."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} scheduled at t={self._now}")
        self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(engine, *args)`` at absolute ``time`` ps."""
        if time < self._now:
            raise SimulationError(
                f"event scheduled in the past: t={time} < now={self._now}"
            )
        heapq.heappush(self._queue, (time, self._seq, callback, args))
        self._seq += 1

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run until the queue drains, ``until`` is reached, or a limit hits.

        Parameters
        ----------
        until:
            Absolute time bound (inclusive).  Events scheduled later stay
            queued and ``now`` advances to ``until``.
        max_events:
            Safety valve against runaway simulations.
        stop_when:
            Optional predicate checked after every event; the run stops
            as soon as it returns True.

        Returns the number of events processed during this call.
        """
        # This loop dominates every simulation's wall-clock time, so the
        # queue and heappop are bound to locals and the optional-bound
        # checks are hoisted out of the common path.
        if self._tracer is not None:
            return self._run_traced(until, max_events, stop_when)
        processed = 0
        queue = self._queue
        pop = heapq.heappop
        self._running = True
        try:
            if until is None and max_events is None and stop_when is None:
                # fast path: run the queue dry, no per-event bound checks
                while queue:
                    time, _seq, callback, args = pop(queue)
                    self._now = time
                    callback(self, *args)
                    processed += 1
                return processed
            bounded = until is not None
            limited = max_events is not None
            while queue:
                if bounded and queue[0][0] > until:
                    self._now = until
                    break
                time, _seq, callback, args = pop(queue)
                self._now = time
                callback(self, *args)
                processed += 1
                if limited and processed >= max_events:
                    self._events_processed += processed
                    processed = 0  # flushed; avoid double-count in finally
                    raise SimulationError(
                        f"event limit {max_events} exceeded at t={self._now}; "
                        "likely livelock"
                    )
                if stop_when is not None and stop_when():
                    break
            else:
                if bounded and until > self._now:
                    self._now = until
            return processed
        finally:
            self._events_processed += processed
            self._running = False

    def _run_traced(
        self,
        until: Optional[int],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> int:
        """The :meth:`run` loop with per-event trace emission.

        Kept out of line so the untraced loops stay check-free; trace
        runs are diagnostic and not performance-sensitive.
        """
        tracer = self._tracer
        processed = 0
        queue = self._queue
        pop = heapq.heappop
        bounded = until is not None
        limited = max_events is not None
        self._running = True
        try:
            while queue:
                if bounded and queue[0][0] > until:
                    self._now = until
                    break
                time, _seq, callback, args = pop(queue)
                self._now = time
                tracer.engine_event(
                    time, getattr(callback, "__qualname__", repr(callback))
                )
                callback(self, *args)
                processed += 1
                if limited and processed >= max_events:
                    self._events_processed += processed
                    processed = 0  # flushed; avoid double-count in finally
                    raise SimulationError(
                        f"event limit {max_events} exceeded at t={self._now}; "
                        "likely livelock"
                    )
                if stop_when is not None and stop_when():
                    break
            else:
                if bounded and until > self._now:
                    self._now = until
            return processed
        finally:
            self._events_processed += processed
            self._running = False

    def drain(self) -> None:
        """Discard all pending events (used to tear a system down)."""
        self._queue.clear()
