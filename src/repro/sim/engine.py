"""Event scheduler with an integer picosecond clock.

Three schedulers live behind one API:

* ``wheel`` (the default) — a deterministic two-tier structure.  The
  *near* tier is a binary heap covering ``[now, boundary)``; everything
  at or beyond the boundary lands in hashed timing-wheel buckets of
  ``2**WHEEL_SHIFT`` ps in O(1), with a heapq of bucket indices as the
  far-future overflow tier.  When the near tier drains, consecutive
  buckets are promoted and heapified wholesale until the near tier
  holds :data:`NEAR_TARGET` events — the near horizon auto-sizes to the
  observed event density.  A wheel whose buckets stay sparse is pure
  overhead, so after :data:`COLLAPSE_REFILLS` refills with mean
  occupancy below :data:`COLLAPSE_DENSITY` events the wheel *collapses*
  into the single-heap mode for the rest of the run (dispatch order is
  unaffected — both structures pop in exact ``(time, seq)`` order).
* ``heap`` — the classic single heapq over all events, kept as the
  determinism reference.  It is the wheel with an infinite near
  boundary, so both modes share every code path and dispatch events in
  exactly the same ``(time, seq)`` order.
* ``batch`` — the cohort-execution engine (:mod:`repro.sim.batch`):
  far-tier buckets are consumed by sorting them once and walking a
  cursor, same-timestamp event cohorts are drained together, and
  cohort-size statistics are kept in preallocated numpy arrays.
  Requires numpy; ``Engine("batch")`` raises a clear error without it.

Events are ``(time, sequence, callback, args)`` tuples ordered by time
and, for equal times, by scheduling order — bit-identical results
regardless of scheduler mode.  The scheduler choice is therefore *not*
part of any job digest (see :mod:`repro.runner.job`); it may be picked
ambiently via the ``REPRO_ENGINE`` environment variable, which also
reaches runner worker processes.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: Width of one timing-wheel bucket in picoseconds (2**12 = 4096 ps).
#: Link serialization plus SerDes latency is ~4-6 ns in every paper
#: configuration, so the bulk of scheduled events cross the bucket
#: boundary and take the O(1) far-tier insert.
WHEEL_SHIFT = 12

#: Refill auto-sizing: promote consecutive far buckets until the near
#: heap holds at least this many events, so sparse schedules do not pay
#: one refill per handful of events.
NEAR_TARGET = 64

#: After this many refills the wheel reviews its own usefulness ...
COLLAPSE_REFILLS = 8
#: ... and folds into a plain heap when the mean number of events
#: promoted per refill is below this density.  A sparse wheel pays
#: bucket bookkeeping per event and saves nothing over heappush.
COLLAPSE_DENSITY = 24

#: Valid scheduler names, in documentation order.
SCHEDULERS = ("wheel", "heap", "batch", "native")

#: Environment variable selecting the ambient default scheduler (used
#: when an Engine is built without an explicit choice — including the
#: engines built inside runner worker processes).
ENGINE_ENV = "REPRO_ENGINE"

_NO_ARGS: tuple = ()


def backend_status() -> str:
    """One line naming the valid backends and whether the optional ones
    are usable here — appended to every unknown-backend error."""
    from importlib.util import find_spec

    try:
        batch = "numpy installed" if find_spec("numpy") else "numpy missing"
    except (ImportError, ValueError):  # pragma: no cover - exotic loaders
        batch = "numpy missing"
    from repro.sim import native

    built = "extension built" if native.available() else "extension not built"
    return (
        "valid backends: 'wheel', 'heap', "
        f"'batch' ({batch}), 'native' ({built})"
    )


def default_scheduler() -> str:
    """The ambient scheduler: ``$REPRO_ENGINE``, else ``wheel``."""
    env = os.environ.get(ENGINE_ENV)
    if not env:
        return "wheel"
    if env not in SCHEDULERS:
        raise SimulationError(
            f"unknown {ENGINE_ENV}={env!r}; " + backend_status()
        )
    return env


_ambient_native_warned = False


def _ambient_native_fallback() -> None:
    """Warn once when ``REPRO_ENGINE=native`` is set but the compiled
    extension is not built; the run proceeds on ``wheel``.  An env var
    set fleet-wide must not break machines without a compiler — only an
    *explicit* ``Engine("native")`` raises."""
    global _ambient_native_warned
    if _ambient_native_warned:
        return
    _ambient_native_warned = True
    import warnings

    from repro.sim.native import BUILD_HINT

    warnings.warn(
        f"{ENGINE_ENV}=native but the compiled engine is not built; "
        "falling back to the 'wheel' scheduler — " + BUILD_HINT,
        RuntimeWarning,
        stacklevel=3,
    )


class Engine:
    """A deterministic discrete-event scheduler.

    Example
    -------
    >>> engine = Engine()
    >>> fired = []
    >>> engine.schedule(5, lambda eng: fired.append(eng.now))
    >>> engine.run()
    >>> fired
    [5]
    """

    __slots__ = (
        "_near",
        "_near_bound",
        "_far",
        "_bucket_heap",
        "now",
        "_seq",
        "_pending",
        "_events_processed",
        "_running",
        "_tracer",
        "_refills",
        "_promoted",
        "_collapsed",
        "_stop",
        "scheduler",
    )

    def __new__(cls, scheduler: Optional[str] = None):
        # ``Engine("batch")`` transparently builds the cohort engine (the
        # subclass carries the numpy dependency so the pure-Python
        # install path never imports it); ``Engine("native")`` builds
        # the compiled C scheduler the same way.  The native type is not
        # an Engine subclass, so returning it skips ``__init__``
        # entirely — exactly the duck-typed hand-off the runner and
        # system expect.
        if cls is Engine:
            choice = scheduler if scheduler is not None else default_scheduler()
            if choice == "batch":
                from repro.sim.batch import BatchEngine

                return object.__new__(BatchEngine)
            if choice == "native":
                from repro.sim import native

                if scheduler is None and not native.available():
                    # Ambient selection falls back to wheel (with one
                    # warning); __init__ resolves the same default and
                    # applies the same fallback below.
                    _ambient_native_fallback()
                    return object.__new__(cls)
                return native.load().NativeEngine()
        return object.__new__(cls)

    def __init__(self, scheduler: Optional[str] = None) -> None:
        if scheduler is None:
            scheduler = default_scheduler()
            if scheduler == "native":
                # Only reachable on the ambient fallback path: __new__
                # already warned that the extension is not built.
                scheduler = "wheel"
        if scheduler not in ("wheel", "heap"):
            # Unknown names land here (batch/native requests were
            # dispatched by __new__ before __init__ ran).
            raise SimulationError(
                f"unknown scheduler backend {scheduler!r}; " + backend_status()
            )
        self.scheduler = scheduler
        self._near: list = []
        # ``heap`` mode is the wheel with an unreachable boundary: every
        # event stays in the near heap and the far tier is never used.
        self._near_bound: float = 0 if scheduler == "wheel" else float("inf")
        self._far: dict = {}
        self._bucket_heap: list = []
        self.now: int = 0
        self._seq: int = 0
        self._pending: int = 0
        self._events_processed: int = 0
        self._running = False
        self._tracer = None
        # Wheel self-tuning state (never touched in heap mode).
        self._refills = 0
        self._promoted = 0
        self._collapsed = scheduler != "wheel"
        # request_stop() latch: consumed (cleared) by the run loop when
        # it honors the request, NOT cleared at run() entry — a stop
        # requested before run() begins (the zero-request edge) must
        # stop the run after its first event, exactly as the old
        # per-event ``stop_when`` predicate did.
        self._stop = False

    def request_stop(self) -> None:
        """Stop the active :meth:`run` once the event now dispatching
        completes.

        The deterministic replacement for a per-event ``stop_when``
        predicate: callers flip it from *inside* an event callback (the
        system does, when the last transaction completes), and the loop
        honors it at the same post-event boundary the predicate was
        checked at — dispatch order and stopping event are identical,
        without paying a Python-level predicate call per event.
        """
        self._stop = True

    def set_tracer(self, tracer) -> None:
        """Record every event dispatch into ``tracer`` (repro.obs).

        Tracing swaps :meth:`run` onto a separate dispatch loop; with no
        tracer attached the hot loops are untouched (one ``None`` check
        per *run call*, not per event — the zero-overhead guard).
        """
        self._tracer = tracer

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the queue."""
        return self._pending

    @property
    def collapsed(self) -> bool:
        """True once a sparse wheel folded itself into a plain heap."""
        return self._collapsed and self.scheduler == "wheel"

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(engine, *args)`` after ``delay`` ps."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} scheduled at t={self.now}")
        self._push(self.now + delay, callback, args)

    def schedule_at(self, time: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(engine, *args)`` at absolute ``time`` ps."""
        if time < self.now:
            raise SimulationError(
                f"event scheduled in the past: t={time} < now={self.now}"
            )
        self._push(time, callback, args)

    def schedule_bound(
        self, delay: int, callback: Callable, args: tuple = _NO_ARGS
    ) -> None:
        """Fast-path schedule for pre-validated callers.

        Skips the negative-delay branch and takes ``args`` as an already
        built tuple, letting hot components pool and reuse argument
        tuples instead of having them re-packed per call.  Callers must
        guarantee ``delay >= 0``.
        """
        self._push(self.now + delay, callback, args)

    def _push(self, time: int, callback: Callable, args: tuple) -> None:
        if time < self._near_bound:
            heappush(self._near, (time, self._seq, callback, args))
        else:
            index = time >> WHEEL_SHIFT
            bucket = self._far.get(index)
            if bucket is None:
                self._far[index] = [(time, self._seq, callback, args)]
                heappush(self._bucket_heap, index)
            else:
                bucket.append((time, self._seq, callback, args))
        self._seq += 1
        self._pending += 1

    def _refill(self) -> bool:
        """Promote far buckets into the near heap (auto-sized).

        Consecutive earliest buckets are promoted until the near tier
        holds :data:`NEAR_TARGET` events, then heapified once.  Returns
        False when no events remain anywhere.
        """
        bucket_heap = self._bucket_heap
        if not bucket_heap:
            return False
        index = heappop(bucket_heap)
        events = self._far.pop(index)
        while len(events) < NEAR_TARGET and bucket_heap:
            # Only contiguous buckets may join: a gap could otherwise
            # admit a not-yet-scheduled event below the new boundary.
            if bucket_heap[0] != index + 1:
                break
            index = heappop(bucket_heap)
            events.extend(self._far.pop(index))
        self._near_bound = (index + 1) << WHEEL_SHIFT
        self._refills += 1
        self._promoted += len(events)
        if (
            self._refills >= COLLAPSE_REFILLS
            and not self._collapsed
            and self._promoted < COLLAPSE_DENSITY * self._refills
        ):
            # The wheel is not earning its bookkeeping: fold every
            # remaining bucket into one heap and stop filing by bucket.
            # Dispatch order is unchanged — the heap pops the same
            # global (time, seq) order the buckets would have produced.
            self._collapsed = True
            for bucket in self._far.values():
                events.extend(bucket)
            self._far.clear()
            bucket_heap.clear()
            self._near_bound = float("inf")
        heapify(events)
        self._near = events
        return True

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run until the queue drains, ``until`` is reached, or a limit hits.

        Parameters
        ----------
        until:
            Absolute time bound (inclusive).  Events scheduled later stay
            queued and ``now`` advances to ``until``.
        max_events:
            Safety valve against runaway simulations.
        stop_when:
            Optional predicate checked after every event; the run stops
            as soon as it returns True.

        Returns the number of events processed during this call.
        """
        if self._tracer is not None:
            return self._run_traced(until, max_events, stop_when)
        if until is not None or max_events is not None or stop_when is not None:
            return self._run_bounded(until, max_events, stop_when)
        # Fast path: run the queue dry with no per-event bound checks.
        # This loop dominates every simulation's wall-clock time, so the
        # near heap and heappop are bound to locals.
        processed = 0
        pop = heappop
        self._running = True
        try:
            while True:
                # Callbacks can push but never swap the near list (only
                # _refill does, between inner loops), so the alias holds.
                near = self._near
                while near:
                    time, _seq, callback, args = pop(near)
                    self.now = time
                    callback(self, *args)
                    processed += 1
                    if self._stop:
                        self._stop = False
                        return processed
                if not self._refill():
                    return processed
        finally:
            self._pending -= processed
            self._events_processed += processed
            self._running = False

    def _peek_time(self) -> Optional[int]:
        """Earliest pending event time, promoting buckets as needed."""
        while not self._near:
            if not self._refill():
                return None
        return self._near[0][0]

    def _run_bounded(
        self,
        until: Optional[int],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> int:
        processed = 0
        pop = heappop
        bounded = until is not None
        limited = max_events is not None
        self._running = True
        try:
            # Callbacks can push but never swap the near list (only
            # _refill does, and only when it has drained), so the alias
            # stays valid across events.
            near = self._near
            while True:
                if not near:
                    if not self._refill():
                        if bounded and until > self.now:
                            self.now = until
                        return processed
                    near = self._near
                if bounded and near[0][0] > until:
                    self.now = until
                    return processed
                time, _seq, callback, args = pop(near)
                self.now = time
                callback(self, *args)
                processed += 1
                if limited and processed >= max_events:
                    self._pending -= processed
                    self._events_processed += processed
                    processed = 0  # flushed; avoid double-count in finally
                    raise SimulationError(
                        f"event limit {max_events} exceeded at t={self.now}; "
                        "likely livelock"
                    )
                if stop_when is not None and stop_when():
                    return processed
                if self._stop:
                    self._stop = False
                    return processed
        finally:
            self._pending -= processed
            self._events_processed += processed
            self._running = False

    def _run_traced(
        self,
        until: Optional[int],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> int:
        """The :meth:`run` loop with per-event trace emission.

        Kept out of line so the untraced loops stay check-free; trace
        runs are diagnostic and not performance-sensitive.
        """
        tracer = self._tracer
        processed = 0
        pop = heappop
        bounded = until is not None
        limited = max_events is not None
        self._running = True
        try:
            while True:
                head_time = self._peek_time()
                if head_time is None:
                    if bounded and until > self.now:
                        self.now = until
                    return processed
                if bounded and head_time > until:
                    self.now = until
                    return processed
                time, _seq, callback, args = pop(self._near)
                self.now = time
                tracer.engine_event(
                    time, getattr(callback, "__qualname__", repr(callback))
                )
                callback(self, *args)
                processed += 1
                if limited and processed >= max_events:
                    self._pending -= processed
                    self._events_processed += processed
                    processed = 0  # flushed; avoid double-count in finally
                    raise SimulationError(
                        f"event limit {max_events} exceeded at t={self.now}; "
                        "likely livelock"
                    )
                if stop_when is not None and stop_when():
                    return processed
                if self._stop:
                    self._stop = False
                    return processed
        finally:
            self._pending -= processed
            self._events_processed += processed
            self._running = False

    # ------------------------------------------------------------------
    # integrity introspection (repro.check)
    # ------------------------------------------------------------------
    def integrity_errors(self) -> list:
        """Audit the scheduler's internal bookkeeping (repro.check).

        Walks both tiers and returns a list of problem strings (empty
        when consistent).  Checked invariants:

        * the ``pending`` counter equals the number of queued events
          (a mismatch means an event was lost or smuggled in),
        * the far-tier bucket heap and bucket dict describe the same
          set of buckets, with no duplicates (a stale wheel entry —
          a bucket the refill loop can never reach — shows up here),
        * every queued event sits in the correct tier and bucket for
          its timestamp, and none is scheduled in the past.

        Cold path only: nothing here runs unless an auditor asks.
        """
        problems = []
        queued = len(self._near) + sum(len(b) for b in self._far.values())
        self._check_pending(problems, queued)
        heap_indices = sorted(self._bucket_heap)
        far_indices = sorted(self._far)
        if heap_indices != far_indices:
            problems.append(
                f"bucket heap {heap_indices} disagrees with far buckets "
                f"{far_indices} (stale or unreachable wheel entry)"
            )
        elif len(set(heap_indices)) != len(heap_indices):
            problems.append(f"duplicate bucket indices in heap: {heap_indices}")
        for time, _seq, _cb, _args in self._near:
            if time < self.now:
                problems.append(f"near event at t={time} is before now={self.now}")
                break
            if time >= self._near_bound:
                problems.append(
                    f"near event at t={time} belongs beyond the boundary "
                    f"{self._near_bound}"
                )
                break
        self._check_far(problems)
        return problems

    def _check_pending(self, problems: list, queued: int) -> None:
        if self._running:
            # Mid-dispatch the pending counter still includes events this
            # run() call already processed (it is settled in batch when
            # the loop exits), so only the lower bound can be checked.
            if queued > self._pending:
                problems.append(
                    f"pending counter {self._pending} below {queued} "
                    "queued events mid-dispatch"
                )
        elif queued != self._pending:
            problems.append(
                f"pending counter {self._pending} != {queued} queued events"
            )

    def _check_far(self, problems: list) -> None:
        for index, bucket in self._far.items():
            for time, _seq, _cb, _args in bucket:
                if time >> WHEEL_SHIFT != index:
                    problems.append(
                        f"far event at t={time} filed in bucket {index} "
                        f"(expected {time >> WHEEL_SHIFT})"
                    )
                    break
                if time < self.now:
                    problems.append(
                        f"far event at t={time} is before now={self.now}"
                    )
                    break

    def drain(self) -> None:
        """Discard all pending events (used to tear a system down)."""
        self._near.clear()
        self._far.clear()
        self._bucket_heap.clear()
        self._pending = 0
