"""Loader for the compiled scheduler backend (``Engine("native")``).

Mirrors how the ``batch`` extra handles numpy: the compiled artifact is
optional, the pure-Python install path never imports it, and asking
for it explicitly without the artifact present raises a
:class:`~repro.errors.SimulationError` that says how to get it.  The
ambient path (``REPRO_ENGINE=native`` in the environment) falls back
to the ``wheel`` scheduler with a one-time warning instead — an env
var set fleet-wide must not break machines without a compiler.

The extension is built in-tree (``python -m repro.sim.native_build``)
from ``_native.c``; no third-party packages are involved, so the
``native`` extra in ``pyproject.toml`` carries no dependencies — it
documents the opt-in and gives ``pip install 'repro[native]'`` a name.
"""

from __future__ import annotations

from repro.errors import SimulationError

BUILD_HINT = (
    "build it with `python -m repro.sim.native_build` (needs a C "
    "compiler and the CPython headers), or pick one of the pure-Python "
    "schedulers Engine('wheel') / Engine('heap')"
)

_module = None
_import_error: str = ""


def _try_import():
    """Import the compiled extension once; cache the outcome."""
    global _module, _import_error
    if _module is not None or _import_error:
        return _module
    try:
        from repro.sim import _native
    except ImportError as exc:
        _import_error = str(exc)
        return None
    _module = _native
    return _module


def available() -> bool:
    """True when the compiled extension is built and importable."""
    return _try_import() is not None


def load():
    """The compiled module, or a clear error naming the fix."""
    module = _try_import()
    if module is None:
        raise SimulationError(
            "Engine('native') requires the compiled extension, which is "
            f"not built ({_import_error}); " + BUILD_HINT
        )
    return module


def native_engine():
    """Construct a fresh compiled engine (``NativeEngine``)."""
    return load().NativeEngine()


def native_queue_class():
    """The compiled InputQueue replacement used by the native backend."""
    return load().NativeQueue


_router_cls = None


def native_router_class():
    """A Router whose arbitration loop runs in C.

    Only ``_try_output`` (the profile's hottest pure-Python frame) and
    its two head-probing entry points move to C; construction, RAS
    resynchronization, and every port/arbiter/tracer interaction stay
    on the Python classes, called back from C in the exact order the
    pure-Python loop performs them.
    """
    global _router_cls
    if _router_cls is None:
        module = load()
        from repro.net.router import Router

        class NativeRouter(Router):
            __slots__ = ()

            def _try_output(self, engine, key):
                module.router_try_output(self, engine, key)

            def packet_arrived(self, engine, queue):
                module.router_packet_arrived(self, engine, queue)

            def has_response_head(self, key):
                return module.router_has_response_head(self, key)

        _router_cls = NativeRouter
    return _router_cls
