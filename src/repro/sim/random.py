"""Seeded random streams.

Every stochastic component draws from its own :class:`RandomStream`
derived from a root seed and a string label, so adding a new random
consumer never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, *labels: str) -> int:
    """Derive a child seed from a root seed and a label path.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per process and unusable here).
    """
    h = hashlib.sha256()
    h.update(str(root_seed).encode("utf-8"))
    for label in labels:
        h.update(b"/")
        h.update(label.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


class RandomStream:
    """A named, independently seeded random number generator."""

    def __init__(self, root_seed: int, *labels: str) -> None:
        self.seed = derive_seed(root_seed, *labels)
        self.labels = labels
        self._rng = random.Random(self.seed)

    def random(self) -> float:
        return self._rng.random()

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi], inclusive."""
        return self._rng.randint(lo, hi)

    def randrange(self, n: int) -> int:
        return self._rng.randrange(n)

    def choice(self, seq):
        return self._rng.choice(seq)

    def expovariate(self, mean: float) -> float:
        """Exponentially distributed value with the given *mean*."""
        if mean <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    def geometric_run(self, mean_length: float) -> int:
        """Geometrically distributed run length with the given mean (>= 1)."""
        if mean_length <= 1.0:
            return 1
        p = 1.0 / mean_length
        length = 1
        while self._rng.random() > p:
            length += 1
            if length >= 1_000_000:  # guard against pathological parameters
                break
        return length

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def spawn(self, *labels: str) -> "RandomStream":
        """Create a child stream under this stream's namespace."""
        return RandomStream(self.seed, *labels)
