"""In-tree builder for the compiled engine (``Engine("native")``).

The native backend is a single hand-written CPython extension
(``_native.c``, no third-party dependencies) compiled next to its
source so a plain source checkout can opt in without any packaging
machinery::

    python -m repro.sim.native_build

Uses the C compiler the interpreter was built with (``sysconfig``'s
``CC``, falling back to ``cc``) plus the interpreter's own headers.
When no compiler is present the build fails with a clear message and
the simulator keeps working on the pure-Python schedulers —
:mod:`repro.sim.native` turns the missing artifact into a
:class:`~repro.errors.SimulationError` (explicit ``Engine("native")``)
or a fall-back to ``wheel`` (ambient ``REPRO_ENGINE=native``).
"""

from __future__ import annotations

import argparse
import shlex
import subprocess
import sys
import sysconfig
from pathlib import Path

SOURCE = Path(__file__).resolve().with_name("_native.c")


def target_path() -> Path:
    """Where the compiled extension lands (ABI-tagged, per interpreter)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return SOURCE.with_name("_native" + suffix)


def compiler_command() -> list:
    cc = sysconfig.get_config_var("CC") or "cc"
    return shlex.split(cc)


def build_command(out: Path) -> list:
    include = sysconfig.get_path("include")
    flags = ["-O2", "-fPIC", "-shared", "-fno-strict-aliasing"]
    return [
        *compiler_command(),
        *flags,
        f"-I{include}",
        str(SOURCE),
        "-o",
        str(out),
    ]


def is_fresh(out: Path) -> bool:
    try:
        return out.stat().st_mtime >= SOURCE.stat().st_mtime
    except OSError:
        return False


def build(force: bool = False, quiet: bool = False) -> Path:
    """Compile ``_native.c``; returns the artifact path.

    Raises :class:`RuntimeError` when the compiler is missing or the
    compile fails — callers (the loader, CI) decide whether that is
    fatal or just means "stay on the pure-Python schedulers".
    """
    out = target_path()
    if not force and is_fresh(out):
        if not quiet:
            print(f"native engine up to date: {out}")
        return out
    cmd = build_command(out)
    if not quiet:
        print("building native engine:", " ".join(cmd))
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
    except FileNotFoundError as exc:
        raise RuntimeError(
            f"no C compiler found ({cmd[0]!r}): the native engine is "
            "optional — the wheel/heap/batch schedulers keep working"
        ) from exc
    if proc.returncode != 0:
        raise RuntimeError(
            "native engine build failed:\n" + (proc.stderr or proc.stdout)
        )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force", action="store_true", help="rebuild even if up to date"
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    try:
        out = build(force=args.force, quiet=args.quiet)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"built {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
