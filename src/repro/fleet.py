"""Fleet-scale simulation: compose thousands of MN shards.

The paper's §2.3/§5 symmetry argument — host ports are disjoint and
identical — is what lets one simulation stand for a whole memory
network.  This module breaks that symmetry deliberately: a
:class:`FleetConfig` describes ``N`` *shards*, each a full
:class:`~repro.config.SystemConfig` (heterogeneous topology, tech mix,
fault plan), plus a registry of weighted :class:`Tenant`\\ s whose
zipf/uniform address-stream skew and arrival-rate scaling are mapped
onto contiguous shard ranges.  The fleet compiles into per-shard
:class:`~repro.runner.SimJob`\\ s and executes through the existing
:class:`~repro.runner.ParallelRunner`/:class:`~repro.runner.ResultCache`
machinery, so a warm-cache fleet replay costs **zero** simulations.

Aggregation is *streaming*: shard results are folded into a
:class:`FleetResult` the moment they complete (cache hits included) via
:meth:`repro.runner.ParallelRunner.run_fold` and then released — the
fleet never materializes per-shard detail in one process, so peak
resident memory is independent of shard count.  Every fold operation is
exactly commutative (:class:`repro.sim.stats.TailAccumulator`,
:class:`repro.sim.stats.CounterBag`), which is what makes fleet results
bit-identical between ``--jobs 1`` and ``--jobs N`` and between cold and
warm-cache replays.

Determinism contract:

* shard ``i`` runs under seed ``derive_seed(fleet.seed, "fleet", str(i))``
  — shard streams are pairwise disjoint and disjoint from every
  single-MN seed namespace;
* a fleet of identical shards with the default tenant is, shard for
  shard, digest-identical to ``N`` independent single-MN runs;
* :meth:`FleetResult.digest` covers only exactly-reproducible state
  (integer counters, bucket counts, extremes, integer-valued totals).

See ``docs/fleet.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.results import SimResult
from repro.runner.job import SimJob, canonical_tree, digest_tree
from repro.sim.random import derive_seed
from repro.sim.stats import CounterBag, TailAccumulator
from repro.units import to_ns
from repro.workloads import WorkloadSpec

#: Salt folded into fleet config digests; bump when the compilation
#: scheme (seed derivation, tenant mapping) changes incompatibly.
FLEET_DIGEST_VERSION = "repro-fleet-v1"

#: Version of the :meth:`FleetResult.digest` state schema.
FLEET_RESULT_VERSION = 1


# ---------------------------------------------------------------------------
# Tenant registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Tenant:
    """One tenant class of the fleet's traffic.

    ``weight`` apportions shards (largest-remainder over the registry);
    ``skew`` is the tenant's address-stream Zipf parameter
    (:attr:`repro.workloads.WorkloadSpec.skew`; 0 = uniform); and
    ``rate_scale`` multiplies the tenant's offered arrival rate (the
    base workload's mean gap is divided by it).  The default tenant is
    transparent: weight 1, no skew, unit rate — a single-tenant fleet
    runs the base workload unchanged.
    """

    name: str
    weight: float = 1.0
    skew: float = 0.0
    rate_scale: float = 1.0

    def validate(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ConfigError(f"tenant {self.name!r}: weight must be positive")
        if not 0.0 <= self.skew < 1.0:
            raise ConfigError(f"tenant {self.name!r}: skew must be in [0, 1)")
        if self.rate_scale <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: rate_scale must be positive"
            )

    def apply(self, workload: WorkloadSpec) -> WorkloadSpec:
        """The tenant's view of the base workload.

        A transparent tenant returns the spec *unchanged* (same object),
        so single-tenant fleets compile to exactly the base workload and
        stay digest-compatible with independent single-MN runs.
        """
        changes: Dict[str, object] = {}
        if self.skew:
            changes["skew"] = self.skew
        if self.rate_scale != 1.0:
            changes["mean_gap_ns"] = workload.mean_gap_ns / self.rate_scale
        return workload.with_(**changes) if changes else workload


# ---------------------------------------------------------------------------
# Fleet configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FleetConfig:
    """N MN shards + a tenant registry, compiled into per-shard jobs."""

    shards: Tuple[SystemConfig, ...]
    workload: WorkloadSpec
    tenants: Tuple[Tenant, ...] = (Tenant("default"),)
    requests_per_shard: int = 2000
    seed: int = 20170624

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not self.shards:
            raise ConfigError("fleet needs at least one shard")
        if not self.tenants:
            raise ConfigError("fleet needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names: {sorted(names)}")
        if self.requests_per_shard < 1:
            raise ConfigError("requests_per_shard must be positive")
        for tenant in self.tenants:
            tenant.validate()
        self.workload.validate()
        for index, shard in enumerate(self.shards):
            try:
                shard.validate()
            except ConfigError as exc:
                raise ConfigError(f"shard {index}: {exc}") from exc

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    def shard_tenants(self) -> Tuple[Tenant, ...]:
        """Tenant of each shard (largest-remainder apportionment).

        Tenants occupy contiguous shard ranges, in registry order, with
        sizes proportional to their weights; remainder shards go to the
        largest fractional quotas (ties broken by registry order).
        Purely arithmetic, so the mapping is deterministic and part of
        the fleet digest by construction.
        """
        total_weight = sum(tenant.weight for tenant in self.tenants)
        quotas = [
            tenant.weight / total_weight * self.num_shards
            for tenant in self.tenants
        ]
        counts = [math.floor(quota) for quota in quotas]
        leftovers = self.num_shards - sum(counts)
        by_remainder = sorted(
            range(len(self.tenants)),
            key=lambda i: (-(quotas[i] - counts[i]), i),
        )
        for i in by_remainder[:leftovers]:
            counts[i] += 1
        out: List[Tenant] = []
        for tenant, count in zip(self.tenants, counts):
            out.extend([tenant] * count)
        return tuple(out)

    def shard_seed(self, shard: int) -> int:
        """Per-shard root seed: disjoint across shards and namespaces."""
        return derive_seed(self.seed, "fleet", str(shard))

    def shard_config(self, shard: int) -> SystemConfig:
        return replace(self.shards[shard], seed=self.shard_seed(shard))

    def shard_workload(self, shard: int) -> WorkloadSpec:
        return self.shard_tenants()[shard].apply(self.workload)

    def compile(self) -> List[SimJob]:
        """Per-shard :class:`SimJob`\\ s, each independently cacheable."""
        tenants = self.shard_tenants()
        return [
            SimJob(
                config=replace(self.shards[i], seed=self.shard_seed(i)),
                workload=tenants[i].apply(self.workload),
                requests=self.requests_per_shard,
            )
            for i in range(self.num_shards)
        ]

    def digest(self) -> str:
        """Stable content digest over the whole fleet tree."""
        return digest_tree(
            {
                "version": FLEET_DIGEST_VERSION,
                "fleet": canonical_tree(self),
            }
        )

    def with_(self, **changes) -> "FleetConfig":
        return replace(self, **changes)


def uniform_fleet(
    num_shards: int,
    config: SystemConfig,
    workload: WorkloadSpec,
    requests_per_shard: int = 2000,
    tenants: Tuple[Tenant, ...] = (Tenant("default"),),
    seed: Optional[int] = None,
) -> FleetConfig:
    """A fleet of ``num_shards`` identical shards (symmetry baseline)."""
    return FleetConfig(
        shards=(config,) * num_shards,
        workload=workload,
        tenants=tenants,
        requests_per_shard=requests_per_shard,
        seed=config.seed if seed is None else seed,
    )


# ---------------------------------------------------------------------------
# Streaming aggregation
# ---------------------------------------------------------------------------
class TenantAggregate:
    """Exactly-mergeable rollup of one tenant's shard results.

    Holds only fixed-size, order-invariant state: a :class:`CounterBag`
    over the :meth:`repro.results.SimResult.per_kind_counts` schema, a
    :class:`TailAccumulator` over the end-to-end latency histograms, and
    integer runtime totals.  Folding the same shard results in any
    order — or merging partial aggregates over any partition — yields
    bit-identical state.
    """

    __slots__ = ("shards", "counters", "runtime_ps_total", "runtime_ps_max",
                 "events", "latency")

    def __init__(self) -> None:
        self.shards = 0
        self.counters = CounterBag()
        self.runtime_ps_total = 0
        self.runtime_ps_max = 0
        self.events = 0
        self.latency = TailAccumulator()

    def fold(self, result: SimResult) -> None:
        """Fold one shard's result in; keeps no reference to it."""
        self.shards += 1
        self.counters.fold_dict(result.per_kind_counts())
        self.runtime_ps_total += result.runtime_ps
        if result.runtime_ps > self.runtime_ps_max:
            self.runtime_ps_max = result.runtime_ps
        self.events += result.events_processed
        self.latency.fold(result.collector.all.total_hist)

    def merge(self, other: "TenantAggregate") -> None:
        self.shards += other.shards
        self.counters.merge(other.counters)
        self.runtime_ps_total += other.runtime_ps_total
        if other.runtime_ps_max > self.runtime_ps_max:
            self.runtime_ps_max = other.runtime_ps_max
        self.events += other.events
        self.latency.merge(other.latency)

    # -- derived metrics (computed from exact state at report time) ----
    @property
    def requests(self) -> int:
        get = self.counters.get
        return get("reads") + get("writes") + get("p2p")

    @property
    def availability(self) -> float:
        served = self.counters.get("served")
        total = served + self.counters.get("failed")
        return served / total if total else 1.0

    @property
    def goodput_rps(self) -> float:
        """Requests served per second of *fleet* time.

        Shards run concurrently, so fleet throughput is total served
        work divided by the mean shard runtime.  Derived from integer
        sums only, so it is fold-order independent.
        """
        if self.shards == 0 or self.runtime_ps_total <= 0:
            return 0.0
        mean_runtime_ps = self.runtime_ps_total / self.shards
        return self.counters.get("served") / (mean_runtime_ps * 1e-12)

    def percentile_ns(self, fraction: float) -> Optional[float]:
        """Latency percentile in ns; ``None`` when no requests landed."""
        value = self.latency.percentile(fraction)
        return None if value is None else to_ns(value)

    def tails_ns(self) -> Dict[str, Optional[float]]:
        return {
            "p50": self.percentile_ns(0.50),
            "p95": self.percentile_ns(0.95),
            "p99": self.percentile_ns(0.99),
        }

    @property
    def mean_latency_ns(self) -> float:
        return to_ns(self.latency.mean)

    def state(self) -> Dict[str, object]:
        """Canonical JSON-able dump of the exact state."""
        return {
            "shards": self.shards,
            "counters": self.counters.as_dict(),
            "runtime_ps_total": self.runtime_ps_total,
            "runtime_ps_max": self.runtime_ps_max,
            "events": self.events,
            "latency": self.latency.state(),
        }


class FleetResult:
    """Streaming rollup of a fleet run: per-tenant and fleet totals.

    Built incrementally by :func:`run_fleet`'s fold callback; detail
    never accumulates — each shard's :class:`SimResult` is folded into
    the owning tenant's aggregate *and* the fleet total, then released.
    ``simulations_run`` records how many shards actually simulated
    (zero on a warm-cache replay); it is deliberately excluded from
    :meth:`digest`, which must be identical cold and warm.
    """

    def __init__(self, fleet: FleetConfig) -> None:
        self.fleet_digest = fleet.digest()
        self.expected_shards = fleet.num_shards
        self.requests_per_shard = fleet.requests_per_shard
        self.tenants: Dict[str, TenantAggregate] = {
            tenant.name: TenantAggregate() for tenant in fleet.tenants
        }
        self.total = TenantAggregate()
        self.shards_folded = 0
        self.simulations_run = 0
        self.failures: List[object] = []

    def fold(self, shard: int, tenant: str, result: SimResult) -> None:
        """Fold one shard's result into its tenant and the fleet total."""
        if tenant not in self.tenants:
            raise ConfigError(f"unknown tenant {tenant!r} for shard {shard}")
        self.tenants[tenant].fold(result)
        self.total.fold(result)
        self.shards_folded += 1

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical, JSON-able view of the aggregate state."""
        return {
            "fleet": self.fleet_digest,
            "expected_shards": self.expected_shards,
            "shards_folded": self.shards_folded,
            "tenants": {
                name: agg.state() for name, agg in sorted(self.tenants.items())
            },
            "total": self.total.state(),
        }

    def digest(self) -> str:
        """Stable digest of the exact aggregate state.

        Identical across fold orders, worker counts, engines, and
        cold/warm replays — the fleet-level analogue of
        :func:`repro.serialization.result_digest`.
        """
        return digest_tree(
            {"version": FLEET_RESULT_VERSION, "result": self.to_dict()}
        )

    def report(self) -> Dict[str, object]:
        """Headline metrics per tenant plus fleet-wide (derived view)."""
        def row(agg: TenantAggregate) -> Dict[str, object]:
            return {
                "shards": agg.shards,
                "requests": agg.requests,
                "availability": agg.availability,
                "goodput_rps": agg.goodput_rps,
                "mean_latency_ns": agg.mean_latency_ns,
                **agg.tails_ns(),
            }

        out: Dict[str, object] = {
            name: row(agg) for name, agg in sorted(self.tenants.items())
        }
        out["fleet"] = row(self.total)
        return out

    def summary(self) -> str:
        lines = [
            f"fleet: {self.shards_folded}/{self.expected_shards} shards, "
            f"{self.total.requests} requests, "
            f"availability={self.total.availability:.4f}"
        ]
        for name, agg in sorted(self.tenants.items()):
            tails = agg.tails_ns()
            p99 = tails["p99"]
            lines.append(
                f"  {name:>12}: shards={agg.shards:<4d} "
                f"req={agg.requests:<8d} "
                f"p99={'-' if p99 is None else format(p99, '.1f')}ns "
                f"avail={agg.availability:.4f} "
                f"goodput={agg.goodput_rps / 1e6:.2f}M/s"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
def run_fleet(
    fleet: FleetConfig,
    runner=None,
    on_error: str = "raise",
) -> FleetResult:
    """Compile and execute a fleet, streaming shards into a FleetResult.

    Runs through the given (or ambient) runner, so shard jobs dedupe by
    content digest, checkpoint to the cache as they finish, and replay
    for free when warm.  With ambient audits enabled
    (:func:`repro.check.audits_enabled`), the fleet conservation
    invariant — per-kind shard sums equal fleet totals — is verified
    before returning.  ``on_error="collect"`` records
    :class:`~repro.runner.JobFailure` rows on ``result.failures``
    instead of raising; failed shards are simply not folded.
    """
    fleet.validate()
    if runner is None:
        from repro.runner import get_runner

        runner = get_runner()
    jobs = fleet.compile()
    tenant_names = [tenant.name for tenant in fleet.shard_tenants()]
    result = FleetResult(fleet)

    def fold(index: int, job: SimJob, shard_result: SimResult) -> None:
        result.fold(index, tenant_names[index], shard_result)

    before = runner.simulations_run
    rows = runner.run_fold(jobs, fold, on_error=on_error)
    result.simulations_run = runner.simulations_run - before
    result.failures = [row for row in rows if row is not None]

    from repro.check import audits_enabled, check_fleet_conservation

    if audits_enabled():
        check_fleet_conservation(result)
    return result
