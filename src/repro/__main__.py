"""Top-level CLI: simulate and inspect memory networks.

Examples::

    python -m repro simulate --topology tree --workload KMEANS
    python -m repro simulate --label "50%-SL (NVM-L)" --arbiter distance
    python -m repro show --label 100%-SL          # ASCII topology
    python -m repro workloads                     # list the suite
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import visual
from repro.analysis.network_stats import render_cube_report, render_link_report
from repro.config import SystemConfig, parse_label
from repro.system import MemoryNetworkSystem
from repro.topology import build_topology
from repro.workloads import PAPER_SUITE, get_workload


def _config_from_args(args) -> SystemConfig:
    if args.label:
        config = parse_label(args.label)
    else:
        config = SystemConfig(topology=args.topology)
    if getattr(args, "arbiter", None):
        config = config.with_(arbiter=args.arbiter)
    return config


def cmd_simulate(args) -> int:
    config = _config_from_args(args)
    workload = get_workload(args.workload)
    system = MemoryNetworkSystem(config, workload, requests=args.requests)
    result = system.run()
    breakdown = result.collector.all
    print(f"configuration : {result.config_label} ({config.arbiter})")
    print(f"workload      : {workload.name} — {workload.description}")
    print(f"runtime       : {result.runtime_ns / 1000:.2f} us "
          f"({result.transactions} requests)")
    print(f"latency       : {breakdown.total_ns:.1f} ns "
          f"(to={breakdown.to_memory_ns:.1f} in={breakdown.in_memory_ns:.1f} "
          f"from={breakdown.from_memory_ns:.1f})")
    print(f"row hits      : {result.row_hit_rate * 100:.1f}%")
    print(f"energy        : {result.energy.total_pj / 1e6:.2f} uJ "
          f"(network {result.energy.network_pj / 1e6:.2f})")
    if args.links:
        print()
        print(render_link_report(system))
    if args.cubes:
        print()
        print(render_cube_report(system))
    return 0


def cmd_show(args) -> int:
    config = _config_from_args(args)
    topo = build_topology(config)
    print(visual.render_topology(topo))
    print()
    print(visual.render_distance_histogram(topo))
    if config.topology == "skiplist":
        print()
        print(visual.render_skiplist(config.cubes_per_port))
    return 0


def cmd_selfcheck(args) -> int:
    from repro.validate import all_passed, run_self_check

    results = run_self_check(_config_from_args(args))
    for result in results:
        print(result)
    return 0 if all_passed(results) else 1


def cmd_workloads(_args) -> int:
    for spec in PAPER_SUITE.values():
        print(f"{spec.name:<10} reads={spec.read_fraction:.2f} "
              f"gap={spec.mean_gap_ns:.1f}ns mlp={spec.mlp:<3d} "
              f"burst={spec.burst_size:.0f}  {spec.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one workload on one MN")
    sim.add_argument("--topology", default="chain",
                     choices=["chain", "ring", "tree", "skiplist", "metacube"])
    sim.add_argument("--label", default="",
                     help='paper-style config label, e.g. "50%%-T (NVM-L)"')
    sim.add_argument("--arbiter", default="",
                     help="round_robin | distance | distance_enhanced | "
                          "age | global_weighted")
    sim.add_argument("--workload", default="KMEANS")
    sim.add_argument("--requests", type=int, default=2000)
    sim.add_argument("--links", action="store_true",
                     help="print per-link utilization")
    sim.add_argument("--cubes", action="store_true",
                     help="print per-cube access statistics")
    sim.set_defaults(func=cmd_simulate)

    show = sub.add_parser("show", help="render a topology as ASCII")
    show.add_argument("--topology", default="chain",
                      choices=["chain", "ring", "tree", "skiplist", "metacube"])
    show.add_argument("--label", default="")
    show.set_defaults(func=cmd_show)

    wl = sub.add_parser("workloads", help="list the paper's workload suite")
    wl.set_defaults(func=cmd_workloads)

    check = sub.add_parser("selfcheck", help="run built-in model self-checks")
    check.add_argument("--topology", default="chain",
                       choices=["chain", "ring", "tree", "skiplist", "metacube"])
    check.add_argument("--label", default="")
    check.set_defaults(func=cmd_selfcheck)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
