"""Workload generation: synthetic proxies, traces, and the paper suite."""

from repro.workloads.base import Request, WorkloadSpec
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import Trace, TraceWorkload
from repro.workloads.patterns import (
    StreamWorkload,
    StridedWorkload,
    TiledWorkload,
    UniformRandomWorkload,
)
from repro.workloads.suite import PAPER_SUITE, get_workload, workload_names

__all__ = [
    "Request",
    "WorkloadSpec",
    "SyntheticWorkload",
    "Trace",
    "TraceWorkload",
    "PAPER_SUITE",
    "get_workload",
    "workload_names",
    "StreamWorkload",
    "StridedWorkload",
    "TiledWorkload",
    "UniformRandomWorkload",
]
