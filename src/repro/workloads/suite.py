"""The paper's eight-workload evaluation suite, as synthetic proxies.

The AMD SDK / Rodinia GPU binaries cannot run here, so each workload is
replaced by a proxy calibrated to the characteristics the paper itself
reports (Sections 3.2, 5.3):

* BACKPROP has "significantly more writes than reads" and benefits the
  most from every proposed technique — it is the most write-intensive
  and network-hungry proxy;
* KMEANS, MATRIXMUL and NW have "at least two reads for every write";
  KMEANS is "the most read intensive";
* NW has "the lowest network load of all the workloads" and therefore
  the largest in-memory latency share;
* BIT and BUFF respond strongly to write rerouting (Section 5.3 calls
  them out for the skip-list + hysteresis gains), so the proxies give
  them balanced mixes with read-modify-write behaviour;
* the remaining workloads (DCT, HOTSPOT) have "nearly identical numbers
  of read and write requests".

Footprints are "just under the total memory capacity" (Section 6.2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import WorkloadSpec

PAPER_SUITE: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            name="BACKPROP",
            read_fraction=0.35,
            mean_gap_ns=2.2,
            locality_lines=8.0,
            rmw_fraction=0.05,
            mlp=24,
            burst_size=24.0,
            description="back-propagation training; write-dominated, high load",
        ),
        WorkloadSpec(
            name="BIT",
            read_fraction=0.50,
            mean_gap_ns=2.5,
            locality_lines=4.0,
            rmw_fraction=0.20,
            mlp=28,
            burst_size=16.0,
            description="bitonic sort; balanced mix, heavy read-modify-write",
        ),
        WorkloadSpec(
            name="BUFF",
            read_fraction=0.50,
            mean_gap_ns=2.6,
            locality_lines=6.0,
            rmw_fraction=0.10,
            mlp=28,
            burst_size=16.0,
            description="buffer/bandwidth proxy; balanced, bursty writes",
        ),
        WorkloadSpec(
            name="DCT",
            read_fraction=0.55,
            mean_gap_ns=2.75,
            locality_lines=8.0,
            rmw_fraction=0.05,
            mlp=28,
            burst_size=16.0,
            description="discrete cosine transform; balanced streaming",
        ),
        WorkloadSpec(
            name="HOTSPOT",
            read_fraction=0.55,
            mean_gap_ns=3.2,
            locality_lines=6.0,
            rmw_fraction=0.05,
            mlp=24,
            burst_size=24.0,
            description="thermal stencil; balanced, moderate load",
        ),
        WorkloadSpec(
            name="KMEANS",
            read_fraction=0.78,
            mean_gap_ns=2.3,
            locality_lines=8.0,
            rmw_fraction=0.0,
            mlp=40,
            burst_size=32.0,
            description="k-means clustering; the most read-intensive workload",
        ),
        WorkloadSpec(
            name="MATRIXMUL",
            read_fraction=0.70,
            mean_gap_ns=2.3,
            locality_lines=12.0,
            rmw_fraction=0.0,
            mlp=36,
            burst_size=32.0,
            description="dense GEMM; >=2:1 reads, long sequential runs",
        ),
        WorkloadSpec(
            name="NW",
            read_fraction=0.67,
            mean_gap_ns=25.0,
            locality_lines=6.0,
            rmw_fraction=0.0,
            mlp=6,
            burst_size=4.0,
            description="Needleman-Wunsch; lowest network load in the suite",
        ),
    )
}


def workload_names() -> List[str]:
    return list(PAPER_SUITE)


def get_workload(name: str) -> WorkloadSpec:
    try:
        return PAPER_SUITE[name.upper()]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        ) from None
