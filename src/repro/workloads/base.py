"""Workload abstractions.

A workload is an iterator of :class:`Request` records; a
:class:`WorkloadSpec` captures the parameters a synthetic proxy needs.
The specs for the paper's eight GPGPU workloads live in
:mod:`repro.workloads.suite`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError

# Arrival processes (WorkloadSpec.arrival)
ARRIVAL_CLOSED = "closed"  # paper's closed loop: window throttles generation
ARRIVAL_POISSON = "poisson"  # open loop, exponential gaps
ARRIVAL_ONOFF = "onoff"  # open loop, bursty Markov-modulated ON/OFF
VALID_ARRIVALS = (ARRIVAL_CLOSED, ARRIVAL_POISSON, ARRIVAL_ONOFF)


@dataclass(frozen=True)
class Request:
    """One memory request as seen by a host port."""

    address: int  # port-local byte address
    is_write: bool
    gap_ps: int  # delay until the *next* request is generated
    # Peer-to-peer copy: read ``address`` at its home cube and write the
    # line to another cube (NOM-style DMA).  ``is_write`` is False for
    # these — the directory treats the copy as a read of the source.
    is_p2p: bool = False


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload proxy.

    ``mean_gap_ns`` is the per-port mean inter-arrival time **for the
    baseline 8-port system**; the harness rescales it when the port
    count changes so the system-level offered load stays fixed
    (Section 6.1 halves ports and doubles per-port pressure).
    """

    name: str
    read_fraction: float
    mean_gap_ns: float
    locality_lines: float  # mean sequential run length, in 64 B lines
    rmw_fraction: float = 0.0  # reads immediately followed by a write
    footprint_fraction: float = 0.90
    line_bytes: int = 64
    baseline_ports: int = 8
    # Memory-level parallelism: how many requests the workload keeps in
    # flight per port.  Latency-sensitive codes (NW's wavefront DP) have
    # little MLP; streaming GPU kernels have a lot.  The effective window
    # is min(mlp, host.max_outstanding_per_port).
    mlp: int = 64
    # GPU memory traffic arrives in coalesced wavefront bursts: groups
    # of ``burst_size`` (mean, geometric) back-to-back requests separated
    # by idle gaps sized to preserve the mean arrival rate.  Burstiness
    # drives the per-hop queuing the paper's latency breakdowns show.
    burst_size: float = 1.0
    # Fraction of generated requests that are peer-to-peer copies
    # (cube -> cube DMA) instead of host round trips.  Zero keeps the
    # generator's RNG stream bit-identical to pre-p2p behaviour.
    p2p_fraction: float = 0.0
    # Arrival process.  "closed" is the paper's closed-loop injector:
    # the host window throttles generation, so offered load can never
    # exceed capacity.  "poisson" and "onoff" are *open-loop*: requests
    # arrive on their own clock regardless of completions, so offered
    # load is a free knob that can push the network past saturation.
    # "onoff" draws bursty Markov-modulated traffic: ON periods of
    # ~``on_burst`` requests at rate mean_gap/on_fraction, separated by
    # OFF silences sized to preserve the long-run rate.
    arrival: str = ARRIVAL_CLOSED
    on_fraction: float = 1.0  # fraction of time spent in ON periods
    on_burst: float = 32.0  # mean requests per ON period (geometric)
    # Address-stream popularity skew (approximate Zipf).  0.0 keeps the
    # uniform footprint draw — and therefore the RNG stream and every
    # digest — bit-identical to pre-skew behaviour.  Values in (0, 1)
    # concentrate sequential-run starts onto a hot set at the low end of
    # the footprint: run starts draw ``u ** (1 / (1 - skew))`` scaled to
    # the footprint, the standard bounded-Pareto approximation of Zipf
    # popularity (skew 0.99 ~ a few percent of lines take most traffic).
    # The fleet layer uses this for per-tenant skewed streams.
    skew: float = 0.0
    description: str = ""

    def validate(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError(f"{self.name}: read_fraction out of range")
        if self.mean_gap_ns < 0:
            raise WorkloadError(f"{self.name}: negative inter-arrival gap")
        if self.locality_lines < 1.0:
            raise WorkloadError(f"{self.name}: locality must be >= 1 line")
        if not 0.0 <= self.rmw_fraction <= 1.0:
            raise WorkloadError(f"{self.name}: rmw_fraction out of range")
        if not 0.0 < self.footprint_fraction <= 1.0:
            raise WorkloadError(f"{self.name}: footprint_fraction out of range")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise WorkloadError(f"{self.name}: line size must be a power of two")
        if self.mlp < 1:
            raise WorkloadError(f"{self.name}: mlp must be >= 1")
        if self.burst_size < 1.0:
            raise WorkloadError(f"{self.name}: burst_size must be >= 1")
        if not 0.0 <= self.p2p_fraction <= 1.0:
            raise WorkloadError(f"{self.name}: p2p_fraction out of range")
        if self.arrival not in VALID_ARRIVALS:
            raise WorkloadError(f"{self.name}: unknown arrival {self.arrival!r}")
        if not 0.0 < self.on_fraction <= 1.0:
            raise WorkloadError(f"{self.name}: on_fraction out of range")
        if self.on_burst < 1.0:
            raise WorkloadError(f"{self.name}: on_burst must be >= 1")
        if not 0.0 <= self.skew < 1.0:
            raise WorkloadError(f"{self.name}: skew must be in [0, 1)")

    @property
    def is_open_loop(self) -> bool:
        """True when requests arrive regardless of completions."""
        return self.arrival != ARRIVAL_CLOSED

    def scaled_gap_ns(self, num_ports: int) -> float:
        """Per-port gap preserving total system load at ``num_ports``."""
        if num_ports <= 0:
            raise WorkloadError("need at least one port")
        return self.mean_gap_ns * num_ports / self.baseline_ports

    def with_(self, **changes) -> "WorkloadSpec":
        return replace(self, **changes)
