"""Trace recording and replay.

Traces make simulations exactly repeatable across configurations (the
same address stream hits every topology) and let users bring their own
workloads.  The on-disk format is a plain text file, one request per
line: ``<hex address> <R|W> <gap_ps>``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.errors import WorkloadError
from repro.workloads.base import Request


class Trace:
    """An in-memory list of requests with (de)serialization helpers."""

    def __init__(self, requests: Iterable[Request] = ()) -> None:
        self.requests: List[Request] = list(requests)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def append(self, request: Request) -> None:
        self.requests.append(request)

    # -- capture -----------------------------------------------------------
    @classmethod
    def capture(cls, workload: Iterator[Request], count: int) -> "Trace":
        """Materialize ``count`` requests from any workload iterator."""
        if count < 0:
            raise WorkloadError("count must be non-negative")
        trace = cls()
        for _ in range(count):
            try:
                trace.append(next(workload))
            except StopIteration:
                break
        return trace

    # -- persistence ----------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        lines = [
            f"{request.address:x} {'W' if request.is_write else 'R'} "
            f"{request.gap_ps}"
            for request in self.requests
        ]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        trace = cls()
        for line_number, line in enumerate(
            Path(path).read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[1] not in ("R", "W"):
                raise WorkloadError(f"{path}:{line_number}: malformed trace line")
            try:
                address = int(parts[0], 16)
                gap = int(parts[2])
            except ValueError:
                raise WorkloadError(
                    f"{path}:{line_number}: bad address or gap"
                ) from None
            if address < 0 or gap < 0:
                raise WorkloadError(f"{path}:{line_number}: negative value")
            trace.append(Request(address=address, is_write=parts[1] == "W", gap_ps=gap))
        return trace

    # -- statistics ---------------------------------------------------------------
    def write_fraction(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.is_write for r in self.requests) / len(self.requests)


class TraceWorkload:
    """Iterator adapter replaying a :class:`Trace` (optionally looping)."""

    def __init__(self, trace: Trace, loop: bool = True) -> None:
        if not len(trace):
            raise WorkloadError("cannot replay an empty trace")
        self.trace = trace
        self.loop = loop
        self._index = 0

    def __iter__(self) -> "TraceWorkload":
        return self

    def __next__(self) -> Request:
        if self._index >= len(self.trace.requests):
            if not self.loop:
                raise StopIteration
            self._index = 0
        request = self.trace.requests[self._index]
        self._index += 1
        return request
