"""Trace recording and replay.

Traces make simulations exactly repeatable across configurations (the
same address stream hits every topology) and let users bring their own
workloads.  The on-disk format is a plain text file, one request per
line: ``<hex address> <R|W|P> <gap_ps>`` (``P`` marks a peer-to-peer
copy).  ``load`` accepts exactly what ``save`` emits — bare lowercase
hex addresses and plain decimal gaps — so a save/load/save round trip
is byte-identical.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.errors import WorkloadError
from repro.workloads.base import Request

# Exactly the characters ``save`` can emit, so load rejects every form
# ``int`` would otherwise tolerate ("0x" prefixes, signs, underscores,
# uppercase hex, non-ASCII digits).
_HEX_DIGITS = frozenset("0123456789abcdef")
_DEC_DIGITS = frozenset("0123456789")


class Trace:
    """An in-memory list of requests with (de)serialization helpers."""

    def __init__(self, requests: Iterable[Request] = ()) -> None:
        self.requests: List[Request] = list(requests)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def append(self, request: Request) -> None:
        self.requests.append(request)

    # -- capture -----------------------------------------------------------
    @classmethod
    def capture(cls, workload: Iterator[Request], count: int) -> "Trace":
        """Materialize ``count`` requests from any workload iterator."""
        if count < 0:
            raise WorkloadError("count must be non-negative")
        trace = cls()
        for _ in range(count):
            try:
                trace.append(next(workload))
            except StopIteration:
                break
        return trace

    # -- persistence ----------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        lines = [
            f"{request.address:x} "
            f"{'P' if request.is_p2p else 'W' if request.is_write else 'R'} "
            f"{request.gap_ps}"
            for request in self.requests
        ]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        trace = cls()
        for line_number, line in enumerate(
            Path(path).read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[1] not in ("R", "W", "P"):
                raise WorkloadError(f"{path}:{line_number}: malformed trace line")
            # ``int(x, 16)`` is laxer than the format: it accepts "0x"
            # prefixes, sign characters, and underscores, none of which
            # ``save`` ever writes.  Validate the exact token charset so
            # a loaded trace re-saves byte-identically.
            address_token, gap_token = parts[0], parts[2]
            if not _HEX_DIGITS.issuperset(address_token):
                raise WorkloadError(
                    f"{path}:{line_number}: bad address {address_token!r} "
                    "(expected bare lowercase hex digits)"
                )
            if not _DEC_DIGITS.issuperset(gap_token):
                raise WorkloadError(
                    f"{path}:{line_number}: bad gap {gap_token!r} "
                    "(expected a non-negative decimal integer)"
                )
            trace.append(
                Request(
                    address=int(address_token, 16),
                    is_write=parts[1] == "W",
                    gap_ps=int(gap_token),
                    is_p2p=parts[1] == "P",
                )
            )
        return trace

    # -- statistics ---------------------------------------------------------------
    def write_fraction(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.is_write for r in self.requests) / len(self.requests)


class TraceWorkload:
    """Iterator adapter replaying a :class:`Trace` (optionally looping)."""

    def __init__(self, trace: Trace, loop: bool = True) -> None:
        if not len(trace):
            raise WorkloadError("cannot replay an empty trace")
        self.trace = trace
        self.loop = loop
        self._index = 0

    def __iter__(self) -> "TraceWorkload":
        return self

    def __next__(self) -> Request:
        if self._index >= len(self.trace.requests):
            if not self.loop:
                raise StopIteration
            self._index = 0
        request = self.trace.requests[self._index]
        self._index += 1
        return request
