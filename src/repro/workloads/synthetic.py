"""Synthetic request-stream generator.

Models the three properties the paper's results hinge on:

* **read/write mix** — drawn per access from ``read_fraction``, with an
  optional read-modify-write idiom (a read immediately followed by a
  write to the same line) that exercises the coherence stall;
* **spatial locality** — geometrically distributed sequential runs of
  cache lines, which produce row-buffer hits inside cubes;
* **intensity** — exponentially distributed inter-arrival gaps around
  the spec's mean.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.sim.random import RandomStream
from repro.workloads.base import ARRIVAL_ONOFF, Request, WorkloadSpec


class SyntheticWorkload:
    """Iterator of :class:`Request` for one host port."""

    def __init__(
        self,
        spec: WorkloadSpec,
        port_capacity_bytes: int,
        seed: int,
        num_ports: Optional[int] = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        footprint_lines = int(
            port_capacity_bytes * spec.footprint_fraction // spec.line_bytes
        )
        if footprint_lines < 1:
            raise WorkloadError("footprint smaller than one line")
        self.footprint_lines = footprint_lines
        self.rng = RandomStream(seed, "workload", spec.name)
        ports = num_ports if num_ports is not None else spec.baseline_ports
        self.mean_gap_ps = spec.scaled_gap_ns(ports) * 1000.0
        # run state
        self._run_line = 0
        self._run_remaining = 0
        self._pending_write_line: Optional[int] = None
        self._burst_remaining = 0
        self._on_remaining = 0
        self.generated = 0

    def __iter__(self) -> Iterator[Request]:
        return self

    def _gap(self) -> int:
        """Delay until the next request.

        Requests arrive in wavefront bursts: zero gap inside a burst,
        and an exponential gap of ``burst * mean`` between bursts so the
        long-run arrival rate matches the spec.
        """
        # The on/off branch draws from the RNG only when the workload
        # opts in (same idiom as p2p_fraction), so closed-loop and
        # Poisson workloads keep their pre-overload RNG streams — and
        # therefore their digests — bit-identical.
        if self.spec.arrival == ARRIVAL_ONOFF:
            return self._onoff_gap()
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            return 0
        burst = self.spec.burst_size
        if burst > 1.0:
            self._burst_remaining = self.rng.geometric_run(burst) - 1
        span = (self._burst_remaining + 1) * self.mean_gap_ps
        return int(self.rng.expovariate(span))

    def _onoff_gap(self) -> int:
        """Markov-modulated ON/OFF gap preserving the long-run rate.

        ON periods hold ~``on_burst`` requests (geometric) at the
        compressed gap ``mean * on_fraction``; the OFF silence that
        separates bursts has mean ``B * mean * (1 - on_fraction)``, so a
        burst of B requests spans ``B * mean`` on average and the
        long-run arrival rate matches the spec exactly.
        """
        spec = self.spec
        on_gap_mean = self.mean_gap_ps * spec.on_fraction
        if self._on_remaining > 0:
            self._on_remaining -= 1
            return int(self.rng.expovariate(on_gap_mean))
        burst = self.rng.geometric_run(spec.on_burst)
        self._on_remaining = burst - 1
        gap = self.rng.expovariate(on_gap_mean)
        if spec.on_fraction < 1.0:
            gap += self.rng.expovariate(
                burst * self.mean_gap_ps * (1.0 - spec.on_fraction)
            )
        return int(gap)

    def _next_line(self) -> int:
        if self._run_remaining <= 0:
            skew = self.spec.skew
            if skew:
                # Approximate-Zipf hot-set draw (bounded Pareto): mass
                # concentrates toward line 0 as skew -> 1.  Guarded so a
                # skew-free spec keeps the randrange draw — and its RNG
                # stream/digests — bit-identical to pre-skew behaviour.
                u = self.rng.random()
                line = int(self.footprint_lines * u ** (1.0 / (1.0 - skew)))
                self._run_line = min(line, self.footprint_lines - 1)
            else:
                self._run_line = self.rng.randrange(self.footprint_lines)
            self._run_remaining = self.rng.geometric_run(self.spec.locality_lines)
        line = self._run_line
        self._run_line = (self._run_line + 1) % self.footprint_lines
        self._run_remaining -= 1
        return line

    def __next__(self) -> Request:
        spec = self.spec
        if self._pending_write_line is not None:
            # second half of a read-modify-write
            line = self._pending_write_line
            self._pending_write_line = None
            self.generated += 1
            return Request(
                address=line * spec.line_bytes, is_write=True, gap_ps=self._gap()
            )
        line = self._next_line()
        # The p2p draw happens only when the knob is set, so the RNG
        # stream — and therefore every digest — of a p2p-free workload
        # is bit-identical to pre-p2p behaviour.
        if spec.p2p_fraction and self.rng.random() < spec.p2p_fraction:
            self.generated += 1
            return Request(
                address=line * spec.line_bytes,
                is_write=False,
                gap_ps=self._gap(),
                is_p2p=True,
            )
        is_write = self.rng.random() >= spec.read_fraction
        if not is_write and spec.rmw_fraction and self.rng.random() < spec.rmw_fraction:
            self._pending_write_line = line
        self.generated += 1
        return Request(
            address=line * spec.line_bytes, is_write=is_write, gap_ps=self._gap()
        )
