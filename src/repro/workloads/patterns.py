"""Additional access-pattern generators for custom studies.

The paper's proxies (:mod:`repro.workloads.suite`) model GPU kernels;
these generators cover other canonical shapes users may want to throw
at an MN design:

* :class:`StridedWorkload` — fixed-stride sweeps (column-major arrays,
  FFT butterflies); exercises bank-conflict behaviour.
* :class:`TiledWorkload` — blocked/tiled kernels: random tile, dense
  accesses inside it; exercises row-buffer locality.
* :class:`StreamWorkload` — pure sequential streaming (copy/scan);
  the friendliest possible pattern.
* :class:`UniformRandomWorkload` — no locality at all (hash tables,
  pointer chasing); the adversarial pattern.

All of them emit :class:`~repro.workloads.base.Request` records and can
feed :class:`~repro.system.MemoryNetworkSystem` via ``workload_iter``
or be captured into a :class:`~repro.workloads.trace.Trace`.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import WorkloadError
from repro.sim.random import RandomStream
from repro.workloads.base import Request


class _PatternBase:
    """Common plumbing: rate, mix, footprint, RNG."""

    def __init__(
        self,
        footprint_bytes: int,
        mean_gap_ps: float,
        read_fraction: float,
        seed: int,
        line_bytes: int = 64,
        name: str = "pattern",
    ) -> None:
        if footprint_bytes < line_bytes:
            raise WorkloadError("footprint smaller than one line")
        if not 0.0 <= read_fraction <= 1.0:
            raise WorkloadError("read_fraction out of range")
        if mean_gap_ps < 0:
            raise WorkloadError("negative gap")
        self.lines = footprint_bytes // line_bytes
        self.line_bytes = line_bytes
        self.mean_gap_ps = mean_gap_ps
        self.read_fraction = read_fraction
        self.rng = RandomStream(seed, "pattern", name)

    def __iter__(self) -> Iterator[Request]:
        return self

    def _emit(self, line: int) -> Request:
        return Request(
            address=(line % self.lines) * self.line_bytes,
            is_write=self.rng.random() >= self.read_fraction,
            gap_ps=int(self.rng.expovariate(self.mean_gap_ps)),
        )


class StridedWorkload(_PatternBase):
    """Sweep the footprint with a fixed stride (in lines)."""

    def __init__(self, stride_lines: int, *args, **kwargs) -> None:
        super().__init__(*args, name=f"strided{stride_lines}", **kwargs)
        if stride_lines < 1:
            raise WorkloadError("stride must be >= 1 line")
        self.stride = stride_lines
        self._cursor = 0

    def __next__(self) -> Request:
        line = self._cursor
        self._cursor = (self._cursor + self.stride) % self.lines
        if self._cursor < self.stride and self.stride > 1:
            self._cursor = (self._cursor + 1) % self.stride  # rotate phase
        return self._emit(line)


class TiledWorkload(_PatternBase):
    """Random tile selection, dense sequential access within the tile."""

    def __init__(self, tile_lines: int, *args, **kwargs) -> None:
        super().__init__(*args, name=f"tiled{tile_lines}", **kwargs)
        if tile_lines < 1:
            raise WorkloadError("tile must be >= 1 line")
        self.tile_lines = tile_lines
        self._tile_base = 0
        self._tile_pos = tile_lines  # force a new tile on first request

    def __next__(self) -> Request:
        if self._tile_pos >= self.tile_lines:
            tiles = max(self.lines // self.tile_lines, 1)
            self._tile_base = self.rng.randrange(tiles) * self.tile_lines
            self._tile_pos = 0
        line = self._tile_base + self._tile_pos
        self._tile_pos += 1
        return self._emit(line)


class StreamWorkload(_PatternBase):
    """Pure sequential stream over the footprint (wraps around)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, name="stream", **kwargs)
        self._cursor = 0

    def __next__(self) -> Request:
        line = self._cursor
        self._cursor = (self._cursor + 1) % self.lines
        return self._emit(line)


class UniformRandomWorkload(_PatternBase):
    """Uniformly random lines: zero spatial locality."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, name="random", **kwargs)

    def __next__(self) -> Request:
        return self._emit(self.rng.randrange(self.lines))
