"""The invariant auditor: conservation checks over a live system.

:class:`InvariantAuditor` walks a wired :class:`repro.system.
MemoryNetworkSystem` — engine, links, routers, controllers, host port —
and verifies the conservation and ordering contracts the paper's
figures rest on.  It runs only at *audit points* (RAS quiesce, stall,
end of run), never per event, so an attached auditor does not perturb
the simulation and an unattached one costs nothing.

Every check is named; the names are stable API used by the negative
tests and by ``docs/testing.md``:

====================  =====================================================
invariant             contract
====================  =====================================================
engine.integrity      timing-wheel bookkeeping (pending counter, bucket
                      heap vs bucket dict, per-bucket filing) is
                      self-consistent — a stale wheel entry fails here
engine.monotonic      audited simulation time never goes backwards
credit.bounds         a link's credits stay within [0, buffer depth]
credit.conservation   depth - credits == queued + on-wire for every
                      link; a created or destroyed credit fails here
queue.accounting      pushed == popped + removed + resident for every
                      input queue; a leaked packet fails here
queue.capacity        occupancy never exceeds a finite queue's capacity
queue.fifo            entry timestamps are non-decreasing head-to-tail
packet.route          every queued packet is filed at the node its route
                      says it is at, with a sane hop index
packet.conservation   healthy end of run leaves no packet anywhere;
                      degraded runs may strand only failed transactions
router.accounting     grants issued == packets popped from the inputs
controller.admission  queue + reservations never exceed the depth
port.window           outstanding reads/writes/p2p copies stay within
                      the MLP window and store buffer
port.backlog          the split pending lists tile the pending list and
                      the per-kind counters tile the totals
port.directory        directory outstanding writes == port outstanding
                      writes
txn.conservation      generated == completed + failed + timed-out +
                      shed (+ in flight mid-run), per kind and in total
overload.conservation overload dispositions never exceed generation,
                      and retries never exceed deadline expiries
overload.backlog      with shedding enabled, pending + outstanding
                      (and its high-water mark) never exceed shed_high
p2p.conservation      peer-to-peer copies conserve: generated ==
                      completed + failed at end of run
p2p.leak              no P2P_XFER packet is ever queued on a route that
                      terminates at the host port (cube-to-cube data
                      never crosses a host link)
obs.attribution       segment sums tile end-to-end latency exactly
                      (zero unattributed residual), per phase
energy.totals         the reported energy equals a recomputation from
                      per-link bit counts and per-cube access counts
ras.consistency       dead edges stay dead: both directions marked, no
                      queued packet routed across one, and no route in
                      the live tables resurrects one
====================  =====================================================

:meth:`InvariantAuditor.audit` raises :class:`repro.errors.
InvariantViolation` carrying every failed check plus the run context
(config label, workload, seed, scheduler, request count) needed to
reproduce; :meth:`collect` returns the violation list without raising.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.errors import InvariantViolation
from repro.net.packet import PacketKind
from repro.net.routing import RouteClass
from repro.obs.attribution import UNATTRIBUTED, PHASES, phase_of
from repro.topology.base import LinkKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.results import SimResult
    from repro.system import MemoryNetworkSystem

#: (invariant, component, detail)
Violation = Tuple[str, str, str]


class InvariantAuditor:
    """Conservation/ordering audits over one system instance."""

    def __init__(self, system: "MemoryNetworkSystem") -> None:
        self.system = system
        self.audits_run = 0
        self._last_time_ps = -1

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def audit(self, point: str) -> None:
        """Run every applicable check; raise on any violation."""
        violations = self.collect(point)
        if violations:
            raise InvariantViolation(violations, self._context(point))

    def collect(self, point: str) -> List[Violation]:
        """Run every applicable check; return violations without raising.

        ``point`` selects the check set: any value runs the structural
        checks; ``"final"`` adds the end-of-run conservation checks.
        """
        self.audits_run += 1
        out: List[Violation] = []
        self._check_engine(out)
        self._check_links(out)
        self._check_queues(out)
        self._check_routers(out)
        self._check_controllers(out)
        self._check_port(out, final=point == "final")
        self._check_pool(out)
        self._check_p2p(out)
        self._check_ras(out)
        if point == "final":
            self._check_final(out)
        return out

    def audit_result(self, result: "SimResult") -> None:
        """Audit a finished run's :class:`SimResult` against the system.

        Verifies attribution completeness (segment sums tile the
        end-to-end latency, zero unattributed residual) and that the
        energy report equals a recomputation from first principles.
        """
        out: List[Violation] = []
        self._check_attribution(out, result)
        self._check_energy(out, result)
        if result.requests_failed != self.system.port.failed:
            out.append((
                "txn.conservation", "result",
                f"requests_failed {result.requests_failed} != "
                f"port.failed {self.system.port.failed}",
            ))
        if result.requests_served != self.system.port.completed:
            out.append((
                "txn.conservation", "result",
                f"requests_served {result.requests_served} != "
                f"port.completed {self.system.port.completed}",
            ))
        if out:
            raise InvariantViolation(out, self._context("result"))

    def _context(self, point: str) -> dict:
        system = self.system
        return {
            "point": point,
            "time_ps": system.engine.now,
            "config": system.config.label(),
            "workload": system.workload_spec.name,
            "seed": system.config.seed,
            "requests": system.requests,
            "scheduler": system.engine.scheduler,
        }

    # ------------------------------------------------------------------
    # component walks
    # ------------------------------------------------------------------
    def _check_engine(self, out: List[Violation]) -> None:
        engine = self.system.engine
        for problem in engine.integrity_errors():
            out.append(("engine.integrity", "engine", problem))
        if engine.now < self._last_time_ps:
            out.append((
                "engine.monotonic", "engine",
                f"time went backwards: {engine.now} < audited "
                f"{self._last_time_ps}",
            ))
        self._last_time_ps = engine.now

    def _wire_in_flight(self, link) -> int:
        """Packets launched on ``link`` that have not yet landed."""
        return (
            link.packets_carried - link.guard_drops - link.dst_queue.pushed
        )

    def _check_links(self, out: List[Violation]) -> None:
        for link, _kind in self.system._links:
            queue = link.dst_queue
            credits = link.credits
            in_flight = self._wire_in_flight(link)
            if in_flight < 0:
                out.append((
                    "credit.conservation", link.name,
                    f"negative wire occupancy: carried "
                    f"{link.packets_carried}, guard-dropped "
                    f"{link.guard_drops}, delivered {queue.pushed}",
                ))
            if credits is None:
                continue
            depth = queue.capacity
            if not 0 <= credits <= depth:
                out.append((
                    "credit.bounds", link.name,
                    f"credits {credits} outside [0, {depth}]",
                ))
            expected = len(queue) + in_flight
            if depth - credits != expected:
                out.append((
                    "credit.conservation", link.name,
                    f"depth {depth} - credits {credits} != "
                    f"{len(queue)} queued + {in_flight} on wire",
                ))

    def _iter_queues(self):
        for router in self.system._routers.values():
            for queue in router.inputs:
                yield queue

    def _check_queues(self, out: List[Violation]) -> None:
        for queue in self._iter_queues():
            resident = len(queue)
            if queue.pushed != queue.pops + queue.removed_count + resident:
                out.append((
                    "queue.accounting", queue.name,
                    f"pushed {queue.pushed} != popped {queue.pops} + "
                    f"removed {queue.removed_count} + resident {resident}",
                ))
            if queue.capacity is not None and resident > queue.capacity:
                out.append((
                    "queue.capacity", queue.name,
                    f"{resident} resident > capacity {queue.capacity}",
                ))
            if len(queue._entry_times) != resident:
                out.append((
                    "queue.fifo", queue.name,
                    f"{len(queue._entry_times)} entry times for "
                    f"{resident} packets",
                ))
            last = None
            for entered in queue._entry_times:
                if entered is None:
                    continue
                if last is not None and entered < last:
                    out.append((
                        "queue.fifo", queue.name,
                        f"entry times out of order: {entered} after {last}",
                    ))
                    break
                last = entered

    def _check_routers(self, out: List[Violation]) -> None:
        for router in self.system._routers.values():
            granted = sum(router.grants.values())
            popped = sum(queue.pops for queue in router.inputs)
            if granted != popped:
                out.append((
                    "router.accounting", router.name,
                    f"{granted} grants != {popped} pops across inputs",
                ))
            for queue in router.inputs:
                packets = queue.packets()
                if packets:
                    head = packets[0]
                    hop = head.hop_index + 1
                    expected = (
                        head.route[hop] if hop < len(head.route) else -1
                    )
                else:
                    expected = None
                if queue.head_key != expected:
                    out.append((
                        "queue.head_key", queue.name,
                        f"cached head key {queue.head_key} != computed "
                        f"{expected} (stale after an in-place reroute?)",
                    ))
                for packet in packets:
                    if not 0 <= packet.hop_index < len(packet.route):
                        out.append((
                            "packet.route", queue.name,
                            f"{packet!r} hop index outside its route",
                        ))
                    elif packet.current_node != router.node_id:
                        out.append((
                            "packet.route", queue.name,
                            f"{packet!r} filed at node {router.node_id} "
                            f"but routed at {packet.current_node}",
                        ))

    def _check_controllers(self, out: List[Violation]) -> None:
        for cube in self.system.cubes.values():
            for controller in cube.controllers:
                occupied = len(controller._queue) + controller._reserved
                if controller._reserved < 0:
                    out.append((
                        "controller.admission", controller.name,
                        f"negative reservation count {controller._reserved}",
                    ))
                if occupied > controller.queue_depth:
                    out.append((
                        "controller.admission", controller.name,
                        f"{len(controller._queue)} queued + "
                        f"{controller._reserved} reserved > depth "
                        f"{controller.queue_depth}",
                    ))

    def _check_pool(self, out: List[Violation]) -> None:
        """Packet-pool safety: no freed packet may still be resident.

        The visible resident population is the router input queues plus
        the controllers' bank queues and response buffers; packets in
        flight on links or referenced only by scheduled events are live
        but invisible, so the conservation check is a lower bound.
        """
        pool = getattr(self.system, "packet_pool", None)
        if pool is None:
            return
        resident = 0
        for queue in self._iter_queues():
            for packet in queue.packets():
                resident += 1
                if packet.freed:
                    out.append((
                        "pool.use_after_free", queue.name,
                        f"freed packet #{packet.pid} still queued",
                    ))
        for cube in self.system.cubes.values():
            for controller in cube.controllers:
                for packet in controller._queue:
                    resident += 1
                    if packet.freed:
                        out.append((
                            "pool.use_after_free", controller.name,
                            f"freed packet #{packet.pid} in bank queue",
                        ))
                for packet in controller._pending_responses:
                    resident += 1
                    if packet.freed:
                        out.append((
                            "pool.use_after_free", controller.name,
                            f"freed packet #{packet.pid} in response buffer",
                        ))
        if pool.live < resident:
            out.append((
                "pool.conservation", "pool",
                f"pool live count {pool.live} < {resident} resident "
                f"packets visible in queues/buffers",
            ))
        if pool.released > pool.acquired:
            out.append((
                "pool.conservation", "pool",
                f"released {pool.released} > acquired {pool.acquired}",
            ))

    def _check_port(self, out: List[Violation], final: bool) -> None:
        port = self.system.port
        host = port.config.host
        if port.open_loop:
            # Open-loop injection bypasses the window, so only the
            # sign of the counters is checkable.
            for name in ("outstanding_reads", "outstanding_writes",
                         "outstanding_p2p"):
                if getattr(port, name) < 0:
                    out.append((
                        "port.window", "port",
                        f"negative {name}: {getattr(port, name)}",
                    ))
        else:
            if not 0 <= port.outstanding_reads <= port.window:
                out.append((
                    "port.window", "port",
                    f"outstanding reads {port.outstanding_reads} outside "
                    f"[0, {port.window}]",
                ))
            if not 0 <= port.outstanding_writes <= host.store_buffer_entries:
                out.append((
                    "port.window", "port",
                    f"outstanding writes {port.outstanding_writes} outside "
                    f"[0, {host.store_buffer_entries}]",
                ))
            if not 0 <= port.outstanding_p2p <= host.store_buffer_entries:
                out.append((
                    "port.window", "port",
                    f"outstanding p2p copies {port.outstanding_p2p} outside "
                    f"[0, {host.store_buffer_entries}]",
                ))
        reads = len(port._pending_reads)
        writes = len(port._pending_writes)
        p2p = len(port._pending_p2p)
        if len(port.pending) != reads + writes + p2p:
            out.append((
                "port.backlog", "port",
                f"{len(port.pending)} pending != {reads} reads + "
                f"{writes} writes + {p2p} p2p",
            ))
        for total, parts in (
            ("generated", (port.generated_reads, port.generated_writes,
                           port.generated_p2p)),
            ("completed", (port.completed_reads, port.completed_writes,
                           port.completed_p2p)),
            ("failed", (port.failed_reads, port.failed_writes,
                        port.failed_p2p)),
            ("timeouts", (port.timeout_reads, port.timeout_writes,
                          port.timeout_p2p)),
            ("retries", (port.retried_reads, port.retried_writes,
                         port.retried_p2p)),
            ("timed_out", (port.timed_out_reads, port.timed_out_writes,
                           port.timed_out_p2p)),
            ("shed", (port.shed_reads, port.shed_writes, port.shed_p2p)),
        ):
            whole = getattr(port, total)
            if whole != sum(parts):
                out.append((
                    "port.backlog", "port",
                    f"{total} {whole} != reads {parts[0]} + writes "
                    f"{parts[1]} + p2p {parts[2]}",
                ))
        if port.directory.outstanding_writes != port.outstanding_writes:
            out.append((
                "port.directory", "port",
                f"directory holds {port.directory.outstanding_writes} "
                f"writes, port holds {port.outstanding_writes}",
            ))
        retired = port.completed + port.failed + port.timed_out + port.shed
        if retired > port.generated or port.generated > port.total_requests:
            out.append((
                "txn.conservation", "port",
                f"retired {retired} / generated {port.generated} / "
                f"total {port.total_requests} out of order",
            ))
        self._check_overload(out, port)
        if final:
            if port.generated != port.total_requests:
                out.append((
                    "txn.conservation", "port",
                    f"run ended with {port.generated} of "
                    f"{port.total_requests} requests generated",
                ))
            if retired != port.generated:
                out.append((
                    "txn.conservation", "port",
                    f"{port.completed} completed + {port.failed} failed "
                    f"+ {port.timed_out} timed out + {port.shed} shed "
                    f"!= {port.generated} generated",
                ))
            for invariant, kind, gen, done, failed, lost in (
                ("txn.conservation", "reads", port.generated_reads,
                 port.completed_reads, port.failed_reads,
                 port.timed_out_reads + port.shed_reads),
                ("txn.conservation", "writes", port.generated_writes,
                 port.completed_writes, port.failed_writes,
                 port.timed_out_writes + port.shed_writes),
                ("p2p.conservation", "p2p copies", port.generated_p2p,
                 port.completed_p2p, port.failed_p2p,
                 port.timed_out_p2p + port.shed_p2p),
            ):
                if gen != done + failed + lost:
                    out.append((
                        invariant, "port",
                        f"{kind}: generated {gen} != completed {done} "
                        f"+ failed {failed} + timed-out/shed {lost}",
                    ))

    def _check_overload(self, out: List[Violation], port) -> None:
        """Overload-layer invariants (no-op for closed-loop default runs).

        ``overload.conservation``: per-kind, every generated request is
        heading toward exactly one disposition (completed / failed /
        timed-out / shed) and retries never exceed the configured budget
        per timeout.  ``overload.backlog``: with shedding enabled the
        host-edge backlog (pending + outstanding) never exceeds
        ``shed_high`` — including its recorded high-water mark.
        """
        overload = port.config.overload
        if not port._overload:
            return
        for kind, gen, settled in (
            ("reads", port.generated_reads,
             port.completed_reads + port.failed_reads
             + port.timed_out_reads + port.shed_reads),
            ("writes", port.generated_writes,
             port.completed_writes + port.failed_writes
             + port.timed_out_writes + port.shed_writes),
            ("p2p copies", port.generated_p2p,
             port.completed_p2p + port.failed_p2p
             + port.timed_out_p2p + port.shed_p2p),
        ):
            if settled > gen:
                out.append((
                    "overload.conservation", "port",
                    f"{kind}: {settled} dispositions exceed {gen} generated",
                ))
        if port.retries > port.timeouts:
            out.append((
                "overload.conservation", "port",
                f"{port.retries} retries exceed {port.timeouts} timeouts",
            ))
        if overload.shedding_enabled:
            backlog = len(port.pending) + port.outstanding
            bound = overload.shed_high
            if backlog > bound:
                out.append((
                    "overload.backlog", "port",
                    f"backlog {backlog} exceeds shed_high {bound}",
                ))
            if port.peak_backlog > bound:
                out.append((
                    "overload.backlog", "port",
                    f"peak backlog {port.peak_backlog} exceeds "
                    f"shed_high {bound}",
                ))

    def _check_final(self, out: List[Violation]) -> None:
        """End-of-run residue: nothing live may remain anywhere.

        A healthy run (zero failed transactions) must leave every queue
        empty, every credit home, and every controller idle.  A degraded
        run may strand packets of *failed* transactions (a late response
        still crossing the network when the run's last event fired), but
        never of live ones.
        """
        port = self.system.port
        # Timed-out requests may strand stale packets of their cancelled
        # attempts exactly like RAS-failed ones, so either disqualifies
        # the run from the strict "nothing anywhere" residue check.
        healthy = port.failed == 0 and port.timeouts == 0
        for queue in self._iter_queues():
            for packet in queue.packets():
                txn = packet.transaction
                if healthy or txn is None or not txn.failed:
                    out.append((
                        "packet.conservation", queue.name,
                        f"stranded at end of run: {packet!r}",
                    ))
        for link, _kind in self.system._links:
            in_flight = self._wire_in_flight(link)
            if healthy and in_flight != 0:
                out.append((
                    "packet.conservation", link.name,
                    f"{in_flight} packet(s) still on the wire",
                ))
            if healthy and link.credits is not None and (
                link.credits != link.dst_queue.capacity
            ):
                out.append((
                    "credit.conservation", link.name,
                    f"{link.credits} of {link.dst_queue.capacity} "
                    "credits home at end of run",
                ))
        for cube in self.system.cubes.values():
            for controller in cube.controllers:
                if healthy and (
                    controller._queue
                    or controller._reserved
                    or controller._pending_responses
                ):
                    out.append((
                        "packet.conservation", controller.name,
                        f"{len(controller._queue)} queued, "
                        f"{controller._reserved} reserved, "
                        f"{len(controller._pending_responses)} responses "
                        "pending at end of run",
                    ))
        if healthy:
            if port.outstanding:
                out.append((
                    "txn.conservation", "port",
                    f"{port.outstanding} transactions outstanding at "
                    "end of run",
                ))
            if port.pending or port._at_port:
                out.append((
                    "txn.conservation", "port",
                    f"{len(port.pending)} pending / {len(port._at_port)} "
                    "at-port transactions left at end of run",
                ))
            if port.directory.outstanding_writes:
                out.append((
                    "port.directory", "port",
                    f"{port.directory.outstanding_writes} directory "
                    "writes outstanding at end of run",
                ))

    def _check_p2p(self, out: List[Violation]) -> None:
        """No peer-to-peer data transfer may be headed for the host.

        P2P_XFER packets carry cube-to-cube data; only the lightweight
        P2P_ACK returns to the host port.  A queued transfer whose route
        terminates at the host node means the injection or reroute logic
        aimed DMA data at a port that must never admit it (the host's
        ``_deliver`` would raise, but catching it here names the queue
        the bad route was found in).
        """
        host_id = self.system.route_table.host_id
        for packets, where in self._iter_resident_packets():
            for packet in packets:
                if packet.kind is PacketKind.P2P_XFER and (
                    packet.route and packet.route[-1] == host_id
                ):
                    out.append((
                        "p2p.leak", where,
                        f"{packet!r} is a p2p transfer routed to the "
                        f"host node {host_id}",
                    ))

    def _iter_resident_packets(self):
        """(packets, component-name) for every resident population."""
        for queue in self._iter_queues():
            yield queue.packets(), queue.name
        for cube in self.system.cubes.values():
            for controller in cube.controllers:
                yield list(controller._queue), controller.name
                yield list(controller._pending_responses), controller.name

    def _check_ras(self, out: List[Violation]) -> None:
        system = self.system
        dead = system._dead_edges
        if not dead:
            return
        for pair in dead:
            link = system._link_by_pair.get(pair)
            if link is not None and not link.dead:
                out.append((
                    "ras.consistency", link.name,
                    "edge is in the dead set but the link accepts traffic",
                ))
            if (pair[1], pair[0]) not in dead:
                out.append((
                    "ras.consistency", f"{pair[0]}-{pair[1]}",
                    "dead edge marked in one direction only",
                ))
        # No queued packet may be routed across a dead edge (the quiesce
        # walk reroutes or drops them), and the degraded route tables
        # must never hand out a path that resurrects one.
        for queue in self._iter_queues():
            for packet in queue.packets():
                if system._route_is_dead(packet):
                    out.append((
                        "ras.consistency", queue.name,
                        f"{packet!r} still routed across a dead edge",
                    ))
        table = system.route_table
        for cube in system.topology.cube_ids():
            for cls in (RouteClass.READ, RouteClass.WRITE):
                if not table.is_reachable(cube, cls):
                    continue
                route = table.route_to_cube(cube, cls)
                for a, b in zip(route, route[1:]):
                    if (a, b) in dead:
                        out.append((
                            "ras.consistency", f"route:{cube}:{cls.name}",
                            f"path {list(route)} crosses dead edge "
                            f"{a}-{b}",
                        ))

    # ------------------------------------------------------------------
    # result-level checks
    # ------------------------------------------------------------------
    def _check_attribution(self, out: List[Violation], result) -> None:
        collector = result.collector
        if not collector.segments:
            return
        residual = collector.segments.get(UNATTRIBUTED)
        if residual is not None and residual.stat.total != 0:
            out.append((
                "obs.attribution", "collector",
                f"unattributed residual totals {residual.stat.total} ps "
                f"over {residual.count} transactions (max "
                f"{residual.stat.max})",
            ))
        phase_totals = {phase: 0.0 for phase in PHASES}
        for label, hist in collector.segments.items():
            phase = phase_of(label)
            if phase is not None:
                phase_totals[phase] += hist.stat.total
        breakdown = collector.all
        for phase, component in (
            ("req", breakdown.to_memory),
            ("mem", breakdown.in_memory),
            ("resp", breakdown.from_memory),
        ):
            if abs(phase_totals[phase] - component.total) > 0.5:
                out.append((
                    "obs.attribution", f"phase:{phase}",
                    f"segment sum {phase_totals[phase]} ps != component "
                    f"total {component.total} ps",
                ))

    def _check_energy(self, out: List[Violation], result) -> None:
        from repro.energy import EnergyModel

        system = self.system
        external_bits = sum(
            link.bits_carried
            for link, kind in system._links
            if kind == LinkKind.EXTERNAL
        )
        interposer_bits = sum(
            link.bits_carried
            for link, kind in system._links
            if kind == LinkKind.INTERPOSER
        )
        accesses = [
            (cube.tech, cube.total_reads(), cube.total_writes())
            for cube in system.cubes.values()
        ]
        expected = EnergyModel(
            system.config.energy, system.config.packet
        ).report(external_bits, interposer_bits, accesses)
        for field in (
            "network_pj", "interposer_pj", "memory_read_pj",
            "memory_write_pj",
        ):
            reported = getattr(result.energy, field)
            recomputed = getattr(expected, field)
            if reported != recomputed:
                out.append((
                    "energy.totals", field,
                    f"reported {reported} pJ != recomputed {recomputed} pJ",
                ))
