"""Opt-in runtime invariant audits (the ``repro.check`` subsystem).

Auditing follows the same zero-overhead-when-off contract as
``repro.obs`` and ``repro.ras``: a system built without audits carries
no auditor and pays nothing on the hot path.  Enablement is *not* part
of :class:`repro.config.SystemConfig` — audits verify a run, they never
change it, so audited and unaudited runs share job digests and cache
entries (and ``RESULT_STATE_VERSION`` is untouched).

Three ways to turn audits on, in precedence order:

1. explicitly per system: ``MemoryNetworkSystem(..., audit=True)``,
2. ambiently for the process: :func:`set_audits` or the
   :func:`audits` context manager,
3. via the environment: ``REPRO_AUDIT=1`` (any spelling
   :func:`repro.env.env_flag` accepts) — this is how audits reach
   runner *worker processes* (they inherit the environment) and the
   ``--audit`` flag of ``python -m repro.experiments``.

An audited system checks its invariants at every RAS quiesce, on a
stall, and at end of run; a failed check raises
:class:`repro.errors.InvariantViolation` with the run's reproduction
context.  See ``docs/testing.md``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.check.auditor import InvariantAuditor
from repro.check.fleet import check_fleet_conservation
from repro.env import env_flag
from repro.errors import InvariantViolation

__all__ = [
    "InvariantAuditor",
    "InvariantViolation",
    "audits",
    "audits_enabled",
    "check_fleet_conservation",
    "set_audits",
]

_AMBIENT = False


def set_audits(enabled: bool) -> bool:
    """Set the ambient audit flag; returns the previous value.

    Ambient enablement covers systems built in *this* process; worker
    processes consult ``REPRO_AUDIT`` instead (set it in ``os.environ``
    before the pool spawns to audit parallel runs).
    """
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = bool(enabled)
    return previous


def audits_enabled() -> bool:
    """True if systems built now should attach an auditor by default."""
    if _AMBIENT:
        return True
    # env_flag rejects spellings like "false"/"off"/"no" that the old
    # ``not in ("", "0")`` test silently treated as enabled.
    return env_flag("REPRO_AUDIT")


@contextmanager
def audits(enabled: bool = True):
    """Scoped ambient enablement: ``with audits(): simulate(...)``."""
    previous = set_audits(enabled)
    try:
        yield
    finally:
        set_audits(previous)
